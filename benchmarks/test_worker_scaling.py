"""Worker-scaling benchmark — the pre-fork arbiter vs. one process.

Two claims ride on ``sww serve --workers N`` (docs/PERFORMANCE.md):

* **scaling** — generation work spreads across the fleet. A uniform
  corpus of equal-cost pages is fetched by naive clients (the server
  materialises every page) against fleet sizes 1, 2 and 4; the makespan
  is the *simulated* generation time of the busiest worker, read from
  the master's ``/debug/workers`` aggregation. With least-loaded accept
  (``--worker-connections 1``) the fleet should come close to ideal
  speedup: >= 1.8x at 2 workers, >= 3x at 4.
* **shared cache tier** — the warm Zipf replay of the gencache
  benchmark, run across a 2-worker fleet with per-page memoisation off,
  must hit the *shared* tier at the same rate the in-process cache
  achieves in ``BENCH_gencache.json`` (within five points), not fall
  back to per-worker duplicate generation.

Every fleet size runs through the same arbiter code path (fleet size 1
included) so the comparison isolates worker count, not harness shape.
"""

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import time

from _shared import print_table, record_bench

from repro.devices import LAPTOP
from repro.sww.admin import admin_fetch
from repro.sww.client import GenerativeClient
from repro.workloads import build_harbour_gallery, build_news_article, build_travel_blog
from repro.workloads.corpus import build_uniform_pages
from repro.workloads.traffic import zipf_requests

HEARTBEAT_S = 0.2
UNIFORM_PAGES = 24
FLEETS = (1, 2, 4)
STARTUP_TIMEOUT_S = 60.0

# Run every fleet size through the arbiter itself (``_serve_multiworker``
# handles workers=1 fine; the CLI's single-process fast path is bypassed
# on purpose so fleet size is the only variable).
_RUNNER = (
    "import sys\n"
    "from repro.cli import _serve_multiworker, build_parser\n"
    "sys.exit(_serve_multiworker(build_parser().parse_args(['serve'] + sys.argv[1:])))\n"
)


class ArbiterBench:
    """A ``serve --workers N`` arbiter subprocess and its parsed banner."""

    def __init__(self, workers: int, pages: list[str], extra_args: list[str]):
        repo_src = os.path.join(os.path.dirname(__file__), "..", "src")
        env = dict(os.environ, PYTHONPATH=os.path.abspath(repo_src), PYTHONUNBUFFERED="1")
        self.proc = subprocess.Popen(
            [
                sys.executable, "-c", _RUNNER,
                "--workers", str(workers), "--port", "0", "--host", "127.0.0.1",
                "--heartbeat-interval", str(HEARTBEAT_S),
                "--pages", *pages,
            ]
            + extra_args,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.ports: dict[str, int] = {}
        self.worker_pids: list[int] = []
        self._read_banner(workers)

    def _read_banner(self, workers: int) -> None:
        deadline = time.time() + STARTUP_TIMEOUT_S
        patterns = {
            "serve": re.compile(r"sww arbiter serving on [\d.]+:(\d+)"),
            "admin": re.compile(r"sww arbiter admin on [\d.]+:(\d+)"),
        }
        worker_line = re.compile(r"sww arbiter worker (\d+) pid (\d+)")
        while time.time() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise AssertionError("arbiter exited during startup")
            for name, pattern in patterns.items():
                match = pattern.match(line)
                if match:
                    self.ports[name] = int(match.group(1))
            match = worker_line.match(line)
            if match:
                self.worker_pids.append(int(match.group(2)))
            if len(self.worker_pids) >= workers and "serve" in self.ports and "admin" in self.ports:
                return
        raise AssertionError(f"arbiter banner incomplete: {self.ports} {self.worker_pids}")

    def admin_json(self, path: str) -> dict:
        async def go():
            status, body = await admin_fetch("127.0.0.1", self.ports["admin"], path)
            assert status == 200, (path, status, body)
            return json.loads(body)

        return asyncio.run(go())

    def fetch_all(self, paths: list[str]) -> None:
        """Fetch every path concurrently with naive clients (server
        materialises); the closed connection queue plus per-worker
        ``--worker-connections 1`` yields least-loaded balancing."""

        async def go():
            async def one(path: str):
                client = GenerativeClient(device=LAPTOP, gen_ability=False)
                result = await client.fetch_tcp("127.0.0.1", self.ports["serve"], path)
                assert result.status == 200, (path, result.status)

            await asyncio.gather(*(one(path) for path in paths))

        asyncio.run(go())

    def fetch_serial(self, paths: list[str]) -> None:
        async def go():
            for path in paths:
                client = GenerativeClient(device=LAPTOP, gen_ability=False)
                result = await client.fetch_tcp("127.0.0.1", self.ports["serve"], path)
                assert result.status == 200, (path, result.status)

        asyncio.run(go())

    def settled_workers(self, expect_requests: int) -> list[dict]:
        """Wait for every request and its telemetry ship to land, then
        return the per-worker rows from ``/debug/workers``."""
        deadline = time.time() + 30
        while time.time() < deadline:
            doc = self.admin_json("/debug/workers")
            if sum(w["requests"] for w in doc["workers"]) >= expect_requests:
                time.sleep(3 * HEARTBEAT_S)  # one more heartbeat: gauges settle
                return self.admin_json("/debug/workers")["workers"]
            time.sleep(HEARTBEAT_S)
        raise AssertionError(f"fleet never served {expect_requests} requests")

    def close(self) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.communicate(timeout=20)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.communicate(timeout=10)
        for pid in self.worker_pids:
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                pass


def run_scaling(workers: int):
    paths = [page.path for page in build_uniform_pages(UNIFORM_PAGES)]
    arbiter = ArbiterBench(
        workers,
        [f"uniform:{UNIFORM_PAGES}"],
        # The uniform corpus has no repeats, so the cache tier is noise
        # here; one connection per worker makes accept least-loaded.
        ["--no-cache-tier", "--worker-connections", "1"],
    )
    try:
        start = time.perf_counter()
        arbiter.fetch_all(paths)
        wall_s = time.perf_counter() - start
        rows = arbiter.settled_workers(expect_requests=UNIFORM_PAGES)
    finally:
        arbiter.close()
    per_worker = [float(w["generation_sim_s"]) for w in rows]
    return {
        "workers": workers,
        "wall_s": wall_s,
        "makespan_sim_s": max(per_worker),
        "total_sim_s": sum(per_worker),
        "requests": [int(w["requests"]) for w in rows],
    }


def run_tier_replay():
    """The gencache benchmark's Zipf stream against a 2-worker fleet.

    Per-page memoisation is off, so every repeat visit regenerates its
    divisions — against the *shared* tier, which must absorb them."""
    pages = [build_harbour_gallery(), build_travel_blog(), build_news_article()]
    stream = zipf_requests(
        sorted(page.path for page in pages), 10, exponent=1.1, seed="gencache-bench"
    )
    arbiter = ArbiterBench(
        2, ["gallery", "travel-blog", "news"], ["--no-page-memo", "--worker-connections", "1"]
    )
    try:
        arbiter.fetch_serial(list(stream))
        doc = arbiter.admin_json("/debug/workers")
    finally:
        arbiter.close()
    return doc["cache_tier"]


def run_all():
    scaling = [run_scaling(n) for n in FLEETS]
    tier = run_tier_replay()
    return scaling, tier


def test_worker_scaling_and_shared_tier(benchmark):
    scaling, tier = benchmark.pedantic(run_all, rounds=1, iterations=1)
    base = scaling[0]["makespan_sim_s"]

    print_table(
        f"Worker scaling: {UNIFORM_PAGES} equal-cost pages, naive clients",
        ["fleet", "makespan (sim)", "speedup", "total gen (sim)", "wall", "requests/worker"],
        [
            [
                f"{row['workers']}w",
                f"{row['makespan_sim_s']:.1f} s",
                f"{base / row['makespan_sim_s']:.2f}x",
                f"{row['total_sim_s']:.1f} s",
                f"{row['wall_s']:.2f} s",
                "/".join(str(r) for r in sorted(row["requests"], reverse=True)),
            ]
            for row in scaling
        ],
    )
    print_table(
        "Shared gencache tier: warm Zipf replay, 2 workers, page memo off",
        ["hit rate", "hits", "misses", "coalesced", "entries"],
        [
            [
                f"{tier['hit_rate']:.0%}",
                tier["hits"],
                tier["misses"],
                tier["coalesced"],
                tier["entry_count"],
            ]
        ],
    )

    # Work conservation, within a band: an asset request that lands on a
    # different worker than its page re-materialises there (page memo is
    # per worker), so a fleet may pay a page or so of duplicate work.
    for row in scaling:
        assert row["total_sim_s"] > 0
        assert row["total_sim_s"] <= 1.10 * scaling[0]["total_sim_s"], row
        assert sum(row["requests"]) == UNIFORM_PAGES

    # The scaling gates (docs/PERFORMANCE.md).
    speedup = {row["workers"]: base / row["makespan_sim_s"] for row in scaling}
    assert speedup[2] >= 1.8, f"2-worker speedup {speedup[2]:.2f}x < 1.8x"
    assert speedup[4] >= 3.0, f"4-worker speedup {speedup[4]:.2f}x < 3.0x"

    # The shared tier absorbs cross-worker repeats like the in-process
    # cache absorbs same-process ones: hit rate within five points of
    # the BENCH_gencache.json warm scenario.
    reference = 0.75
    bench_path = os.path.join(os.path.dirname(__file__), "..", "BENCH_gencache.json")
    if os.path.exists(bench_path):
        with open(bench_path) as handle:
            recorded = json.load(handle)["scenarios"].get("warm", {}).get("hit_rate")
        if recorded:
            reference = float(recorded)
    assert tier["hit_rate"] >= 0.70, f"tier hit rate {tier['hit_rate']:.2f} < 0.70"
    assert abs(tier["hit_rate"] - reference) <= 0.05, (tier["hit_rate"], reference)

    for row in scaling:
        record_bench(
            "workers",
            f"fleet-{row['workers']}",
            wall_time_s=row["wall_s"],
            makespan_sim_s=round(row["makespan_sim_s"], 3),
            total_sim_s=round(row["total_sim_s"], 3),
            speedup=round(base / row["makespan_sim_s"], 4),
            requests=sorted(row["requests"], reverse=True),
        )
    record_bench(
        "workers",
        "tier-warm-zipf",
        hit_rate=round(tier["hit_rate"], 4),
        hits=tier["hits"],
        misses=tier["misses"],
        coalesced=tier["coalesced"],
        entries=tier["entry_count"],
    )
