"""E1 / Figure 1 — the HTML division before and after processing.

Paper: the div carries the prompt for a cartoon goldfish image before
processing; after processing it contains the pointer to the generated
file. This bench regenerates both forms and times the rewrite.
"""

from _shared import print_table

from repro.devices import WORKSTATION
from repro.genai.pipeline import GenerationPipeline
from repro.html import parse_html, serialize
from repro.sww.content import GeneratedContent
from repro.sww.media_generator import MediaGenerator
from repro.sww.page_processor import PageProcessor

GOLDFISH_DIV = serialize(
    GeneratedContent.image(
        "a cartoon goldfish with orange fins swimming in a round glass bowl",
        name="goldfish",
        width=256,
        height=256,
    ).to_element()
)


def rewrite_once() -> tuple[str, str]:
    doc = parse_html(f"<body>{GOLDFISH_DIV}</body>")
    processor = PageProcessor(MediaGenerator(GenerationPipeline(WORKSTATION)))
    processor.process(doc)
    return GOLDFISH_DIV, serialize(doc.body.children[0])


def test_fig1_before_and_after(benchmark):
    before, after = benchmark(rewrite_once)

    print_table(
        "Figure 1: HTML div before/after processing",
        ["stage", "markup"],
        [["before", before[:110] + "..."], ["after", after]],
    )

    # Before: the prompt travels in metadata (Fig. 1 top).
    assert 'class="generated-content"' in before
    assert "cartoon goldfish" in before
    assert "<img" not in before
    # After: an accurate path to the generated image (Fig. 1 bottom).
    assert after.startswith("<img")
    assert 'src="/generated/goldfish.png"' in after
    assert "generated-content" not in after
