"""E10 / §6.2 — the basic-functionality matrix over real HTTP/2 bytes.

Paper: with both sides capable the exchange is generative; in every other
combination "the communication defaulted to standard HTTP/2", and a
capable server facing a naive client generates server-side before
sending.
"""

from _shared import print_table

from repro import (
    GenerativeClient,
    GenerativeServer,
    LAPTOP,
    PageResource,
    SiteStore,
    build_wikimedia_landscape_page,
    connect_in_memory,
)
from repro.workloads.corpus import populate_traditional_assets


def run_matrix():
    page = build_wikimedia_landscape_page()
    cells = {}
    for client_gen in (True, False):
        for server_gen in (True, False):
            store = SiteStore()
            store.add_page(PageResource(page.path, page.sww_html, page.traditional_html))
            populate_traditional_assets(store, page)
            server = GenerativeServer(store, gen_ability=server_gen)
            client = GenerativeClient(device=LAPTOP, gen_ability=client_gen)
            pair = connect_in_memory(client, server)
            result = client.fetch_via_pair(pair, page.path)
            assets = client.fetch_assets_via_pair(pair, result)
            cells[(client_gen, server_gen)] = {
                "negotiated": pair.client.conn.gen_ability_negotiated,
                "sww": result.sww_mode,
                "wire": result.wire_bytes + sum(len(b) for b in assets.values()),
                "client_gen_time": result.generation_time_s,
                "assets_fetched": len(assets),
            }
    return cells


def test_e10_matrix(benchmark):
    cells = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    print_table(
        "E10 / §6.2: functionality matrix (49-image page)",
        ["client", "server", "negotiated", "mode", "total wire", "client gen"],
        [
            [
                "gen" if cg else "naive",
                "gen" if sg else "naive",
                str(cell["negotiated"]),
                "SWW prompts" if cell["sww"] else "standard HTTP/2",
                f"{cell['wire']:,} B",
                f"{cell['client_gen_time']:.0f} s",
            ]
            for (cg, sg), cell in cells.items()
        ],
    )

    both = cells[(True, True)]
    assert both["negotiated"] and both["sww"]
    assert both["assets_fetched"] == 0
    assert both["client_gen_time"] > 0

    for key in ((True, False), (False, True), (False, False)):
        cell = cells[key]
        assert not cell["negotiated"] and not cell["sww"], key
        assert cell["client_gen_time"] == 0, key
        assert cell["assets_fetched"] == 49, key
        # Fallback cells move media-scale bytes.
        assert cell["wire"] > 60 * both["wire"], key
