"""E8 / §6.4 — transmission vs generation: time and energy.

Paper: sending a large image on a typical 100 Mbps link takes about ten
milliseconds, while workstation generation takes 620× longer; network
transmission costs ≈0.005 Wh (Telefónica 38 MWh/PB), about 2.5% of the
workstation's generation energy.
"""

import pytest
from _shared import print_table, within

from repro.devices import WORKSTATION
from repro.devices.energy import transmission_energy_wh, transmission_time_s
from repro.genai.image import generate_image
from repro.genai.registry import SD3_MEDIUM
from repro.media.jpeg_model import jpeg_size

PROMPT = "a landscape photograph of a rocky coastline with breaking waves"


def run_comparison():
    size = jpeg_size(1024, 1024)
    send_time = transmission_time_s(size)
    send_energy = transmission_energy_wh(size)
    generation = generate_image(SD3_MEDIUM, WORKSTATION, PROMPT, 1024, 1024, 15)
    return size, send_time, send_energy, generation


def test_e8_transmit_vs_generate(benchmark):
    size, send_time, send_energy, generation = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )
    time_ratio = generation.sim_time_s / send_time
    energy_ratio = send_energy / generation.energy_wh

    print_table(
        "E8 / §6.4: large image (1024²) — transmit vs generate",
        ["metric", "paper", "measured"],
        [
            ["media size", "131072 B", f"{size} B"],
            ["send time @100 Mbps", "~10 ms", f"{send_time * 1000:.1f} ms"],
            ["generation (workstation)", "6.2 s", f"{generation.sim_time_s:.1f} s"],
            ["generation / send", "620x", f"{time_ratio:.0f}x"],
            ["send energy", "~0.005 Wh", f"{send_energy:.4f} Wh"],
            ["generation energy", "0.21 Wh", f"{generation.energy_wh:.3f} Wh"],
            ["send / generation energy", "2.5%", f"{energy_ratio:.1%}"],
        ],
    )

    within(send_time * 1000, 9.0, 12.0, "send ms")
    within(time_ratio, 550, 650, "time ratio")
    assert send_energy == pytest.approx(0.005, abs=0.0005)
    within(energy_ratio, 0.02, 0.03, "energy ratio")
    # The §7 'is it worth it' verdict today: generating at the edge does
    # not save energy over sending the bytes.
    assert generation.energy_wh > send_energy
