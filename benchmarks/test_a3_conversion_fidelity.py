"""A3 ablation — prompt-inversion fidelity vs regeneration quality (§4.2).

The paper flags conversion quality as the first limitation of automated
page conversion and points at prompt-inversion research. This ablation
sweeps the inverter's fidelity and measures the CLIP-sim of regenerated
images against the *original* descriptions: how much semantic content
survives the media → prompt → media round trip, and what it costs in
metadata bytes.
"""

import numpy as np
from _shared import print_table

from repro.devices import WORKSTATION
from repro.genai.pipeline import GenerationPipeline
from repro.html import parse_html
from repro.media.png import decode_png
from repro.metrics.clip import clip_score
from repro.sww.conversion import PageConverter, PromptInverter
from repro.sww.media_generator import MediaGenerator
from repro.sww.page_processor import PageProcessor
from repro.workloads import build_wikimedia_landscape_page

FIDELITIES = (0.3, 0.6, 0.85, 1.0)


def run_sweep():
    page = build_wikimedia_landscape_page(count=12)
    originals = [img.get("alt") for img in parse_html(page.traditional_html).find_by_tag("img")]
    results = {}
    for fidelity in FIDELITIES:
        document = parse_html(page.traditional_html)
        converter = PageConverter(inverter=PromptInverter(fidelity=fidelity))
        report = converter.convert(document, topic="landscape")
        processor = PageProcessor(MediaGenerator(GenerationPipeline(WORKSTATION)))
        regen = processor.process(document)
        scores = [
            clip_score(original, decode_png(output.payload))
            for output, original in zip(regen.outputs, originals)
        ]
        results[fidelity] = (float(np.mean(scores)), report.account.metadata)
    # Reference: generating straight from the original descriptions.
    document = parse_html(page.sww_html)
    processor = PageProcessor(MediaGenerator(GenerationPipeline(WORKSTATION)))
    regen = processor.process(document)
    direct = float(
        np.mean(
            [clip_score(o, decode_png(out.payload)) for out, o in zip(regen.outputs, originals)]
        )
    )
    return results, direct


def test_a3_conversion_fidelity(benchmark):
    results, direct = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = [
        [f"{fidelity:.2f}", f"{clip:.3f}", f"{meta:,} B"]
        for fidelity, (clip, meta) in results.items()
    ]
    rows.append(["direct prompts (no inversion)", f"{direct:.3f}", "-"])
    print_table(
        "A3 / §4.2: prompt-inversion fidelity sweep (12-image page)",
        ["inverter fidelity", "CLIP-sim vs original description", "metadata"],
        rows,
    )

    clips = [results[f][0] for f in FIDELITIES]
    # Quality is monotone in inversion fidelity...
    assert clips == sorted(clips)
    # ...approaches the direct-prompt ceiling at fidelity 1.0...
    assert results[1.0][0] > 0.9 * direct
    # ...and even heavily lossy inversion stays above the random floor.
    assert results[0.3][0] > 0.12
    # Metadata stays prompt-scale across the sweep (inversion does not
    # change the compression story).
    for fidelity in FIDELITIES:
        assert results[fidelity][1] < 6_000
