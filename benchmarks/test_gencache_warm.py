"""Gencache benchmark — warm vs. cold replay of a Zipf multi-user session.

The paper's client regenerates everything on every visit (Table 2 prices
one page at up to ~310 simulated seconds). This benchmark replays the
same skewed request stream twice:

* **cold** — the seed behaviour: no cache, sequential generation, every
  fetch pays full step cost;
* **warm** — the ``repro.gencache`` stack: several users share one
  content-addressed :class:`~repro.gencache.GenerationCache` and each
  client generates page divisions on a single-flight worker pool.

The cold scenario is recorded untouched next to the warm one in
``BENCH_gencache.json`` — warm numbers never replace cold ones
(docs/PERFORMANCE.md). Popularity follows
:func:`repro.workloads.traffic.zipf_requests`, so repeats concentrate on
a few hot pages exactly like real web traffic.
"""

import time

from _shared import print_table, record_bench

from repro.devices import LAPTOP
from repro.gencache import GenerationCache
from repro.sww.client import GenerativeClient, connect_in_memory
from repro.sww.content import GeneratedContent
from repro.sww.server import GenerativeServer, PageResource, SiteStore
from repro.workloads import build_news_article, build_travel_blog
from repro.workloads.corpus import _element_html
from repro.workloads.traffic import zipf_requests

USERS = 3
REQUESTS = 10
GEN_WORKERS = 4


def build_gallery_page() -> PageResource:
    """A gallery whose divisions repeat prompts (same artwork, several
    placements) — the in-page duplication single-flight coalesces."""
    prompts = [
        "a watercolor of a lighthouse on a basalt headland",
        "a watercolor of a lighthouse on a basalt headland",
        "an ink sketch of fishing boats at low tide",
        "an ink sketch of fishing boats at low tide",
        "a watercolor of a lighthouse on a basalt headland",
        "a linocut print of gulls over a breakwater",
    ]
    divs = [
        _element_html(
            GeneratedContent.image(prompt, name=f"gallery-{i:02d}", width=256, height=256)
        )
        for i, prompt in enumerate(prompts)
    ]
    html = (
        "<!DOCTYPE html><html><head><title>Harbour gallery</title></head>"
        "<body><h1>Harbour gallery</h1>" + "".join(divs) + "</body></html>"
    )
    return PageResource("/gallery/harbour", html)


def build_site() -> SiteStore:
    store = SiteStore()
    store.add_page(build_gallery_page())
    for page in (build_travel_blog(), build_news_article()):
        store.add_page(PageResource(page.path, page.sww_html, page.traditional_html))
    return store


def run_session(gencache: GenerationCache | None, gen_workers: int):
    """Replay the Zipf stream with per-user clients; return the totals."""
    store = build_site()
    server = GenerativeServer(store)
    clients = [
        GenerativeClient(device=LAPTOP, gencache=gencache, gen_workers=gen_workers)
        for _ in range(USERS)
    ]
    stream = zipf_requests(sorted(store.pages), REQUESTS, exponent=1.1, seed="gencache-bench")
    sim_s = 0.0
    cache_hits = 0
    coalesced = 0
    start = time.perf_counter()
    for turn, path in enumerate(stream):
        client = clients[turn % USERS]
        result = client.fetch_via_pair(connect_in_memory(client, server), path)
        assert result.status == 200 and result.report is not None
        sim_s += result.generation_time_s
        cache_hits += result.report.cache_hits
        coalesced += result.report.coalesced
    wall_s = time.perf_counter() - start
    return wall_s, sim_s, cache_hits, coalesced


def run_both():
    cold = run_session(gencache=None, gen_workers=1)
    shared = GenerationCache()
    warm = run_session(gencache=shared, gen_workers=GEN_WORKERS)
    return cold, warm, shared


def test_gencache_warm_vs_cold(benchmark):
    (cold, warm, shared) = benchmark.pedantic(run_both, rounds=1, iterations=1)
    cold_wall, cold_sim, cold_hits, cold_coalesced = cold
    warm_wall, warm_sim, warm_hits, warm_coalesced = warm
    stats = shared.stats

    print_table(
        f"Gencache: {REQUESTS}-request Zipf session, {USERS} users, 3 pages",
        ["metric", "cold (seed behaviour)", "warm (shared gencache)"],
        [
            ["wall time", f"{cold_wall:.2f} s", f"{warm_wall:.2f} s"],
            ["simulated generation", f"{cold_sim:.1f} s", f"{warm_sim:.1f} s"],
            ["cache hits", cold_hits, warm_hits],
            ["in-flight coalesced", cold_coalesced, warm_coalesced],
            ["hit rate", "-", f"{stats.hit_rate:.0%}"],
            ["saved simulated time", "-", f"{stats.saved_sim_seconds:.1f} s"],
            ["store bytes", "-", f"{shared.used_bytes:,} B"],
        ],
    )

    # The cold scenario must behave exactly like the seed: no cache
    # involvement at all.
    assert cold_hits == 0 and cold_coalesced == 0
    # Warm strictly beats cold on both clocks, with real cache traffic.
    assert warm_sim < cold_sim
    assert warm_wall < cold_wall
    assert stats.hit_rate > 0
    assert warm_coalesced >= 1
    # Repeat requests for the hot pages dominate the Zipf stream, so most
    # generations should be answered from the shared store.
    assert warm_hits + warm_coalesced > REQUESTS

    record_bench(
        "gencache",
        "cold",
        wall_time_s=cold_wall,
        generation_sim_s=round(cold_sim, 3),
        cache_hits=cold_hits,
        coalesced=cold_coalesced,
    )
    record_bench(
        "gencache",
        "warm",
        wall_time_s=warm_wall,
        generation_sim_s=round(warm_sim, 3),
        cache_hits=warm_hits,
        coalesced=warm_coalesced,
        hit_rate=round(stats.hit_rate, 4),
        saved_sim_s=round(stats.saved_sim_seconds, 3),
        store_bytes=shared.used_bytes,
    )
