"""Fleet scaling benchmark — the PR-9 geo-distributed edge fleet headline.

The same open-loop workload — 16 regions of a million simulated users
each, every region a Poisson arrival process over its own rotated Zipf
ranking of a shared 240-item catalog — hits fleets of 1, 4 and 16 edges.
Per-edge generation-cache capacity stays fixed (32 artifacts' worth), so
a single edge holds ~13% of the catalog and thrashes, while the 16-edge
ring's aggregate capacity covers the working set *because* consistent
hashing partitions ownership instead of replicating everywhere.

Each fleet replays the identical tape twice (the gencache warm-replay
discipline); the warm pass is the measured row. Gates (CI-enforced via
``BENCH_fleet.json``):

* combined edge+peer+coalesced hit rate ≥ 80% at fleet size 16;
* origin traffic at fleet 16 at most 1/5 of the single edge's (≥ 5×
  origin offload);
* warm p99 latency at fleet 16 no worse than the single edge's;
* adding a 17th edge moves ≤ 2/16 of the keyspace (the consistent-
  hashing rebalance contract).

The simulation is a discrete-event replay over deterministic seeded
streams — every number here except ``wall_time_s`` is reproducible
bit-for-bit across runs.
"""

import time

from _shared import print_table, record_bench

from repro.cdn.fleet import EdgeFleet, FleetConfig, build_fleet_catalog
from repro.cdn.placement import HashRing, moved_share
from repro.cdn.router import FleetRouter
from repro.workloads.session import OpenLoopSession
from repro.workloads.traffic import default_regions

FLEET_SIZES = (1, 4, 16)
REGIONS = 16
RATE_PER_S = 2.0
DURATION_S = 120.0
CATALOG_ITEMS = 240
MEDIA_BYTES = 750_000
GENCACHE_ITEMS = 32  # per-edge capacity, in artifacts
SEED = 11

HIT_RATE_GATE = 0.80
OFFLOAD_GATE = 5.0
REBALANCE_KEYS = 10_000


def run_fleet(edges: int):
    """Cold + warm pass of the shared tape over an ``edges``-edge fleet."""
    config = FleetConfig(edges=edges, gencache_bytes=GENCACHE_ITEMS * MEDIA_BYTES)
    catalog = build_fleet_catalog(CATALOG_ITEMS, media_bytes=MEDIA_BYTES)
    ring = HashRing(config.edge_names(), config.vnodes)
    regions = default_regions(REGIONS, rate_per_s=RATE_PER_S)
    router = FleetRouter(regions, ring)
    fleet = EdgeFleet(catalog, config, router, ring=ring)
    session = OpenLoopSession(fleet, regions, DURATION_S, seed=SEED)
    begin = time.perf_counter()
    cold = session.run()
    warm = session.run()
    wall_s = time.perf_counter() - begin
    return {"fleet": fleet, "cold": cold, "warm": warm, "wall_s": wall_s}


def rebalance_share() -> float:
    """Keyspace fraction that moves when edge 17 joins the 16-edge ring."""
    keys = [f"digest-{i:05d}" for i in range(REBALANCE_KEYS)]
    before = HashRing([f"edge-{i:02d}" for i in range(16)])
    after = HashRing([f"edge-{i:02d}" for i in range(17)])
    return moved_share(before, after, keys)


def run_all():
    return {edges: run_fleet(edges) for edges in FLEET_SIZES}, rebalance_share()


def test_fleet_scaling(benchmark):
    results, moved = benchmark.pedantic(run_all, rounds=1, iterations=1)

    warm = {edges: results[edges]["warm"] for edges in FLEET_SIZES}
    single, full = warm[1], warm[16]
    # Origin offload vs a single edge: how many times less origin traffic
    # the full fleet causes on the identical warm workload.
    offload_vs_single = single.origin_bytes / max(full.origin_bytes, 1)

    print_table(
        f"Edge fleet scaling: {REGIONS} regions x {RATE_PER_S:.0f} req/s, "
        f"{DURATION_S:.0f} s tape, warm pass, {GENCACHE_ITEMS}-artifact caches",
        ["metric"] + [f"{edges} edge{'s' if edges > 1 else ''}" for edges in FLEET_SIZES],
        [
            ["requests"] + [f"{warm[e].requests:,}" for e in FLEET_SIZES],
            ["fleet hit rate"] + [f"{100 * warm[e].fleet_hit_rate:.1f}%" for e in FLEET_SIZES],
            ["  edge tier"] + [f"{warm[e].tier_count('edge'):,}" for e in FLEET_SIZES],
            ["  peer tier"] + [f"{warm[e].tier_count('peer'):,}" for e in FLEET_SIZES],
            ["  coalesced"] + [f"{warm[e].tier_count('coalesced'):,}" for e in FLEET_SIZES],
            ["  generated"] + [f"{warm[e].tier_count('generated'):,}" for e in FLEET_SIZES],
            ["  origin"] + [f"{warm[e].tier_count('origin'):,}" for e in FLEET_SIZES],
            ["p50 latency"] + [f"{warm[e].p50() * 1000:.1f} ms" for e in FLEET_SIZES],
            ["p99 latency"] + [f"{warm[e].p99() * 1000:.1f} ms" for e in FLEET_SIZES],
            ["mean queue"] + [f"{warm[e].mean_queue_s() * 1000:.0f} ms" for e in FLEET_SIZES],
            ["origin bytes"] + [f"{warm[e].origin_bytes:,}" for e in FLEET_SIZES],
            ["generation (sim)"] + [f"{warm[e].generation_sim_s:.0f} s" for e in FLEET_SIZES],
        ],
    )
    print(f"\nring rebalance: adding edge 17 moves {100 * moved:.2f}% of "
          f"{REBALANCE_KEYS:,} keys (bound {100 * 2 / 16:.2f}%)")

    # Shape: more edges must monotonically improve the warm hit rate.
    assert warm[1].fleet_hit_rate < warm[4].fleet_hit_rate < warm[16].fleet_hit_rate
    # The single edge must actually be capacity-starved for the
    # comparison to mean anything (~13% of the catalog fits).
    assert warm[1].fleet_hit_rate < 0.5
    # Peering only exists with >1 edge, and must carry real traffic.
    assert warm[1].tier_count("peer") == 0
    assert warm[16].tier_count("peer") > 0

    # The CI gates.
    assert full.fleet_hit_rate >= HIT_RATE_GATE, (
        f"fleet-16 combined hit rate {full.fleet_hit_rate:.3f} below {HIT_RATE_GATE}"
    )
    assert offload_vs_single >= OFFLOAD_GATE, (
        f"origin offload {offload_vs_single:.2f}x below {OFFLOAD_GATE}x"
    )
    assert full.p99() <= single.p99(), (
        f"fleet-16 p99 {full.p99():.3f}s worse than single edge {single.p99():.3f}s"
    )
    assert moved <= 2 / 16, f"rebalance moved {moved:.4f} of keys, bound {2 / 16:.4f}"

    for edges in FLEET_SIZES:
        stats = warm[edges]
        state = results[edges]["fleet"].debug_state()
        record_bench(
            "fleet",
            f"edges_{edges}",
            wall_time_s=results[edges]["wall_s"],
            requests=stats.requests,
            fleet_hit_rate=round(stats.fleet_hit_rate, 6),
            tier_edge=stats.tier_count("edge"),
            tier_peer=stats.tier_count("peer"),
            tier_coalesced=stats.tier_count("coalesced"),
            tier_generated=stats.tier_count("generated"),
            tier_origin=stats.tier_count("origin"),
            latency_p50_s=round(stats.p50(), 6),
            latency_p99_s=round(stats.p99(), 6),
            mean_queue_s=round(stats.mean_queue_s(), 6),
            egress_bytes=stats.egress_bytes,
            peer_bytes=stats.peer_bytes,
            origin_bytes=stats.origin_bytes,
            generation_sim_s=round(stats.generation_sim_s, 3),
            shield_coalesced=state["shield_coalesced"],
            cold_hit_rate=round(results[edges]["cold"].fleet_hit_rate, 6),
        )
    record_bench(
        "fleet",
        "summary",
        origin_offload_vs_single=round(min(offload_vs_single, 1e9), 3),
        hit_rate_gate=HIT_RATE_GATE,
        offload_gate=OFFLOAD_GATE,
        rebalance_moved_share=round(moved, 6),
        rebalance_bound=round(2 / 16, 6),
        regions=REGIONS,
        rate_per_s=RATE_PER_S,
        duration_s=DURATION_S,
        catalog_items=CATALOG_ITEMS,
        gencache_items_per_edge=GENCACHE_ITEMS,
        seed=SEED,
    )
