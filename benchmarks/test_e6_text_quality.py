"""E6 / §6.3.2 — text-to-text quality across the four models.

Paper: SBERT means 0.82-0.91 (varying with word count); overshoot reaches
20% with means near 1.3% but quartiles over 10% for most models;
generation 6.98-14.33 s workstation vs 16.06-34.04 s laptop (only 2.5×
benefit); weak, non-monotonic length dependence (50 words slower than
100/150 for three of four models); DeepSeek-R1 8B consistently high SBERT
with small length deviation.
"""

import numpy as np
from _shared import print_table, within

from repro.devices import LAPTOP, WORKSTATION
from repro.genai.registry import TEXT_MODELS
from repro.genai.text import expand_text
from repro.metrics.overshoot import overshoot_stats
from repro.metrics.sbert import sbert_similarity

BULLETS = [
    "- hidden waterfall trail\n- steep switchback ascent\n- panoramic summit vista",
    "- quiet fjord crossing\n- morning mist on water\n- seabird colonies",
    "- glacier tongue viewpoint\n- gravel valley walk\n- marked moraine route",
    "- terraced hillside paths\n- afternoon light\n- village rest stops",
    "- volcanic ridge traverse\n- storm cloud watching\n- basalt gorge descent",
    "- prairie horizon drive\n- golden hour photography\n- wildflower meadows",
]
WORD_TARGETS = (50, 100, 150)


def run_battery():
    measurements = {}
    for name, model in TEXT_MODELS.items():
        sberts, overshoots, wk_times, laptop_times = [], [], [], []
        for bullets in BULLETS:
            for words in WORD_TARGETS:
                result = expand_text(model, WORKSTATION, bullets, words, "travel")
                sberts.append(sbert_similarity(bullets, result.text))
                overshoots.append(result.overshoot)
                wk_times.append(result.sim_time_s)
                laptop_times.append(expand_text(model, LAPTOP, bullets, words, "travel").sim_time_s)
        measurements[name] = {
            "sbert_mean": float(np.mean(sberts)),
            "overshoot": overshoot_stats(overshoots),
            "wk": (min(wk_times), max(wk_times)),
            "laptop": (min(laptop_times), max(laptop_times)),
        }
    return measurements


def test_e6_text_quality(benchmark):
    measurements = benchmark.pedantic(run_battery, rounds=1, iterations=1)

    print_table(
        "E6 / §6.3.2: text-to-text quality (paper bands in header)",
        ["model", "SBERT mean (0.82-0.91)", "|overshoot| max (<=20%)", "wk s (6.98-14.33)", "laptop s (16.06-34.04)"],
        [
            [
                name,
                f"{m['sbert_mean']:.3f}",
                f"{m['overshoot'].max_abs:.1%} (p75 {m['overshoot'].p75:+.1%})",
                f"{m['wk'][0]:.1f}-{m['wk'][1]:.1f}",
                f"{m['laptop'][0]:.1f}-{m['laptop'][1]:.1f}",
            ]
            for name, m in measurements.items()
        ],
    )

    for name, m in measurements.items():
        within(m["sbert_mean"], 0.80, 0.93, f"{name} SBERT mean")
        assert m["overshoot"].max_abs <= 0.20, f"{name} overshoot cap"
        assert abs(m["overshoot"].mean) < 0.05, f"{name} overshoot mean"
        within(m["wk"][0], 6.0, 15.5, f"{name} wk min")
        within(m["wk"][1], 6.0, 15.5, f"{name} wk max")
        within(m["laptop"][0], 15.0, 38.0, f"{name} laptop min")
        within(m["laptop"][1], 15.0, 38.0, f"{name} laptop max")
        # Workstation benefit is "only 2.5x".
        assert m["laptop"][1] / m["wk"][1] == np.float64(2.5) or abs(m["laptop"][1] / m["wk"][1] - 2.5) < 0.01

    # DeepSeek-R1 8B: consistently high SBERT, small deviation.
    assert max(measurements, key=lambda n: measurements[n]["sbert_mean"]) == "deepseek-r1-8b"
    spreads = {n: m["overshoot"].max_abs for n, m in measurements.items()}
    assert spreads["deepseek-r1-8b"] == min(spreads.values())

    # Non-monotonic: 50 words slower than 150 for >= 3 of 4 models.
    slow_short = sum(
        1
        for model in TEXT_MODELS.values()
        if model.generation_time_s(WORKSTATION, 50) > model.generation_time_s(WORKSTATION, 150)
    )
    assert slow_short >= 3
