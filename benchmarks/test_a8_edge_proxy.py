"""A8 ablation — the §2.2 edge proxy at the protocol level.

E12 modelled the CDN economics with byte accounting; this ablation runs
the actual component: an edge proxy that is an SWW client upstream (pulls
and caches prompt-form pages from the origin) and a server downstream
(forwards prompts to capable clients, generates for naive ones). The
§2.2 claim shows up as real traffic: prompt-sized upstream/storage
unconditionally, media-sized last-hop egress only when the client is
naive.
"""

from _shared import print_table, within

from repro.devices import WORKSTATION
from repro.sww.proxy import SwwEdgeProxy, build_origin
from repro.workloads import build_travel_blog, build_wikimedia_landscape_page


def run_proxy_day():
    pages = [build_wikimedia_landscape_page(count=12), build_travel_blog()]
    origin = build_origin(pages)
    proxy = SwwEdgeProxy(origin, device=WORKSTATION)
    # A request mix: capable and naive clients interleaved, with repeats.
    requests = [
        ("/wiki/search/landscape", True),
        ("/wiki/search/landscape", False),
        ("/blog/ridgeline-hike", True),
        ("/wiki/search/landscape", True),
        ("/blog/ridgeline-hike", False),
        ("/wiki/search/landscape", False),
    ]
    naive_asset_bytes = 0
    for path, capable in requests:
        response = proxy.handle_request(path, capable)
        assert response.status == 200
    # Naive clients then pull the generated media from the proxy.
    for asset_path in list(proxy._asset_store):
        naive_asset_bytes += len(proxy.handle_request(asset_path, False).body)
    media_total = sum(p.account.original_media for p in pages)
    return proxy, naive_asset_bytes, media_total


def test_a8_edge_proxy(benchmark):
    proxy, naive_asset_bytes, media_total = benchmark.pedantic(run_proxy_day, rounds=1, iterations=1)
    stats = proxy.stats

    print_table(
        "A8 / §2.2: the edge proxy over real HTTP/2 (2 pages, 6 requests)",
        ["metric", "value"],
        [
            ["upstream bytes (origin -> edge)", f"{stats.upstream_bytes:,} B (prompts only)"],
            ["edge prompt cache", f"{stats.prompt_cache_bytes:,} B"],
            ["equivalent media at the edge", f"{media_total:,} B"],
            ["storage advantage", f"{media_total / stats.prompt_cache_bytes:.0f}x"],
            ["prompt-cache hit rate", f"{stats.hit_rate:.0%}"],
            ["edge generations (naive clients)", stats.generations],
            ["edge generation time/energy", f"{stats.generation_s:.1f} s / {stats.generation_wh:.2f} Wh"],
            ["naive-client media egress", f"{naive_asset_bytes:,} B"],
        ],
    )

    # Upstream and storage are prompt-scale.
    assert stats.upstream_bytes < media_total / 10
    within(media_total / stats.prompt_cache_bytes, 20, 300, "storage advantage")
    # Repeats hit the cache.
    assert stats.hit_rate > 0.5
    # Generation happened once per page despite repeated naive requests.
    assert stats.generations == 12 + 4
    # The naive last hop is media-scale: the §2.2 "loses data transmission
    # benefits" half of the claim.
    assert naive_asset_bytes > 10 * stats.prompt_cache_bytes
