"""E3 / §6.2 — the newspaper-article text experiment.

Paper: 3.1× compression (2,400 B → 778 B); generation took 41.9 s on the
laptop and "more than ten seconds" on the workstation.
"""

from _shared import print_table, serve_page, within

from repro import GenerativeClient, LAPTOP, WORKSTATION, build_news_article
from repro.metrics.sbert import sbert_similarity


def run_experiment():
    page = build_news_article()
    results = {}
    for device in (LAPTOP, WORKSTATION):
        client, _server, pair = serve_page(page, client=GenerativeClient(device=device))
        results[device.name] = client.fetch_via_pair(pair, page.path)
    return page, results


def test_e3_news_article(benchmark):
    page, results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    account = page.account
    laptop = results["laptop"]
    workstation = results["workstation"]
    bullets, words = page.text_items[0]
    expanded = laptop.report.outputs[0].text
    similarity = sbert_similarity(bullets, expanded)

    print_table(
        "E3 / §6.2: newspaper article as bullet-point prompts",
        ["metric", "paper", "measured"],
        [
            ["original bytes", "2400", account.original_text],
            ["metadata bytes", "778", account.metadata],
            ["compression", "3.1x", f"{account.ratio:.2f}x"],
            ["laptop generation", "41.9 s", f"{laptop.generation_time_s:.1f} s"],
            ["workstation generation", ">10 s", f"{workstation.generation_time_s:.1f} s"],
            ["SBERT-sim vs bullets", "0.82-0.91 band", f"{similarity:.2f}"],
            ["word-count overshoot", "<= 20%", f"{laptop.report.outputs[0].item.words} -> {len(expanded.split())}"],
        ],
    )

    within(account.original_text, 2_300, 2_450, "original")
    within(account.metadata, 720, 830, "metadata")
    within(account.ratio, 2.7, 3.4, "compression")
    within(laptop.generation_time_s, 30, 48, "laptop time")
    assert workstation.generation_time_s > 10  # "more than ten seconds"
    assert laptop.generation_time_s / workstation.generation_time_s > 2.0
    # The news battery sits slightly below the §6.3.2 travel battery (the
    # paper notes SBERT varies with content); still far above unrelated.
    assert similarity > 0.72
    assert abs(len(expanded.split()) - words) / words <= 0.20
