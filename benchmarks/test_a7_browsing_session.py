"""A7 ablation — session-level SWW economics.

Folds the per-page results into a realistic visit (search results → blog
→ news article) on one negotiated connection with one preloaded pipeline,
and evaluates the paper's bottom line at session scale: wire savings are
enormous, but today's generation energy exceeds the transmission energy
avoided — flipping only on projected hardware (§7).
"""

from _shared import print_table, within

from repro.devices import LAPTOP, WORKSTATION
from repro.devices.future import project_device
from repro.workloads.session import BrowsingSession


def run_sessions():
    results = {}
    for label, device in (
        ("laptop (today)", LAPTOP),
        ("workstation (today)", WORKSTATION),
        ("laptop +16x hw", project_device(LAPTOP, 16.0, 16.0)),
    ):
        results[label] = BrowsingSession(device=device).run()
    return results


def test_a7_browsing_session(benchmark):
    results = benchmark.pedantic(run_sessions, rounds=1, iterations=1)

    print_table(
        "A7: a 3-page browsing session (search -> blog -> article)",
        ["client", "SWW wire", "traditional", "saving", "generation", "net energy"],
        [
            [
                label,
                f"{stats.sww_bytes:,} B",
                f"{stats.traditional_bytes:,} B",
                f"{stats.wire_saving:.0f}x",
                f"{stats.generation_s:.0f} s / {stats.generation_wh:.2f} Wh",
                f"{stats.net_energy_wh():+.2f} Wh",
            ]
            for label, stats in results.items()
        ],
    )

    today = results["laptop (today)"]
    within(today.wire_saving, 40, 100, "session wire saving")
    assert today.net_energy_wh() > 0  # §7: SWW costs energy today
    assert results["workstation (today)"].generation_s < today.generation_s / 4
    assert results["laptop +16x hw"].net_energy_wh() < 0  # …but flips

    # The pipeline is loaded once per session, and its cost is visible.
    assert today.pipeline_load_s > 0
    for stats in results.values():
        assert stats.pages == 3
