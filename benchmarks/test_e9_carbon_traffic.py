"""E9 / §6.4 + §7 — embodied carbon and Internet-scale traffic projection.

Paper: SSD embodied carbon is 6-7 kg CO₂e/TB, so at exabyte scale even
modest compression saves millions of kg; mobile web browsing is 2-3
EB/month, and the measured ~two-orders-of-magnitude reduction brings it
to tens of PB/month.
"""

from _shared import print_table, within

from repro.devices.energy import EB, TB, storage_carbon_savings_kg
from repro.workloads import build_wikimedia_landscape_page
from repro.workloads.traffic import MOBILE_WEB_EB_PER_MONTH, TrafficModel


def run_projections():
    page_ratio = build_wikimedia_landscape_page().account.ratio
    # Carbon: an exabyte-scale store compressed "modestly" (2x) and at the
    # measured page ratio.
    modest = storage_carbon_savings_kg(1 * EB, 0.5 * EB)
    measured = storage_carbon_savings_kg(1 * EB, (1 / page_ratio) * EB)
    projections = {
        volume: TrafficModel(volume).project(page_ratio) for volume in MOBILE_WEB_EB_PER_MONTH
    }
    return page_ratio, modest, measured, projections


def test_e9_carbon_and_traffic(benchmark):
    page_ratio, modest, measured, projections = benchmark.pedantic(
        run_projections, rounds=1, iterations=1
    )

    rows = [
        ["measured page compression", "~157x (Fig. 2)", f"{page_ratio:.0f}x"],
        ["carbon saved, 1 EB @ 2x", "millions of kg", f"{modest / 1e6:.1f} Mkg CO2e"],
        ["carbon saved, 1 EB @ measured", "millions of kg", f"{measured / 1e6:.1f} Mkg CO2e"],
    ]
    for volume, projection in projections.items():
        rows.append(
            [
                f"mobile web {volume} EB/mo -> SWW",
                "tens of PB/mo",
                f"{projection.compressed_pb:.0f} PB/mo ({projection.monthly_energy_savings_mwh:,.0f} MWh saved)",
            ]
        )
    print_table("E9 / §6.4+§7: carbon & traffic projections", ["metric", "paper", "measured"], rows)

    assert modest > 1e6  # "millions of kg CO2e" at a modest 2x
    assert measured > 6e6
    for projection in projections.values():
        within(projection.compressed_pb, 10, 99, "tens of PB")
        # ~two orders of magnitude reduction.
        assert 100 <= projection.reduction_factor <= 200


def test_e9_embodied_rate_sanity(benchmark):
    """The per-TB rate itself stays inside the cited 6-7 kg band."""

    def rate():
        return storage_carbon_savings_kg(1 * TB, 0)

    saved = benchmark(rate)
    within(saved, 6.0, 7.0, "kg CO2e per TB")
