"""Telemetry plane overhead — the PR-6 observability acceptance gate.

The same 8-client load as ``test_server_concurrency`` runs twice through
the concurrent scheduler: once with just the metrics registry (the PR-5
baseline) and once with the full telemetry plane live — time-series
sampler ticking, SLO tracker evaluating per tick, the wall-clock profiler
sampling every thread, and an admin client polling ``/metrics``,
``/healthz`` and ``/debug/timeseries`` over the serving socket throughout.

The acceptance bar: the full plane costs at most 5 % of throughput
(pages per simulated generation second). The run also writes the
artifacts CI uploads — ``benchmarks/artifacts/profile.collapsed`` (the
flamegraph input) and ``benchmarks/artifacts/timeseries.json`` (the
sww-timeseries/1 ring at the end of the load).
"""

import asyncio
import json
import time

from _shared import ARTIFACT_DIR, print_table, record_bench
from test_server_concurrency import (
    BATCH_WAIT_S,
    CLIENTS,
    MAX_BATCH,
    PAGES,
    PAGES_PER_CLIENT,
    build_site,
)

from repro.batching import BatchingEngine
from repro.devices import LAPTOP, WORKSTATION
from repro.obs import (
    MetricsRegistry,
    SLOTracker,
    TimeSeriesSampler,
    WallClockProfiler,
)
from repro.sww.admin import AdminPlane, admin_fetch, admin_fetch_json
from repro.sww.client import GenerativeClient
from repro.sww.server import GenerativeServer

#: Throughput with the full plane must stay within 5 % of the baseline.
OVERHEAD_GATE = 0.95

SAMPLE_INTERVAL_S = 0.2
POLL_INTERVAL_S = 0.25


def run_load(telemetry: bool):
    """The 8-client concurrent load, with or without the telemetry plane."""
    registry = MetricsRegistry()
    engine = BatchingEngine(
        WORKSTATION, max_batch=MAX_BATCH, max_wait_s=BATCH_WAIT_S, registry=registry
    )
    paths = sorted(build_site().pages)
    lanes = [
        paths[i * PAGES_PER_CLIENT : (i + 1) * PAGES_PER_CLIENT] for i in range(CLIENTS)
    ]
    profiler = WallClockProfiler(interval_s=0.005, registry=registry)
    captured: dict = {"admin_polls": 0}

    async def scenario():
        server = GenerativeServer(
            build_site(),
            gen_ability=True,
            engine=engine,
            registry=registry,
            concurrent_streams=True,
        )
        plane = None
        if telemetry:
            sampler = TimeSeriesSampler(registry, interval_s=SAMPLE_INTERVAL_S)
            plane = AdminPlane(
                registry, sampler=sampler, slo=SLOTracker(registry)
            ).bind(server)
        listener = await server.serve_forever("127.0.0.1", 0)
        port = listener.sockets[0].getsockname()[1]
        poll_task = None
        try:
            if plane is not None:
                plane.start()
                profiler.start()

                async def poll_forever():
                    while True:
                        await admin_fetch_json("127.0.0.1", port, "/debug/timeseries")
                        await admin_fetch_json("127.0.0.1", port, "/healthz")
                        status, _body = await admin_fetch("127.0.0.1", port, "/metrics")
                        assert status == 200
                        captured["admin_polls"] += 1
                        await asyncio.sleep(POLL_INTERVAL_S)

                poll_task = asyncio.create_task(poll_forever())

            clients = [
                GenerativeClient(device=LAPTOP, gen_ability=False)
                for _ in range(CLIENTS)
            ]

            async def run_client(lane: int):
                return await clients[lane].fetch_many_tcp("127.0.0.1", port, lanes[lane])

            start = time.perf_counter()
            per_client = await asyncio.wait_for(
                asyncio.gather(*(run_client(i) for i in range(CLIENTS))), timeout=600
            )
            wall_s = time.perf_counter() - start

            if plane is not None:
                # One last poll after the load so the artifacts cover it.
                captured["timeseries"] = await admin_fetch_json(
                    "127.0.0.1", port, "/debug/timeseries"
                )
                captured["healthz"] = await admin_fetch_json(
                    "127.0.0.1", port, "/healthz"
                )
            return wall_s, per_client
        finally:
            if poll_task is not None:
                poll_task.cancel()
                try:
                    await poll_task
                except asyncio.CancelledError:
                    pass
            if plane is not None:
                await plane.stop()
            listener.close()
            await listener.wait_closed()

    try:
        wall_s, per_client = asyncio.run(scenario())
    finally:
        engine.close()
    if telemetry:
        captured["profile"] = profiler.stop()

    pages: dict[str, str] = {}
    for results in per_client:
        for result in results:
            assert result.status == 200, result.path
            pages[result.path] = result.received_html
    sim_s = registry.histogram(
        "sww_generation_seconds", layer="sww", operation="materialise"
    ).sum
    return {
        "wall_s": wall_s,
        "sim_s": sim_s,
        "pages": pages,
        "pages_per_sim_s": PAGES / sim_s,
        "registry": registry,
        **captured,
    }


def run_both():
    baseline = run_load(telemetry=False)
    telemetry = run_load(telemetry=True)
    return baseline, telemetry


def test_telemetry_plane_overhead(benchmark):
    baseline, telemetry = benchmark.pedantic(run_both, rounds=1, iterations=1)

    assert len(baseline["pages"]) == len(telemetry["pages"]) == PAGES
    # Telemetry must be invisible in the payload.
    assert telemetry["pages"] == baseline["pages"]

    ratio = telemetry["pages_per_sim_s"] / baseline["pages_per_sim_s"]
    profile = telemetry["profile"]

    print_table(
        f"Telemetry plane: {CLIENTS} clients x {PAGES_PER_CLIENT} pages under full observation",
        ["metric", "registry only", "full plane"],
        [
            ["wall time", f"{baseline['wall_s']:.2f} s", f"{telemetry['wall_s']:.2f} s"],
            ["simulated generation", f"{baseline['sim_s']:.1f} s", f"{telemetry['sim_s']:.1f} s"],
            ["pages / simulated s", f"{baseline['pages_per_sim_s']:.4f}", f"{telemetry['pages_per_sim_s']:.4f}"],
            ["throughput retained", "-", f"{ratio:.1%}"],
            ["admin polls", "-", telemetry["admin_polls"]],
            ["sampler ticks", "-", telemetry["timeseries"]["tick"] + 1],
            ["profiler samples", "-", profile.sample_count],
            ["health status", "-", telemetry["healthz"]["status"]],
        ],
    )

    # The plane observed the load: ticks advanced, the admin endpoint
    # answered mid-run, the profiler saw more than one thread.
    assert telemetry["admin_polls"] >= 1
    assert telemetry["timeseries"]["tick"] >= 1
    assert profile.sample_count > 0
    assert "sww_request_seconds" in json.dumps(telemetry["timeseries"])

    # Artifacts for CI: flamegraph input + the timeseries ring.
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    collapsed = profile.collapsed()
    assert collapsed.strip(), "collapsed profile must not be empty"
    (ARTIFACT_DIR / "profile.collapsed").write_text(collapsed)
    (ARTIFACT_DIR / "timeseries.json").write_text(
        json.dumps(telemetry["timeseries"], sort_keys=True, indent=2) + "\n"
    )

    # The 5% throughput gate (also enforced in CI against
    # BENCH_server_concurrency.json's concurrent_8 scenario).
    assert ratio >= OVERHEAD_GATE, (
        f"telemetry plane cost {1 - ratio:.1%} of throughput (gate: 5%)"
    )

    record_bench(
        "telemetry",
        "registry_only",
        wall_time_s=baseline["wall_s"],
        generation_sim_s=round(baseline["sim_s"], 3),
        pages=PAGES,
        pages_per_sim_s=round(baseline["pages_per_sim_s"], 6),
    )
    record_bench(
        "telemetry",
        "full_plane",
        wall_time_s=telemetry["wall_s"],
        generation_sim_s=round(telemetry["sim_s"], 3),
        pages=PAGES,
        pages_per_sim_s=round(telemetry["pages_per_sim_s"], 6),
        throughput_retained=round(ratio, 4),
        admin_polls=telemetry["admin_polls"],
        profiler_samples=profile.sample_count,
        sampler_ticks=telemetry["timeseries"]["tick"] + 1,
        clients=CLIENTS,
    )
