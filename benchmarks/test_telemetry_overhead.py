"""Telemetry plane overhead — the PR-6 observability acceptance gate.

The same 8-client load as ``test_server_concurrency`` runs twice through
the concurrent scheduler: once with just the metrics registry (the PR-5
baseline) and once with the full telemetry plane live — time-series
sampler ticking, SLO tracker evaluating per tick, the wall-clock profiler
sampling every thread, and an admin client polling ``/metrics``,
``/healthz`` and ``/debug/timeseries`` over the serving socket throughout.

The acceptance bar: the full plane costs at most 5 % of throughput
(pages per simulated generation second). The run also writes the
artifacts CI uploads — ``benchmarks/artifacts/profile.collapsed`` (the
flamegraph input) and ``benchmarks/artifacts/timeseries.json`` (the
sww-timeseries/1 ring at the end of the load).
"""

import asyncio
import json
import time

from _shared import ARTIFACT_DIR, print_table, record_bench
from test_server_concurrency import (
    BATCH_WAIT_S,
    CLIENTS,
    MAX_BATCH,
    PAGES,
    PAGES_PER_CLIENT,
    build_site,
)

from repro.batching import BatchingEngine
from repro.devices import LAPTOP, WORKSTATION
from repro.obs import (
    EventLog,
    FlightRecorder,
    IdSource,
    MetricsRegistry,
    SLOTracker,
    TailSampler,
    TimeSeriesSampler,
    Tracer,
    WallClockProfiler,
    bundle_signature,
)
from repro.sww.admin import AdminPlane, admin_fetch, admin_fetch_json
from repro.sww.client import GenerativeClient
from repro.sww.server import GenerativeServer

#: Throughput with the full plane must stay within 5 % of the baseline.
OVERHEAD_GATE = 0.95

SAMPLE_INTERVAL_S = 0.2
POLL_INTERVAL_S = 0.25


def run_load(telemetry: bool):
    """The 8-client concurrent load, with or without the telemetry plane.

    The full plane now includes the wide-event log (one event per request
    through server, engine and clients) and an armed flight recorder
    polling its triggers on every sampler tick — both must fit inside the
    same 5 % overhead gate.
    """
    registry = MetricsRegistry()
    events = EventLog(capacity=8192, registry=registry) if telemetry else None
    engine = BatchingEngine(
        WORKSTATION,
        max_batch=MAX_BATCH,
        max_wait_s=BATCH_WAIT_S,
        registry=registry,
        events=events,
    )
    paths = sorted(build_site().pages)
    lanes = [
        paths[i * PAGES_PER_CLIENT : (i + 1) * PAGES_PER_CLIENT] for i in range(CLIENTS)
    ]
    profiler = WallClockProfiler(interval_s=0.005, registry=registry)
    captured: dict = {"admin_polls": 0}

    async def scenario():
        server = GenerativeServer(
            build_site(),
            gen_ability=True,
            engine=engine,
            registry=registry,
            concurrent_streams=True,
            events=events,
        )
        plane = None
        recorder = None
        if telemetry:
            sampler = TimeSeriesSampler(registry, interval_s=SAMPLE_INTERVAL_S)
            slo = SLOTracker(registry)
            # AdminPlane attaches the SLO evaluator to the sampler; the
            # recorder attaches after it so each tick evaluates burn rates
            # before the armed triggers read them.
            plane = AdminPlane(
                registry, sampler=sampler, slo=slo, events=events
            ).bind(server)
            recorder = FlightRecorder(
                registry=registry, events=events, slo=slo, server=server
            ).attach(sampler)
            plane.recorder = recorder
            server.recorder = recorder
            captured["recorder"] = recorder
        listener = await server.serve_forever("127.0.0.1", 0)
        port = listener.sockets[0].getsockname()[1]
        poll_task = None
        try:
            if plane is not None:
                plane.start()
                profiler.start()

                async def poll_forever():
                    while True:
                        await admin_fetch_json("127.0.0.1", port, "/debug/timeseries")
                        await admin_fetch_json("127.0.0.1", port, "/healthz")
                        await admin_fetch_json(
                            "127.0.0.1", port, "/debug/events?format=columnar&n=64"
                        )
                        await admin_fetch_json("127.0.0.1", port, "/incidents")
                        status, _body = await admin_fetch("127.0.0.1", port, "/metrics")
                        assert status == 200
                        captured["admin_polls"] += 1
                        await asyncio.sleep(POLL_INTERVAL_S)

                poll_task = asyncio.create_task(poll_forever())

            clients = [
                GenerativeClient(device=LAPTOP, gen_ability=False)
                for _ in range(CLIENTS)
            ]

            async def run_client(lane: int):
                return await clients[lane].fetch_many_tcp("127.0.0.1", port, lanes[lane])

            start = time.perf_counter()
            per_client = await asyncio.wait_for(
                asyncio.gather(*(run_client(i) for i in range(CLIENTS))), timeout=600
            )
            wall_s = time.perf_counter() - start

            if plane is not None:
                # One last poll after the load so the artifacts cover it.
                captured["timeseries"] = await admin_fetch_json(
                    "127.0.0.1", port, "/debug/timeseries"
                )
                captured["healthz"] = await admin_fetch_json(
                    "127.0.0.1", port, "/healthz"
                )
            return wall_s, per_client
        finally:
            if poll_task is not None:
                poll_task.cancel()
                try:
                    await poll_task
                except asyncio.CancelledError:
                    pass
            if plane is not None:
                await plane.stop()
            listener.close()
            await listener.wait_closed()

    try:
        wall_s, per_client = asyncio.run(scenario())
    finally:
        engine.close()
    if telemetry:
        captured["profile"] = profiler.stop()

    pages: dict[str, str] = {}
    for results in per_client:
        for result in results:
            assert result.status == 200, result.path
            pages[result.path] = result.received_html
    sim_s = registry.histogram(
        "sww_generation_seconds", layer="sww", operation="materialise"
    ).sum
    if events is not None:
        captured["events_jsonl"] = events.to_jsonl()
        captured["events_recorded"] = len(events.events()) + events.dropped
        captured["open_events"] = events.open_count
    return {
        "wall_s": wall_s,
        "sim_s": sim_s,
        "pages": pages,
        "pages_per_sim_s": PAGES / sim_s,
        "registry": registry,
        **captured,
    }


def run_both():
    baseline = run_load(telemetry=False)
    telemetry = run_load(telemetry=True)
    return baseline, telemetry


def test_telemetry_plane_overhead(benchmark):
    baseline, telemetry = benchmark.pedantic(run_both, rounds=1, iterations=1)

    assert len(baseline["pages"]) == len(telemetry["pages"]) == PAGES
    # Telemetry must be invisible in the payload.
    assert telemetry["pages"] == baseline["pages"]

    ratio = telemetry["pages_per_sim_s"] / baseline["pages_per_sim_s"]
    profile = telemetry["profile"]

    print_table(
        f"Telemetry plane: {CLIENTS} clients x {PAGES_PER_CLIENT} pages under full observation",
        ["metric", "registry only", "full plane"],
        [
            ["wall time", f"{baseline['wall_s']:.2f} s", f"{telemetry['wall_s']:.2f} s"],
            ["simulated generation", f"{baseline['sim_s']:.1f} s", f"{telemetry['sim_s']:.1f} s"],
            ["pages / simulated s", f"{baseline['pages_per_sim_s']:.4f}", f"{telemetry['pages_per_sim_s']:.4f}"],
            ["throughput retained", "-", f"{ratio:.1%}"],
            ["admin polls", "-", telemetry["admin_polls"]],
            ["sampler ticks", "-", telemetry["timeseries"]["tick"] + 1],
            ["profiler samples", "-", profile.sample_count],
            ["health status", "-", telemetry["healthz"]["status"]],
            ["wide events", "-", telemetry["events_recorded"]],
            ["incidents fired", "-", len(telemetry["recorder"].incidents())],
        ],
    )

    # The plane observed the load: ticks advanced, the admin endpoint
    # answered mid-run, the profiler saw more than one thread.
    assert telemetry["admin_polls"] >= 1
    assert telemetry["timeseries"]["tick"] >= 1
    assert profile.sample_count > 0
    assert "sww_request_seconds" in json.dumps(telemetry["timeseries"])

    # Every request that began a wide event finished it — no leaked ring
    # entries — and every page fetch is represented at least once.
    assert telemetry["open_events"] == 0
    assert telemetry["events_recorded"] >= PAGES

    # Artifacts for CI: flamegraph input, the timeseries ring, and the
    # wide-event log (one JSON object per request).
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    collapsed = profile.collapsed()
    assert collapsed.strip(), "collapsed profile must not be empty"
    (ARTIFACT_DIR / "profile.collapsed").write_text(collapsed)
    (ARTIFACT_DIR / "timeseries.json").write_text(
        json.dumps(telemetry["timeseries"], sort_keys=True, indent=2) + "\n"
    )
    (ARTIFACT_DIR / "events.jsonl").write_text(telemetry["events_jsonl"])

    # The 5% throughput gate (also enforced in CI against
    # BENCH_server_concurrency.json's concurrent_8 scenario).
    assert ratio >= OVERHEAD_GATE, (
        f"telemetry plane cost {1 - ratio:.1%} of throughput (gate: 5%)"
    )

    record_bench(
        "telemetry",
        "registry_only",
        wall_time_s=baseline["wall_s"],
        generation_sim_s=round(baseline["sim_s"], 3),
        pages=PAGES,
        pages_per_sim_s=round(baseline["pages_per_sim_s"], 6),
    )
    record_bench(
        "telemetry",
        "full_plane",
        wall_time_s=telemetry["wall_s"],
        generation_sim_s=round(telemetry["sim_s"], 3),
        pages=PAGES,
        pages_per_sim_s=round(telemetry["pages_per_sim_s"], 6),
        throughput_retained=round(ratio, 4),
        admin_polls=telemetry["admin_polls"],
        profiler_samples=profile.sample_count,
        sampler_ticks=telemetry["timeseries"]["tick"] + 1,
        clients=CLIENTS,
        wide_events=telemetry["events_recorded"],
        open_events=telemetry["open_events"],
        incidents=len(telemetry["recorder"].incidents()),
    )


# --------------------------------------------------------------------- #
# Deterministic incident capture
# --------------------------------------------------------------------- #

#: Fixed (path, status) request tape for the injected incident: 4 bad of
#: 5 is a 0.8 bad-fraction over the 5% request-latency budget — burn 16x,
#: comfortably over the 14.4x fast-window alert.
INCIDENT_TAPE = [
    ("/blog/a", 200),
    ("/blog/slow", 500),
    ("/blog/slow", 500),
    ("/blog/slow", 500),
    ("/blog/slow", 500),
]

INCIDENT_SEED = 42


def capture_fast_burn(seed: int) -> dict:
    """Drive a fixed workload into an SLO fast burn; return the bundle.

    Everything identity-bearing is seeded (trace/span ids via IdSource)
    or scripted (the request tape), so two captures at the same seed must
    produce byte-identical signature projections — wall-clock durations
    are excluded by :func:`bundle_signature`.
    """
    registry = MetricsRegistry()
    events = EventLog(registry=registry)
    tracer = Tracer(
        ids=IdSource(seed),
        tail=TailSampler(
            capacity=64, slow_k=8, baseline_rate=1.0, ids=IdSource(seed)
        ),
    )
    sampler = TimeSeriesSampler(registry, interval_s=1.0)
    slo = SLOTracker(registry)
    slo.attach(sampler)
    recorder = FlightRecorder(
        registry=registry, events=events, tracer=tracer, slo=slo
    ).attach(sampler)

    latency = registry.histogram("sww_request_seconds", layer="sww")
    sampler.tick()  # baseline tick: burn windows measure from here
    for path, status in INCIDENT_TAPE:
        record = events.begin(
            "server.request", path=path, transport="memory", serve_mode="generative"
        )
        with record.bind(), tracer.span("server.stream", page=path):
            # Over the 5 s request-latency threshold on failures: each bad
            # request spends fast-window error budget.
            latency.observe(9.0 if status == 500 else 0.01)
        if status == 500:
            record.finish(status=status, error="TimeoutError")
        else:
            record.finish(status=status)
    before = set(recorder.armed())
    sampler.tick()  # evaluates burn, then the armed trigger reads it
    fired = before - set(recorder.armed())
    incidents = recorder.incidents()
    assert events.open_count == 0
    return {"fired": fired, "incidents": incidents, "slo": slo.report()}


def test_injected_fast_burn_produces_a_deterministic_bundle():
    first = capture_fast_burn(INCIDENT_SEED)
    second = capture_fast_burn(INCIDENT_SEED)

    # The injected burn fires exactly the fast-burn trigger, once.
    assert first["fired"] == {"slo-fast-burn"}
    assert len(first["incidents"]) == 1
    bundle = first["incidents"][0]
    assert bundle["trigger"]["kind"] == "slo-fast-burn"
    assert "request-latency" in bundle["trigger"]["detail"]
    assert first["slo"]["request-latency"]["windows"]["fast"] >= 14.4
    # The bundle carries the request tape as wide events.
    assert [e["path"] for e in bundle["events"]] == [p for p, _ in INCIDENT_TAPE]

    # Same seed, same tape → same signature, across independent stacks.
    sig_first = bundle_signature(bundle)
    sig_second = bundle_signature(second["incidents"][0])
    assert sig_first == sig_second

    # Export the bundle the way `sww incidents export` would, so CI can
    # pick it up alongside events.jsonl.
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    (ARTIFACT_DIR / f"{bundle['incident']}.json").write_text(
        json.dumps(bundle, sort_keys=True, indent=2) + "\n"
    )

    record_bench(
        "telemetry",
        "injected_fast_burn",
        trigger=bundle["trigger"]["kind"],
        fast_burn=first["slo"]["request-latency"]["windows"]["fast"],
        bundle_events=len(bundle["events"]),
        bundle_traces=len(bundle["traces"]),
        bundle_signature=sig_first,
        deterministic=sig_first == sig_second,
    )
