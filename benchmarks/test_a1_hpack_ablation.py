"""A1 ablation — protocol overhead of the SWW handshake and HPACK's role.

The paper's extension costs exactly one 6-byte (identifier, value) pair in
the initial SETTINGS frame. This ablation measures (a) that marginal cost
on the wire, and (b) what HPACK's Huffman coding and dynamic-table
indexing contribute on a realistic request stream — quantifying the
"minor changes to HTTP" claim.
"""

from _shared import print_table

from repro.http2.connection import H2Connection, Role
from repro.http2.frames import TYPE_SETTINGS
from repro.http2.hpack import HpackDecoder, HpackEncoder
from repro.http2.transport import InMemoryTransportPair


def handshake_bytes(gen_ability: bool) -> int:
    client = H2Connection(Role.CLIENT, gen_ability=gen_ability)
    server = H2Connection(Role.SERVER, gen_ability=gen_ability)
    pair = InMemoryTransportPair(client, server)
    pair.handshake()
    return client.sent_frame_bytes.get(TYPE_SETTINGS, 0) + server.sent_frame_bytes.get(TYPE_SETTINGS, 0)


REQUEST_HEADERS = [
    (b":method", b"GET"),
    (b":scheme", b"https"),
    (b":authority", b"sww.example"),
    (b"user-agent", b"sww-generative-client/1.0"),
    (b"accept", b"text/html,application/xhtml+xml"),
    (b"accept-language", b"en-GB,en;q=0.9"),
]


def request_stream_bytes(use_huffman: bool, use_indexing: bool, requests: int = 20) -> int:
    encoder = HpackEncoder(use_huffman=use_huffman, use_indexing=use_indexing)
    decoder = HpackDecoder()
    total = 0
    for i in range(requests):
        headers = REQUEST_HEADERS + [(b":path", f"/wiki/page-{i}".encode())]
        block = encoder.encode(headers)
        assert decoder.decode(block) == [(n.lower(), v) for n, v in headers]
        total += len(block)
    return total


def test_a1_settings_overhead(benchmark):
    with_ext, without_ext = benchmark.pedantic(
        lambda: (handshake_bytes(True), handshake_bytes(False)), rounds=1, iterations=1
    )
    marginal = with_ext - without_ext

    print_table(
        "A1a: wire cost of SETTINGS_GEN_ABILITY",
        ["handshake", "SETTINGS bytes (both directions)"],
        [
            ["without extension", without_ext],
            ["with extension", with_ext],
            ["marginal cost", f"{marginal} B (one 6 B setting per side)"],
        ],
    )
    # One 16-bit identifier + 32-bit value per side = 12 bytes total.
    assert marginal == 12


def test_a1_hpack_mechanisms(benchmark):
    def run():
        return {
            (True, True): request_stream_bytes(True, True),
            (False, True): request_stream_bytes(False, True),
            (True, False): request_stream_bytes(True, False),
            (False, False): request_stream_bytes(False, False),
        }

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = sizes[(False, False)]

    print_table(
        "A1b: HPACK ablation (20-request stream, bytes of header blocks)",
        ["huffman", "indexing", "bytes", "vs raw literals"],
        [
            [str(h), str(i), sizes[(h, i)], f"{baseline / sizes[(h, i)]:.2f}x"]
            for (h, i) in sizes
        ],
    )

    assert sizes[(True, True)] < sizes[(False, True)] < baseline
    assert sizes[(True, True)] < sizes[(True, False)] < baseline
    # Full HPACK at least halves header bytes on a repetitive stream.
    assert baseline / sizes[(True, True)] > 2.0
