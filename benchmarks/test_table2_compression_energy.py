"""E7 / Table 2 — storage savings, generation time and energy per media type.

Paper's Table 2 (SD 3 Medium + DeepSeek-R1 8B):

    Media            Size[B]  Meta[B]  Ratio    Laptop       Workstation
    Small  256x256     8192     428     19.14    7 s/0.02Wh   1.0 s/0.04Wh
    Medium 512x512    32768     428     76.56   19 s/0.05Wh   1.7 s/0.06Wh
    Large 1024x1024  131072     428    306.24  310 s/0.90Wh   6.2 s/0.21Wh
    Text (250 words)   1250     649      1.93   32 s/0.01Wh  13.0 s/0.51Wh
"""

import time

import pytest
from _shared import BENCH_REGISTRY, print_table, record_bench

from repro.devices import LAPTOP, WORKSTATION
from repro.genai.image import generate_image
from repro.genai.registry import DEEPSEEK_R1_8B, SD3_MEDIUM
from repro.genai.text import expand_text
from repro.media.jpeg_model import jpeg_size, text_block_size
from repro.metrics.compression import WORST_CASE_IMAGE_METADATA, compression_ratio

TEXT_METADATA_BYTES = 649  # Table 2's text metadata budget
PROMPT = "a landscape photograph of a glacier tongue above a gravel valley"
TEXT_PROMPT = "- transit corridor planning\n- funding committee review\n- construction next spring"

PAPER_ROWS = {
    "small": (8192, 428, 19.14, 7.0, 0.02, 1.0, 0.04),
    "medium": (32768, 428, 76.56, 19.0, 0.05, 1.7, 0.06),
    "large": (131072, 428, 306.24, 310.0, 0.90, 6.2, 0.21),
    "text": (1250, 649, 1.93, 32.0, 0.01, 13.0, 0.51),
}


def run_table2():
    rows = {}
    for label, side in (("small", 256), ("medium", 512), ("large", 1024)):
        size = jpeg_size(side, side)
        ratio = compression_ratio(size, WORST_CASE_IMAGE_METADATA)
        lt = generate_image(SD3_MEDIUM, LAPTOP, PROMPT, side, side, 15, registry=BENCH_REGISTRY)
        wt = generate_image(SD3_MEDIUM, WORKSTATION, PROMPT, side, side, 15, registry=BENCH_REGISTRY)
        rows[label] = (size, WORST_CASE_IMAGE_METADATA, ratio, lt.sim_time_s, lt.energy_wh, wt.sim_time_s, wt.energy_wh)
    size = text_block_size(250)
    ratio = compression_ratio(size, TEXT_METADATA_BYTES)
    lt = expand_text(DEEPSEEK_R1_8B, LAPTOP, TEXT_PROMPT, 250, "news", registry=BENCH_REGISTRY)
    wt = expand_text(DEEPSEEK_R1_8B, WORKSTATION, TEXT_PROMPT, 250, "news", registry=BENCH_REGISTRY)
    rows["text"] = (size, TEXT_METADATA_BYTES, ratio, lt.sim_time_s, lt.energy_wh, wt.sim_time_s, wt.energy_wh)
    return rows


def test_table2(benchmark):
    start = time.perf_counter()
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    wall_time_s = time.perf_counter() - start
    for label, m in rows.items():
        record_bench(
            "table2",
            label,
            compression_ratio=m[2],
            laptop_sim_s=round(m[3], 3),
            workstation_sim_s=round(m[5], 3),
        )
    record_bench("table2", "harness", wall_time_s=wall_time_s)

    print_table(
        "Table 2 (paper / measured)",
        ["media", "size B", "meta B", "ratio", "laptop s", "laptop Wh", "wk s", "wk Wh"],
        [
            [
                label,
                f"{PAPER_ROWS[label][0]} / {m[0]}",
                f"{PAPER_ROWS[label][1]} / {m[1]}",
                f"{PAPER_ROWS[label][2]} / {m[2]:.2f}",
                f"{PAPER_ROWS[label][3]} / {m[3]:.1f}",
                f"{PAPER_ROWS[label][4]} / {m[4]:.3f}",
                f"{PAPER_ROWS[label][5]} / {m[5]:.2f}",
                f"{PAPER_ROWS[label][6]} / {m[6]:.3f}",
            ]
            for label, m in rows.items()
        ],
    )

    for label, measured in rows.items():
        p = PAPER_ROWS[label]
        assert measured[0] == p[0], f"{label} media size"
        assert measured[1] == p[1], f"{label} metadata size"
        assert measured[2] == pytest.approx(p[2], abs=0.01), f"{label} ratio"
        assert measured[3] == pytest.approx(p[3], rel=0.05), f"{label} laptop time"
        assert measured[4] == pytest.approx(p[4], abs=0.012), f"{label} laptop energy"
        assert measured[5] == pytest.approx(p[5], rel=0.06), f"{label} wk time"
        assert measured[6] == pytest.approx(p[6], abs=0.02), f"{label} wk energy"

    # Shape: 'the bigger the image, the higher image compression ratio'.
    ratios = [rows[l][2] for l in ("small", "medium", "large")]
    assert ratios == sorted(ratios)


def test_wire_bytes_from_registry_cross_check():
    """The registry's wire-byte counters must agree with two independent
    accountings: the engines' own byte counters, and a by-hand total
    recomputed from the parsed frames (9-byte header + payload each)."""
    from repro.http2.frames import parse_frames
    from repro.obs import MetricsRegistry
    from repro.sww.client import GenerativeClient, connect_in_memory
    from repro.sww.server import GenerativeServer, PageResource, SiteStore
    from repro.workloads import build_news_article

    registry = MetricsRegistry()
    page = build_news_article()
    store = SiteStore()
    store.add_page(PageResource(page.path, page.sww_html, page.traditional_html))
    server = GenerativeServer(store, registry=registry)
    client = GenerativeClient(device=LAPTOP, registry=registry)
    pair = connect_in_memory(client, server)

    # Capture everything both engines emit after the handshake, so the
    # request/response phase can be re-totalled frame by frame.
    captured = {"client": bytearray(), "server": bytearray()}
    for side in ("client", "server"):
        conn = getattr(pair, side).conn
        original = conn.data_to_send

        def wrapped(original=original, sink=captured[side]):
            data = original()
            sink.extend(data)
            return data

        conn.data_to_send = wrapped

    sent_before = registry.value("http2_wire_bytes_total", layer="http2", operation="sent")
    received_before = registry.value("http2_wire_bytes_total", layer="http2", operation="received")
    client.fetch_via_pair(pair, page.path)
    sent_delta = registry.value("http2_wire_bytes_total", layer="http2", operation="sent") - sent_before
    received_delta = (
        registry.value("http2_wire_bytes_total", layer="http2", operation="received")
        - received_before
    )

    # 1. Registry vs captured bytes vs a frame-by-frame hand total.
    captured_total = sum(len(buf) for buf in captured.values())
    hand_total = 0
    frame_count = 0
    for buf in captured.values():
        frames, rest = parse_frames(bytes(buf))
        assert rest == b""
        frame_count += len(frames)
        hand_total += sum(9 + len(frame.payload()) for frame in frames)
    assert sent_delta == captured_total == hand_total
    assert frame_count > 0

    # 2. Duplex symmetry: every byte one engine sent, the other received.
    assert sent_delta == received_delta

    # 3. Registry totals (handshake included) vs the engines' own counters.
    total_sent = registry.value("http2_wire_bytes_total", layer="http2", operation="sent")
    assert total_sent == pair.client.conn.bytes_sent + pair.server.conn.bytes_sent
    print_table(
        "Wire bytes, three accountings",
        ["source", "bytes"],
        [
            ["metrics registry (request phase)", int(sent_delta)],
            ["captured stream", captured_total],
            ["frame-by-frame hand total", hand_total],
        ],
    )
