"""E5 / §6.3.1 — inference-step and image-size scaling sweeps.

Paper: "These trends remain as we scale inference steps from 10 to 60,
with only minor changes to CLIP score and with generation time increasing
linearly with the number of steps. As image size is increased, generation
time is increased on the workstation relative to the number of pixels,
but on the laptop it grows significantly beyond that for images of
1024×1024, reaching 310 seconds."
"""

import numpy as np
import pytest
from _shared import print_table

from repro.devices import LAPTOP, WORKSTATION
from repro.genai.image import generate_image
from repro.genai.registry import SD3_MEDIUM
from repro.metrics.clip import clip_score
from repro.workloads.corpus import landscape_prompts

PROMPT = landscape_prompts(1, seed="e5")[0]
STEPS = (10, 20, 30, 40, 50, 60)
SIZES = (224, 256, 512, 1024)


def sweep_steps():
    rows = []
    for steps in STEPS:
        # Fixed seed isolates the step effect from draw-to-draw jitter.
        result = generate_image(SD3_MEDIUM, WORKSTATION, PROMPT, 224, 224, steps, seed=7)
        rows.append((steps, result.sim_time_s, clip_score(PROMPT, result.pixels)))
    return rows


def sweep_sizes():
    rows = []
    for side in SIZES:
        lt = generate_image(SD3_MEDIUM, LAPTOP, PROMPT, side, side, 15).sim_time_s
        wt = generate_image(SD3_MEDIUM, WORKSTATION, PROMPT, side, side, 15).sim_time_s
        rows.append((side, lt, wt))
    return rows


def test_e5_step_scaling(benchmark):
    rows = benchmark.pedantic(sweep_steps, rounds=1, iterations=1)
    print_table(
        "E5a / §6.3.1: inference-step sweep (SD 3 Medium, workstation, 224²)",
        ["steps", "time (s)", "CLIP"],
        [[s, f"{t:.2f}", f"{c:.3f}"] for s, t, c in rows],
    )
    times = np.array([t for _s, t, _c in rows])
    clips = np.array([c for _s, _t, c in rows])
    steps = np.array(STEPS, dtype=float)

    # Time is linear in steps: perfect correlation and proportionality.
    ratios = times / steps
    assert ratios.std() / ratios.mean() < 0.01, "time not linear in steps"
    # CLIP changes only minorly across the sweep.
    assert clips.max() - clips.min() < 0.03, "CLIP should barely move"
    assert clips[-1] >= clips[0]  # ...and never degrades with more steps


def test_e5_size_scaling(benchmark):
    rows = benchmark.pedantic(sweep_sizes, rounds=1, iterations=1)
    print_table(
        "E5b / §6.3.1: image-size sweep (SD 3 Medium, 15 steps)",
        ["size", "laptop (s)", "workstation (s)", "paper anchors"],
        [
            [f"{side}x{side}", f"{lt:.1f}", f"{wt:.2f}",
             {256: "7 / 1.0", 512: "19 / 1.7", 1024: "310 / 6.2"}.get(side, "-")]
            for side, lt, wt in rows
        ],
    )
    by_size = {side: (lt, wt) for side, lt, wt in rows}

    # Workstation scales like the pixel count (within 2.5x of linear).
    wk_ratio = by_size[1024][1] / by_size[512][1]
    pixel_ratio = 4.0
    assert wk_ratio < 1.2 * pixel_ratio

    # Laptop grows far beyond the pixel ratio at 1024², reaching ~310 s.
    laptop_ratio = by_size[1024][0] / by_size[512][0]
    assert laptop_ratio > 3 * pixel_ratio
    assert by_size[1024][0] == pytest.approx(310, rel=0.03)
