"""E11 / §3.2 — video capability negotiation and data savings.

Paper: the SETTINGS mechanism extends to streaming; a frame-rate-boosting
client halves the data (60→30 fps) and resolution upscaling saves 2.3×
(4K 7 GB/h → HD 3 GB/h).
"""

import pytest
from _shared import print_table

from repro.http2.connection import H2Connection, Role
from repro.http2.settings import GenAbility, GenCapability, Setting
from repro.http2.transport import InMemoryTransportPair
from repro.media.video import VideoLadder


def negotiate_and_plan(client_value: int):
    client = H2Connection(Role.CLIENT, gen_ability=bool(client_value), gen_ability_value=client_value)
    server = H2Connection(Role.SERVER, gen_ability=True)
    pair = InMemoryTransportPair(client, server)
    pair.handshake()
    ability = GenAbility(server.peer_settings.get(Setting.GEN_ABILITY))
    ladder = VideoLadder()
    target = ladder.find("4K")
    sent, savings = ladder.serve_plan(
        target,
        client_framerate_boost=ability.supports(GenCapability.VIDEO_FRAMERATE),
        client_resolution_upscale=ability.supports(GenCapability.VIDEO_RESOLUTION),
    )
    return sent, savings


SCENARIOS = {
    "none": 0,
    "framerate": int(GenCapability.GENERATE | GenCapability.VIDEO_FRAMERATE),
    "resolution": int(GenCapability.GENERATE | GenCapability.VIDEO_RESOLUTION),
    "both": int(
        GenCapability.GENERATE | GenCapability.VIDEO_FRAMERATE | GenCapability.VIDEO_RESOLUTION
    ),
}


def run_all():
    return {label: negotiate_and_plan(value) for label, value in SCENARIOS.items()}


def test_e11_video_negotiation(benchmark):
    plans = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_table(
        "E11 / §3.2: video capability negotiation (target: 4K@60, 7 GB/h)",
        ["client capability", "server ships", "GB/h", "savings", "paper"],
        [
            [
                label,
                sent.name,
                f"{sent.gb_per_hour:.2f}",
                f"{savings:.2f}x",
                {"none": "1x", "framerate": "2x", "resolution": "2.3x", "both": "-"}[label],
            ]
            for label, (sent, savings) in plans.items()
        ],
    )

    assert plans["none"][1] == 1.0
    assert plans["framerate"][1] == pytest.approx(2.0)
    assert plans["resolution"][1] == pytest.approx(7.0 / 3.0, abs=0.01)
    assert plans["both"][1] > plans["resolution"][1]
    # 7 GB/h at 4K and 3 GB/h at FHD are the paper's cited anchors.
    ladder = VideoLadder()
    assert ladder.find("4K").gb_per_hour == 7.0
    assert ladder.find("FHD").gb_per_hour == 3.0
