"""A5 ablation — the §2.2 upscaling path and server push delivery.

Two optional mechanisms around the core prompt path:

* **upscaling**: store/ship a small unique image and upscale on-device —
  storage falls by scale², and unlike full generation the paper notes
  "sub-second inference".
* **server push**: when a capable server materialises media for a naive
  client, pushing it (RFC 9113 §8.4) removes the follow-up GET round
  trips.
"""

from _shared import print_table, within

from repro import GenerativeClient, GenerativeServer, LAPTOP, PageResource, SiteStore, WORKSTATION
from repro.genai.image import generate_image
from repro.genai.registry import SD3_MEDIUM
from repro.genai.upscale import ONE_STEP_SR, storage_saving_factor, upscale_image
from repro.media.jpeg_model import jpeg_size
from repro.sww.client import connect_in_memory
from repro.workloads import build_travel_blog


def run_upscale_comparison():
    rows = []
    base = generate_image(SD3_MEDIUM, WORKSTATION, "a unique hike photo stand-in", 256, 256, 15)
    for scale in (2, 4):
        out_side = 256 * scale
        stored_small = jpeg_size(256, 256)
        stored_large = jpeg_size(out_side, out_side)
        up_wk = upscale_image(ONE_STEP_SR, WORKSTATION, base.pixels, scale)
        gen_wk = generate_image(SD3_MEDIUM, WORKSTATION, "x", out_side, out_side, 15)
        rows.append(
            (
                scale,
                stored_large,
                stored_small,
                stored_large / stored_small,
                up_wk.sim_time_s,
                gen_wk.sim_time_s,
            )
        )
    return rows


def test_a5_upscaling(benchmark):
    rows = benchmark.pedantic(run_upscale_comparison, rounds=1, iterations=1)
    print_table(
        "A5a / §2.2: upscale-only path for unique content (workstation)",
        ["scale", "full-size B", "stored B", "storage saving", "upscale s", "full gen s"],
        [
            [f"{scale}x", large, small, f"{saving:.0f}x", f"{up:.2f}", f"{gen:.2f}"]
            for scale, large, small, saving, up, gen in rows
        ],
    )
    for scale, _large, _small, saving, up_time, gen_time in rows:
        assert saving == storage_saving_factor(256 * scale, 256 * scale, scale)
        assert up_time < 1.0  # "sub-second inference"
        assert gen_time / up_time > 5


def run_push_comparison():
    results = {}
    for push in (False, True):
        page = build_travel_blog()
        store = SiteStore()
        store.add_page(PageResource(page.path, page.sww_html, page.traditional_html))
        server = GenerativeServer(store, push_assets=push)
        client = GenerativeClient(device=LAPTOP, gen_ability=False)
        pair = connect_in_memory(client, server)
        result = client.fetch_via_pair(pair, page.path)
        extra_fetches = client.fetch_assets_via_pair(pair, result)
        generated_fetches = [p for p in extra_fetches if p.startswith("/generated/")]
        results[push] = {
            "pushed": len(result.pushed_assets),
            "follow_up_gets": len(generated_fetches),
            "bytes": result.wire_bytes
            + sum(len(b) for b in result.pushed_assets.values())
            + sum(len(b) for b in extra_fetches.values()),
        }
    return results


def test_a5_server_push(benchmark):
    results = benchmark.pedantic(run_push_comparison, rounds=1, iterations=1)
    print_table(
        "A5b: server push of generated media to a naive client",
        ["mode", "assets pushed", "follow-up GETs for generated media", "total bytes"],
        [
            ["pull (baseline)", results[False]["pushed"], results[False]["follow_up_gets"], f"{results[False]['bytes']:,}"],
            ["push", results[True]["pushed"], results[True]["follow_up_gets"], f"{results[True]['bytes']:,}"],
        ],
    )
    assert results[False]["pushed"] == 0 and results[False]["follow_up_gets"] == 3
    assert results[True]["pushed"] == 3 and results[True]["follow_up_gets"] == 0
    # Same media either way: bytes within framing overhead of each other.
    within(
        results[True]["bytes"] / results[False]["bytes"], 0.95, 1.05, "push/pull byte parity"
    )
