"""E13 / §3.2 — a full streaming session with SWW-negotiated reconstruction.

Extends E11's negotiation table into actual playback: an hour of 4K over
an HLS-style segment schedule, for each client capability class, with the
client-side reconstruction cost accounted. The paper's anchors: 60→30 fps
halves the data; 4K shipped as FHD saves 2.3× (7 → 3 GB/h).
"""

import pytest
from _shared import print_table

from repro.http2.settings import GenAbility, GenCapability
from repro.media.streaming import StreamingService, StreamingSession

SCENARIOS = {
    "none": 0,
    "framerate": int(GenCapability.GENERATE | GenCapability.VIDEO_FRAMERATE),
    "resolution": int(GenCapability.GENERATE | GenCapability.VIDEO_RESOLUTION),
    "both": int(
        GenCapability.GENERATE | GenCapability.VIDEO_FRAMERATE | GenCapability.VIDEO_RESOLUTION
    ),
}


def run_sessions():
    service = StreamingService(duration_s=3600.0)
    stats = {}
    for label, bits in SCENARIOS.items():
        session = StreamingSession(service, GenAbility(bits))
        stats[label] = session.play("4K", 3600.0)
    return stats


def test_e13_streaming_session(benchmark):
    stats = benchmark.pedantic(run_sessions, rounds=1, iterations=1)

    print_table(
        "E13 / §3.2: one hour of 4K playback (HLS segments, laptop client)",
        ["capability", "shipped", "GB received", "GB/h", "reconstruction", "paper"],
        [
            [
                label,
                s.shipped_variant,
                f"{s.bytes_received / 1e9:.2f}",
                f"{s.gb_per_hour:.2f}",
                f"{s.reconstruction_s:.0f} s / {s.reconstruction_wh * 1000:.0f} mWh",
                {"none": "7 GB/h", "framerate": "3.5 GB/h (2x)", "resolution": "3 GB/h (2.3x)", "both": "-"}[label],
            ]
            for label, s in stats.items()
        ],
    )

    assert stats["none"].gb_per_hour == pytest.approx(7.0, rel=0.02)
    assert stats["framerate"].gb_per_hour == pytest.approx(3.5, rel=0.02)
    assert stats["resolution"].gb_per_hour == pytest.approx(3.0, rel=0.02)
    assert stats["both"].gb_per_hour == pytest.approx(1.5, rel=0.02)
    # Naive playback does no reconstruction; capable playback does, and
    # keeps up with real time (else the capability would be unusable).
    assert stats["none"].reconstruction_s == 0
    for label in ("framerate", "resolution", "both"):
        assert 0 < stats[label].reconstruction_s < 3600
    # Every session played the full hour.
    assert all(s.playback_seconds == pytest.approx(3600.0) for s in stats.values())
