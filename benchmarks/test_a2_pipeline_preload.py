"""A2 ablation — the §4.1 preloaded-pipeline design choice.

Paper: "The choice to preload the image generation pipeline from a
library is for performance optimisation. Since it is a large object, it
would otherwise need to be repeatedly deleted and reloaded within the
media generator every time it is invoked." This ablation quantifies that:
the Wikimedia page with a preloaded pipeline vs a reload-per-invocation
one.
"""

from _shared import print_table

from repro.devices import LAPTOP
from repro.genai.pipeline import GenerationPipeline
from repro.html import parse_html
from repro.sww.media_generator import MediaGenerator
from repro.sww.page_processor import PageProcessor
from repro.workloads import build_wikimedia_landscape_page


def process_page(preloaded: bool):
    page = build_wikimedia_landscape_page()
    pipeline = GenerationPipeline(LAPTOP, preloaded=preloaded)
    processor = PageProcessor(MediaGenerator(pipeline))
    document = parse_html(page.sww_html)
    report = processor.process(document)
    total_time = report.sim_time_s + pipeline.overhead_time_s
    total_energy = report.energy_wh + pipeline.overhead_energy_wh
    return report, pipeline, total_time, total_energy


def test_a2_preload_ablation(benchmark):
    preloaded = benchmark.pedantic(lambda: process_page(True), rounds=1, iterations=1)
    reloading = process_page(False)

    rows = []
    for label, (report, pipeline, total_time, total_energy) in (
        ("preloaded (paper design)", preloaded),
        ("reload per invocation", reloading),
    ):
        rows.append(
            [
                label,
                pipeline.reloads,
                f"{pipeline.overhead_time_s:.0f} s",
                f"{report.sim_time_s:.0f} s",
                f"{total_time:.0f} s",
                f"{total_energy:.2f} Wh",
            ]
        )
    print_table(
        "A2 / §4.1: pipeline preloading on the 49-image page (laptop)",
        ["design", "loads", "load time", "inference", "total", "energy"],
        rows,
    )

    _report_p, pipeline_p, time_p, energy_p = preloaded
    _report_r, pipeline_r, time_r, energy_r = reloading
    assert pipeline_p.reloads == 1
    assert pipeline_r.reloads == 49
    # Reloading multiplies total page time several-fold.
    assert time_r / time_p > 2.0
    assert energy_r > energy_p
    # Inference cost itself is identical — only overhead differs.
    assert preloaded[0].sim_time_s == reloading[0].sim_time_s
