"""E4 / Table 1 — ELO & CLIP scores with time per step.

Paper's Table 1 (15 inference steps, CLIP at 224×224):

    Model        ELO   CLIP   laptop t/step   workstation t/step
    SD 2.1       688   0.19   0.18 s          0.02 s
    SD 3 Med.    895   0.27   0.38 s          0.05 s
    SD 3.5 Med.  927   0.27   0.59 s          0.06 s
    DALLE 3      923   0.32   -               -

Random-image CLIP floor: 0.09. Arena leader reference: GPT-4o at 1166.
"""

import numpy as np
import pytest
from _shared import print_table, within

from repro.devices import CLOUD, LAPTOP, WORKSTATION
from repro.genai.image import generate_image, random_image
from repro.genai.registry import DALLE3, IMAGE_MODELS, SD3_MEDIUM, SD21, SD35_MEDIUM
from repro.metrics.clip import clip_score
from repro.metrics.elo import PreferenceArena
from repro.workloads.corpus import landscape_prompts

PROMPTS = landscape_prompts(8, seed="table1")

PAPER = {
    "sd-2.1-base": (688, 0.19, 0.18, 0.02),
    "sd-3-medium": (895, 0.27, 0.38, 0.05),
    "sd-3.5-medium": (927, 0.27, 0.59, 0.06),
    "dalle-3": (923, 0.32, None, None),
}


def measure_clip(model):
    device = CLOUD if model.server_only else WORKSTATION
    scores = [
        clip_score(p, generate_image(model, device, p, 224, 224, 15).pixels) for p in PROMPTS
    ]
    return float(np.mean(scores))


def measure_step_time(model, device):
    if device.name not in model.step_time_224:
        return None
    return generate_image(model, device, PROMPTS[0], 224, 224, 15).sim_time_s / 15


def run_table1():
    arena = PreferenceArena({m.name: m.arena_quality for m in IMAGE_MODELS.values()})
    elo = arena.run(800).ratings
    rows = {}
    for model in (SD21, SD3_MEDIUM, SD35_MEDIUM, DALLE3):
        rows[model.name] = (
            elo[model.name],
            measure_clip(model),
            measure_step_time(model, LAPTOP),
            measure_step_time(model, WORKSTATION),
        )
    floor = float(
        np.mean([clip_score(p, random_image(224, 224, i)) for i, p in enumerate(PROMPTS)])
    )
    return rows, elo, floor


def test_table1(benchmark):
    rows, elo, floor = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    table = []
    for name, (m_elo, m_clip, m_lt, m_wt) in rows.items():
        p_elo, p_clip, p_lt, p_wt = PAPER[name]
        table.append(
            [
                name,
                f"{p_elo} / {m_elo:.0f}",
                f"{p_clip:.2f} / {m_clip:.3f}",
                f"{p_lt or '-'} / {f'{m_lt:.2f}' if m_lt else '-'}",
                f"{p_wt or '-'} / {f'{m_wt:.3f}' if m_wt else '-'}",
            ]
        )
    table.append(["random image", "-", f"0.09 / {floor:.3f}", "-", "-"])
    table.append(["gpt-4o (arena ref)", f"1166 / {elo['gpt-4o-image']:.0f}", "-", "-", "-"])
    print_table(
        "Table 1: ELO & CLIP (paper / measured)",
        ["model", "ELO", "CLIP", "laptop t/step", "wk t/step"],
        table,
    )

    for name, (m_elo, m_clip, m_lt, m_wt) in rows.items():
        p_elo, p_clip, p_lt, p_wt = PAPER[name]
        assert m_elo == pytest.approx(p_elo, abs=45), f"{name} ELO"
        assert m_clip == pytest.approx(p_clip, abs=0.02), f"{name} CLIP"
        if p_lt is not None:
            assert m_lt == pytest.approx(p_lt, rel=0.02), f"{name} laptop step"
            assert m_wt == pytest.approx(p_wt, rel=0.02), f"{name} wk step"
    within(floor, 0.05, 0.13, "random floor")
    assert elo["gpt-4o-image"] == pytest.approx(1166, abs=60)

    # Shape claims from the Table 1 discussion.
    clips = {n: v[1] for n, v in rows.items()}
    assert abs(clips["sd-3-medium"] - clips["sd-3.5-medium"]) < 0.01  # "almost identical"
    assert 1 - clips["sd-3-medium"] / clips["dalle-3"] == pytest.approx(0.16, abs=0.06)
    assert 1 - clips["sd-2.1-base"] / clips["dalle-3"] == pytest.approx(0.40, abs=0.08)
    elos = {n: v[0] for n, v in rows.items()}
    assert elos["sd-2.1-base"] < min(elos["sd-3-medium"], elos["dalle-3"]) - 150
