"""Benchmark harness configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each file regenerates one table/figure (see DESIGN.md §4 for the index).
"""

import sys
from pathlib import Path

# Make `_shared` importable regardless of invocation directory.
sys.path.insert(0, str(Path(__file__).parent))
