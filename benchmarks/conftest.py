"""Benchmark harness configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each file regenerates one table/figure (see DESIGN.md §4 for the index).
"""

import sys
from pathlib import Path

import pytest

# Make `_shared` importable regardless of invocation directory.
sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture(scope="session", autouse=True)
def metrics_snapshot():
    """After the run, dump the shared registry and the perf trajectory."""
    yield
    from _shared import (
        BENCH_REGISTRY,
        BENCH_TRAJECTORY,
        dump_bench_trajectories,
        dump_metrics_snapshot,
    )

    if len(BENCH_REGISTRY):
        path = dump_metrics_snapshot()
        print(f"\nmetrics snapshot: {path} ({len(BENCH_REGISTRY)} instruments)")
    if BENCH_TRAJECTORY:
        for path in dump_bench_trajectories():
            print(f"perf trajectory: {path}")
