"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints
the paper-reported value next to the measured one, and asserts the *shape*
(orderings, ratios within tolerance bands) rather than exact equality —
the substrate is a simulator, not the authors' testbed (DESIGN.md §4).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import (
    GenerativeClient,
    GenerativeServer,
    PageResource,
    SiteStore,
    connect_in_memory,
)
from repro.obs import MetricsRegistry, to_jsonl
from repro.workloads.corpus import populate_traditional_assets

#: Registry shared across the benchmark session; benchmarks that inject it
#: contribute to the metrics snapshot the CI workflow uploads as an artifact.
BENCH_REGISTRY = MetricsRegistry()

ARTIFACT_DIR = Path(__file__).parent / "artifacts"

#: Repo root, where the per-table perf-trajectory files land.
REPO_ROOT = Path(__file__).parent.parent

#: table → scenario → measurements, accumulated by :func:`record_bench`.
BENCH_TRAJECTORY: dict[str, dict[str, dict]] = {}


def dump_metrics_snapshot(path: Path | None = None) -> Path:
    """Write the shared benchmark registry as JSON lines and return the path."""
    target = path or ARTIFACT_DIR / "metrics.jsonl"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(to_jsonl(BENCH_REGISTRY))
    return target


def record_bench(
    table: str,
    scenario: str,
    *,
    wall_time_s: float | None = None,
    wire_bytes: int | None = None,
    compression_ratio: float | None = None,
    **extra,
) -> None:
    """Record one scenario's headline numbers for the perf trajectory.

    Each benchmark table that calls this gets a top-level
    ``BENCH_<table>.json`` written after the session (see
    :func:`dump_bench_trajectories`); CI uploads the files, so successive
    PRs can be diffed measurement by measurement.
    """
    entry: dict = {}
    if wall_time_s is not None:
        entry["wall_time_s"] = round(float(wall_time_s), 6)
    if wire_bytes is not None:
        entry["wire_bytes"] = int(wire_bytes)
    if compression_ratio is not None:
        entry["compression_ratio"] = round(float(compression_ratio), 4)
    entry.update(extra)
    BENCH_TRAJECTORY.setdefault(table, {})[scenario] = entry


def dump_bench_trajectories(root: Path | None = None) -> list[Path]:
    """Write one ``BENCH_<table>.json`` per recorded table; return the paths."""
    base = root or REPO_ROOT
    paths: list[Path] = []
    for table, scenarios in sorted(BENCH_TRAJECTORY.items()):
        target = base / f"BENCH_{table}.json"
        target.write_text(
            json.dumps({"table": table, "scenarios": scenarios}, indent=2, sort_keys=True) + "\n"
        )
        paths.append(target)
    return paths


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print an aligned paper-vs-measured table to the bench log."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rendered), default=0))
        for i in range(len(headers))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title}")
    print(line)
    print("-" * len(line))
    for row in rendered:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def serve_page(page, *, server_gen: bool = True, client=None, device=None, **server_kwargs):
    """Stand up a server for one corpus page and a connected client pair."""
    store = SiteStore()
    store.add_page(PageResource(page.path, page.sww_html, page.traditional_html))
    populate_traditional_assets(store, page)
    server = GenerativeServer(store, gen_ability=server_gen, **server_kwargs)
    if client is None:
        from repro.devices import LAPTOP

        client = GenerativeClient(device=device or LAPTOP)
    pair = connect_in_memory(client, server)
    return client, server, pair


def within(measured: float, low: float, high: float, label: str = "") -> None:
    assert low <= measured <= high, f"{label}: {measured} outside [{low}, {high}]"
