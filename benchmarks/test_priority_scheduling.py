"""Priority scheduling and BDP window tuning on a modelled WAN path.

Two experiments over the real HTTP/2 engines with a simulated link
(fixed RTT, finite bandwidth, simulated clock):

* **TTATF under contention** — 8 concurrent responses (2 critical
  above-the-fold streams injected while 6 bulk assets are mid-flight).
  RFC 9218 scheduling must cut time-to-above-the-fold p50/p99 by ≥1.5x
  versus the flat round robin while delivering byte-identical payloads.
* **BDP-adaptive windows** — one bulk transfer on the fleet's high-RTT
  (0.1 s) path. The tuner starts at the 64 KiB default and must recover
  ≥90% of the steady-state throughput of an oracle-tuned fixed window,
  while crushing the stalling fixed-small baseline.
"""

from __future__ import annotations

import hashlib
import statistics

from _shared import print_table, record_bench, within
from repro.http2.bdp import AdaptiveReceiveWindow, BdpEstimator
from repro.http2.connection import DataReceived, H2Connection, RequestReceived, Role
from repro.http2.frames import DataFrame, parse_frames
from repro.http2.writer import ConnectionWriter

RTT_S = 0.1  # the fleet's shield→origin leg (PR 9 LatencyModel's worst path)
BANDWIDTH_BPS = 25_000_000  # 25 MB/s modelled link rate
REQUEST = [
    (b":method", b"GET"),
    (b":scheme", b"https"),
    (b":path", b"/page"),
    (b":authority", b"bench"),
]


class SimLink:
    """One client/server pair over a modelled path.

    Each :meth:`round` is one congestion-window exchange: the writer fills
    the engine's buffer up to the flow-control windows, the bytes cross
    the link at ``bandwidth`` after ``rtt/2`` latency, the client's grants
    ride back, and the simulated clock advances ``max(rtt, bytes/bandwidth)``.
    """

    def __init__(
        self,
        window: int,
        priorities_enabled: bool = True,
        adaptive: bool = False,
        rtt_s: float = RTT_S,
        bandwidth_bps: float = BANDWIDTH_BPS,
    ) -> None:
        self.t = 0.0
        self.rtt_s = rtt_s
        self.bandwidth_bps = bandwidth_bps
        self.client = H2Connection(Role.CLIENT, initial_window_size=window)
        self.server = H2Connection(Role.SERVER)
        self.writer = ConnectionWriter(self.server, priorities_enabled=priorities_enabled)
        self.adaptive: AdaptiveReceiveWindow | None = None
        if adaptive:
            self.adaptive = AdaptiveReceiveWindow(
                self.client,
                BdpEstimator(lambda: self.t, rtt_s=rtt_s, min_window=window),
            )
        self.completion_s: dict[int, float] = {}
        self.received: dict[int, bytearray] = {}
        self.frame_log: list[int] = []
        self._expected: dict[int, int] = {}
        # Handshake (not charged to the simulated clock: connection setup
        # is common to every scenario).
        self.client.initiate_connection()
        self.server.initiate_connection()
        for _ in range(4):
            self.server.receive_data(self.client.data_to_send())
            self.client.receive_data(self.server.data_to_send())

    def request(self, path: str, body: bytes, priority: bytes | None = None) -> int:
        """Open a request and enqueue the server's response for it."""
        headers = [(k, path.encode() if k == b":path" else v) for k, v in REQUEST]
        if priority is not None:
            headers.append((b"priority", priority))
        stream_id = self.client.get_next_available_stream_id()
        self.client.send_headers(stream_id, headers, end_stream=True)
        events = self.server.receive_data(self.client.data_to_send())
        assert any(isinstance(e, RequestReceived) for e in events)
        self.server.send_headers(stream_id, [(b":status", b"200")])
        self.writer.enqueue(stream_id, body, end_stream=True)
        self._expected[stream_id] = len(body)
        self.received[stream_id] = bytearray()
        return stream_id

    def round(self) -> int:
        """One link exchange; returns payload bytes that crossed."""
        self.writer.pump()
        wire = self.server.data_to_send()
        frames, rest = parse_frames(wire)
        assert rest == b""
        # Per-frame arrival times: serialisation delay at link rate after
        # half-RTT propagation.
        cum = 0
        payload = 0
        for frame in frames:
            cum += 9 + len(frame.payload())
            if isinstance(frame, DataFrame) and len(frame.data):
                sid = frame.stream_id
                self.frame_log.append(sid)
                self.received[sid] += bytes(frame.data)
                payload += len(frame.data)
                if len(self.received[sid]) >= self._expected[sid]:
                    self.completion_s.setdefault(
                        sid, self.t + self.rtt_s / 2 + cum / self.bandwidth_bps
                    )
        # Grants are pipelined: credit for the first bytes is already on
        # its way back while the tail is still serialising, so a window of
        # at least one BDP keeps the pipe busy. A round therefore costs
        # max(RTT, serialisation time) — window-limited paths idle for the
        # RTT, bandwidth-limited paths pay only the link rate.
        self.t += max(self.rtt_s, len(wire) / self.bandwidth_bps)
        # The client processes arrivals and returns credit (its grants are
        # charged to the same round's RTT).
        for event in self.client.receive_data(wire):
            if isinstance(event, DataReceived) and event.flow_controlled_length:
                if self.adaptive is not None:
                    self.adaptive.on_data(event.stream_id, event.flow_controlled_length)
                else:
                    self.client.increment_flow_control_window(event.flow_controlled_length)
                    stream = self.client.streams.get(event.stream_id)
                    if stream is not None and not stream.closed:
                        self.client.increment_flow_control_window(
                            event.flow_controlled_length, event.stream_id
                        )
        self.server.receive_data(self.client.data_to_send())
        return payload

    def run(self, max_rounds: int = 2000) -> None:
        for _ in range(max_rounds):
            if self.writer.idle:
                return
            self.round()
        raise AssertionError("transfer did not finish within the round budget")

    def digests(self) -> dict[int, str]:
        return {
            sid: hashlib.sha256(bytes(body)).hexdigest()
            for sid, body in sorted(self.received.items())
        }


def bulk_size(trial: int, index: int) -> int:
    return (72 + 16 * ((trial * 7 + index) % 4)) * 1024


def body_for(name: str, size: int) -> bytes:
    pattern = name.encode() * (size // len(name) + 1)
    return pattern[:size]


def ttatf_trial(trial: int, priorities_enabled: bool):
    """2 critical streams injected while 6 bulk streams are mid-flight."""
    sim = SimLink(window=65_535, priorities_enabled=priorities_enabled)
    for index in range(6):
        sim.request(
            f"/bulk-{index}.png",
            body_for(f"bulk{trial}:{index}|", bulk_size(trial, index)),
            priority=b"u=5, i",
        )
    sim.round()  # bulk is now mid-flight
    inject_t = sim.t
    critical = [
        sim.request(
            f"/fold-{index}",
            body_for(f"fold{trial}:{index}|", 24 * 1024),
            priority=b"u=1",
        )
        for index in range(2)
    ]
    sim.run()
    ttatf = max(sim.completion_s[sid] for sid in critical) - inject_t
    return ttatf, sim


def run_ttatf_experiment(trials: int = 8):
    results = {}
    for label, enabled in (("round_robin", False), ("priorities", True)):
        ttatfs, sims = [], []
        for trial in range(trials):
            ttatf, sim = ttatf_trial(trial, enabled)
            ttatfs.append(ttatf)
            sims.append(sim)
        ttatfs.sort()
        results[label] = {
            "p50": statistics.median(ttatfs),
            "p99": ttatfs[max(0, int(len(ttatfs) * 0.99) - 1)] if len(ttatfs) > 1 else ttatfs[-1],
            "worst": ttatfs[-1],
            "sims": sims,
            "stall_s": sum(s.writer.connection_stalls for s in sims) * RTT_S / trials,
        }
    return results


class TestPrioritySchedulingTTATF:
    def test_priorities_cut_ttatf_with_identical_bytes(self):
        results = run_ttatf_experiment()
        rr, prio = results["round_robin"], results["priorities"]
        p50_speedup = rr["p50"] / prio["p50"]
        p99_speedup = rr["p99"] / prio["p99"]

        # Byte identity: scheduling reorders frames, never payloads.
        identical = True
        reordered = False
        for rr_sim, prio_sim in zip(rr["sims"], prio["sims"]):
            identical = identical and rr_sim.digests() == prio_sim.digests()
            reordered = reordered or rr_sim.frame_log != prio_sim.frame_log
        assert identical, "per-stream payloads must not depend on the scheduler"
        assert reordered, "priority scheduling never changed the frame order"

        print_table(
            "TTATF: 2 critical streams vs 6 bulk (RTT 100 ms)",
            ["scheduler", "p50 (s)", "p99 (s)", "stall s/trial"],
            [
                ["round-robin", f"{rr['p50']:.3f}", f"{rr['p99']:.3f}", f"{rr['stall_s']:.2f}"],
                ["RFC 9218", f"{prio['p50']:.3f}", f"{prio['p99']:.3f}", f"{prio['stall_s']:.2f}"],
                ["speedup", f"{p50_speedup:.2f}x", f"{p99_speedup:.2f}x", ""],
            ],
        )
        record_bench(
            "priorities",
            "round_robin",
            ttatf_p50_s=round(rr["p50"], 4),
            ttatf_p99_s=round(rr["p99"], 4),
            window_stall_s=round(rr["stall_s"], 4),
        )
        record_bench(
            "priorities",
            "priorities",
            ttatf_p50_s=round(prio["p50"], 4),
            ttatf_p99_s=round(prio["p99"], 4),
            window_stall_s=round(prio["stall_s"], 4),
            p50_speedup=round(p50_speedup, 3),
            p99_speedup=round(p99_speedup, 3),
            byte_identity=identical,
        )
        assert p99_speedup >= 1.5, f"p99 TTATF speedup only {p99_speedup:.2f}x (gate: 1.5x)"
        assert p50_speedup >= 1.5, f"p50 TTATF speedup only {p50_speedup:.2f}x (gate: 1.5x)"


TRANSFER_BYTES = 24_000_000
ORACLE_WINDOW = int(2 * BANDWIDTH_BPS * RTT_S)  # gain x BDP, the tuner's own target


def window_trial(window: int, adaptive: bool):
    sim = SimLink(window=window, adaptive=adaptive)
    sim.request("/bulk.bin", body_for("bdp|", TRANSFER_BYTES), priority=b"u=5, i")
    # Steady state excludes the first half (slow start / probe phase).
    half_t = None
    half_bytes = 0
    delivered = 0
    while not sim.writer.idle:
        delivered += sim.round()
        if half_t is None and delivered >= TRANSFER_BYTES // 2:
            half_t = sim.t
            half_bytes = delivered
    total_s = sim.t
    steady_bps = (TRANSFER_BYTES - half_bytes) / (total_s - half_t)
    return {
        "total_s": total_s,
        "throughput_bps": TRANSFER_BYTES / total_s,
        "steady_bps": steady_bps,
        "stall_s": sim.writer.connection_stalls * RTT_S,
        "resizes": sim.adaptive.resizes if sim.adaptive else 0,
        "final_window": sim.client.local_settings.initial_window_size,
    }


class TestBdpAdaptiveWindows:
    def test_adaptive_window_recovers_fixed_window_throughput(self):
        small = window_trial(65_535, adaptive=False)
        oracle = window_trial(ORACLE_WINDOW, adaptive=False)
        tuned = window_trial(65_535, adaptive=True)

        steady_recovery = tuned["steady_bps"] / oracle["steady_bps"]
        vs_small = small["total_s"] / tuned["total_s"]

        print_table(
            f"BDP tuning: {TRANSFER_BYTES // 1_000_000} MB over a 100 ms path",
            ["window", "total (s)", "MB/s", "steady MB/s", "stall (s)"],
            [
                [
                    "fixed 64 KiB",
                    f"{small['total_s']:.2f}",
                    f"{small['throughput_bps'] / 1e6:.2f}",
                    f"{small['steady_bps'] / 1e6:.2f}",
                    f"{small['stall_s']:.1f}",
                ],
                [
                    f"fixed {ORACLE_WINDOW // 1_000_000} MB (oracle)",
                    f"{oracle['total_s']:.2f}",
                    f"{oracle['throughput_bps'] / 1e6:.2f}",
                    f"{oracle['steady_bps'] / 1e6:.2f}",
                    f"{oracle['stall_s']:.1f}",
                ],
                [
                    "adaptive (BDP)",
                    f"{tuned['total_s']:.2f}",
                    f"{tuned['throughput_bps'] / 1e6:.2f}",
                    f"{tuned['steady_bps'] / 1e6:.2f}",
                    f"{tuned['stall_s']:.1f}",
                ],
            ],
        )
        for name, trial in (
            ("window_fixed_small", small),
            ("window_fixed_bdp", oracle),
            ("window_adaptive", tuned),
        ):
            record_bench(
                "priorities",
                name,
                wall_time_s=trial["total_s"],
                throughput_mbps=round(trial["throughput_bps"] / 1e6, 3),
                steady_mbps=round(trial["steady_bps"] / 1e6, 3),
                window_stall_s=round(trial["stall_s"], 3),
                resizes=trial["resizes"],
                final_window=trial["final_window"],
            )
        record_bench(
            "priorities",
            "bdp_summary",
            steady_recovery=round(steady_recovery, 4),
            speedup_vs_small=round(vs_small, 3),
        )
        assert tuned["resizes"] >= 3, "the tuner never grew the window"
        assert steady_recovery >= 0.90, (
            f"adaptive steady-state at {steady_recovery:.1%} of the oracle window (gate: 90%)"
        )
        within(vs_small, 5.0, 1e9, "adaptive speedup over the 64 KiB default")
