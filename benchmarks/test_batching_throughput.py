"""Batching benchmark — multi-user throughput with micro-batching on/off.

Eight concurrent users replay a Zipf-skewed request stream over a small
gallery site. The **sequential** scenario is the seed behaviour: every
image generation runs solo and pays full step cost. The **batched**
scenario routes the same stream through one shared
:class:`~repro.batching.BatchingEngine` (one simulated accelerator), so
generations from concurrent pages group inside the admission window and
pay the amortised cost ``(1 + α·(B−1))/B``.

The comparison is on *simulated* pages per second — the deterministic
quantity the amortisation curve governs — with wall time recorded for
context. Output bytes are asserted identical between the scenarios, and
the CI gate requires batched throughput ≥ 2× sequential
(``BENCH_batch.json``).
"""

import time
from concurrent.futures import ThreadPoolExecutor

from _shared import print_table, record_bench

from repro.batching import BatchingEngine
from repro.devices import LAPTOP
from repro.sww.client import GenerativeClient, connect_in_memory
from repro.sww.content import GeneratedContent
from repro.sww.server import GenerativeServer, PageResource, SiteStore
from repro.workloads.corpus import _element_html
from repro.workloads.traffic import zipf_requests

USERS = 8
REQUESTS = 16
MAX_BATCH = 8
BATCH_WAIT_S = 0.05

_THEMES = ("harbour", "alpine", "orchard", "citadel")


def build_gallery_page(theme: str, index: int) -> PageResource:
    """Six distinct 256×256 image divisions, no text (text rides the
    Ollama path and never enters the engine)."""
    divs = [
        _element_html(
            GeneratedContent.image(
                f"a {theme} panorama, study {i}",
                name=f"{theme}-{index}-{i:02d}",
                width=256,
                height=256,
            )
        )
        for i in range(6)
    ]
    html = (
        f"<!DOCTYPE html><html><head><title>{theme.title()} gallery</title></head>"
        f"<body><h1>{theme.title()} gallery</h1>" + "".join(divs) + "</body></html>"
    )
    return PageResource(f"/gallery/{theme}", html)


def build_site() -> SiteStore:
    store = SiteStore()
    for index, theme in enumerate(_THEMES):
        store.add_page(build_gallery_page(theme, index))
    return store


def run_session(engine: BatchingEngine | None):
    """Replay the stream with USERS concurrent lanes; return the totals."""
    store = build_site()
    stream = list(
        zipf_requests(sorted(store.pages), REQUESTS, exponent=1.1, seed="batch-bench")
    )
    # Per-lane client and server: lanes share only the engine (and the
    # engine is the one simulated accelerator everything batches on).
    clients = [
        GenerativeClient(device=LAPTOP, engine=engine, gen_workers=MAX_BATCH)
        for _ in range(USERS)
    ]
    servers = [GenerativeServer(build_site()) for _ in range(USERS)]
    lanes: list[list[str]] = [stream[lane::USERS] for lane in range(USERS)]

    def run_lane(lane: int):
        client, server = clients[lane], servers[lane]
        outputs = []
        for path in lanes[lane]:
            result = client.fetch_via_pair(connect_in_memory(client, server), path)
            assert result.status == 200 and result.report is not None
            outputs.append(
                (path, result.generation_time_s, dict(result.report.assets))
            )
        return outputs

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=USERS) as pool:
        per_lane = list(pool.map(run_lane, range(USERS)))
    wall_s = time.perf_counter() - start
    fetches = [entry for lane in per_lane for entry in lane]
    sim_s = sum(seconds for _path, seconds, _assets in fetches)
    assets: dict[str, dict[str, bytes]] = {}
    for path, _seconds, page_assets in fetches:
        assets.setdefault(path, page_assets)
        assert assets[path] == page_assets, f"non-deterministic bytes for {path}"
    return wall_s, sim_s, len(fetches), assets


def run_both():
    sequential = run_session(engine=None)
    engine = BatchingEngine(LAPTOP, max_batch=MAX_BATCH, max_wait_s=BATCH_WAIT_S)
    try:
        batched = run_session(engine=engine)
    finally:
        engine.close()
    return sequential, batched, engine.stats


def test_batched_throughput_vs_sequential(benchmark):
    sequential, batched, stats = benchmark.pedantic(run_both, rounds=1, iterations=1)
    seq_wall, seq_sim, seq_pages, seq_assets = sequential
    bat_wall, bat_sim, bat_pages, bat_assets = batched
    assert seq_pages == bat_pages == REQUESTS

    seq_rate = seq_pages / seq_sim
    bat_rate = bat_pages / bat_sim
    speedup = bat_rate / seq_rate

    print_table(
        f"Batching: {REQUESTS}-request Zipf stream, {USERS} concurrent users",
        ["metric", "sequential (seed)", f"batched (window {MAX_BATCH})"],
        [
            ["wall time", f"{seq_wall:.2f} s", f"{bat_wall:.2f} s"],
            ["simulated generation", f"{seq_sim:.1f} s", f"{bat_sim:.1f} s"],
            ["pages / simulated s", f"{seq_rate:.4f}", f"{bat_rate:.4f}"],
            ["throughput speedup", "-", f"{speedup:.2f}x"],
            ["batches executed", "-", stats.batches],
            ["mean batch size", "-", f"{stats.mean_batch:.1f}"],
            ["largest batch", "-", stats.largest_batch],
            ["coalesced in flight", "-", stats.coalesced],
            ["saved simulated time", "-", f"{stats.saved_sim_s:.1f} s"],
        ],
    )

    # Identical bytes page for page: batching must never change content.
    assert bat_assets == seq_assets
    # The engine really batched (the window grouped concurrent lanes) and
    # the acceptance bar holds: ≥ 2× pages per simulated second.
    assert stats.largest_batch >= 2
    assert speedup >= 2.0, f"batched speedup {speedup:.2f}x below the 2x gate"

    record_bench(
        "batch",
        "sequential",
        wall_time_s=seq_wall,
        generation_sim_s=round(seq_sim, 3),
        pages=seq_pages,
        pages_per_sim_s=round(seq_rate, 6),
    )
    record_bench(
        "batch",
        "batched",
        wall_time_s=bat_wall,
        generation_sim_s=round(bat_sim, 3),
        pages=bat_pages,
        pages_per_sim_s=round(bat_rate, 6),
        speedup=round(speedup, 3),
        batches=stats.batches,
        mean_batch=round(stats.mean_batch, 3),
        largest_batch=stats.largest_batch,
        coalesced=stats.coalesced,
        saved_sim_s=round(stats.saved_sim_s, 3),
        max_batch=MAX_BATCH,
        batch_wait_s=BATCH_WAIT_S,
    )
