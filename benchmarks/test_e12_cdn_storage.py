"""E12 / §2.2 — the CDN scenario: prompts at the edge.

Paper: storing prompts instead of media at caching locations keeps the
storage benefit but "loses data transmission benefits", with an energy
trade-off from generating at the edge; §7 adds that smaller catalogs give
flexibility in cache placement under backbone constraints.
"""

import numpy as np
from _shared import print_table, within

from repro.cdn import CatalogItem, EdgeNode, OriginCatalog
from repro.cdn.placement import CandidateSite, PlacementProblem, plan_placement
from repro.devices import WORKSTATION
from repro.media.jpeg_model import jpeg_size
from repro.workloads.corpus import landscape_prompts


def build_catalog(count: int = 500) -> OriginCatalog:
    catalog = OriginCatalog()
    for index, prompt in enumerate(landscape_prompts(count, seed="e12")):
        side = 256 if index % 3 else 512
        catalog.add(
            CatalogItem(
                key=f"obj-{index:04d}",
                prompt=prompt,
                width=side,
                height=side,
                media_bytes=jpeg_size(side, side),
            )
        )
    return catalog


def zipf_trace(catalog: OriginCatalog, requests: int, alpha: float = 0.9) -> list[str]:
    keys = sorted(catalog.items)
    weights = np.arange(1, len(keys) + 1, dtype=np.float64) ** -alpha
    weights /= weights.sum()
    rng = np.random.default_rng(12345)
    return [keys[i] for i in rng.choice(len(keys), size=requests, p=weights)]


def run_cdn():
    catalog = build_catalog()
    trace = zipf_trace(catalog, 3000)
    capacity = catalog.total_media_bytes() // 10
    edges = {}
    for mode in ("blob", "prompt"):
        edge = EdgeNode(catalog, capacity, mode=mode, device=WORKSTATION)
        for key in trace:
            edge.serve(key)
        edges[mode] = edge
    return catalog, edges


def test_e12_cdn_storage_vs_transmission(benchmark):
    catalog, edges = benchmark.pedantic(run_cdn, rounds=1, iterations=1)
    blob, prompt = edges["blob"], edges["prompt"]

    print_table(
        "E12 / §2.2: edge node, blob vs prompt mode (3,000 requests)",
        ["metric", "blob mode", "prompt mode"],
        [
            ["storage used", f"{blob.storage_used_bytes:,} B", f"{prompt.storage_used_bytes:,} B"],
            ["entries cached", blob.cache.entry_count, prompt.cache.entry_count],
            ["hit rate", f"{blob.cache.stats.hit_rate:.1%}", f"{prompt.cache.stats.hit_rate:.1%}"],
            ["backbone traffic", f"{blob.backbone_bytes_total:,} B", f"{prompt.backbone_bytes_total:,} B"],
            ["user egress", f"{blob.egress_bytes_total:,} B", f"{prompt.egress_bytes_total:,} B"],
            ["edge generation energy", "0 Wh", f"{prompt.generation_energy_total_wh:.1f} Wh"],
        ],
    )

    # Storage benefit maintained: per-object footprint ~2 orders smaller,
    # so the same capacity holds the WHOLE catalog as prompts while the
    # blob cache churns on a fraction of it.
    blob_per_entry = blob.storage_used_bytes / blob.cache.entry_count
    prompt_per_entry = prompt.storage_used_bytes / prompt.cache.entry_count
    assert blob_per_entry / prompt_per_entry > 50
    # Every prompt ever requested stays resident — no evictions — while
    # the blob cache cannot hold its working set.
    assert prompt.cache.stats.evictions == 0
    assert blob.cache.stats.evictions > 0
    assert prompt.cache.stats.hit_rate > blob.cache.stats.hit_rate
    # Transmission benefit lost: user egress identical.
    assert prompt.egress_bytes_total == blob.egress_bytes_total
    # Backbone traffic still collapses (prompt fills are tiny).
    assert blob.backbone_bytes_total / prompt.backbone_bytes_total > 50
    # The energy trade-off: edge generation dominates what transmission saves.
    assert prompt.generation_energy_total_wh > 0


def test_e12_placement_flexibility(benchmark):
    """§7: prompt-sized catalogs let caches sit deep in the network."""

    def plan_both():
        catalog = build_catalog()
        sites = []
        for i in range(8):
            sites.append(CandidateSite(f"metro-{i}", f"r{i}", user_latency_ms=8, fill_cost_factor=3.0))
            sites.append(CandidateSite(f"core-{i}", f"r{i}", user_latency_ms=40, fill_cost_factor=1.0))
        budget = catalog.total_media_bytes() * 10
        media = plan_placement(PlacementProblem(sites, catalog.total_media_bytes(), budget))
        prompts = plan_placement(PlacementProblem(sites, catalog.total_prompt_bytes(), budget))
        return media, prompts

    media, prompts = benchmark.pedantic(plan_both, rounds=1, iterations=1)
    deep_media = sum(1 for s in media.chosen.values() if s.user_latency_ms == 8)
    deep_prompt = sum(1 for s in prompts.chosen.values() if s.user_latency_ms == 8)

    print_table(
        "E12b / §7: cache placement under one backbone budget",
        ["catalog", "deep (metro) regions", "mean latency"],
        [
            ["media", f"{deep_media}/8", f"{media.mean_latency_ms:.0f} ms"],
            ["prompts", f"{deep_prompt}/8", f"{prompts.mean_latency_ms:.0f} ms"],
        ],
    )
    assert deep_prompt == 8
    assert deep_media < 8
    assert prompts.mean_latency_ms < media.mean_latency_ms
    within(prompts.coverage, 1.0, 1.0, "prompt coverage")
