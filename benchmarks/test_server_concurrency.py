"""Server concurrency benchmark — the PR-5 stream scheduler headline.

Eight naive clients hit one generative server at the same instant, two
pages each over a single multiplexed connection per client. The
**serial** scenario is the seed behaviour (``concurrent_streams=False``):
every request is handled inline on the event loop, so the sixteen
materialisations run one after another and the shared
:class:`~repro.batching.BatchingEngine` only ever sees batches of one.
The **concurrent** scenario runs the same load through the task-per-stream
scheduler: request logic on executor threads, responses through the
flow-control writer, and the sixteen in-flight materialisations meet in
the engine's admission window where amortisation
``(1 + α·(B−1))/B`` takes over.

The throughput comparison is on *simulated* generation seconds — the
deterministic quantity batching governs — with wall time and per-client
completion latency recorded for context. Responses must be byte-identical
between the scenarios, and the event-loop stall probe must stay under the
50 ms acceptance bar in concurrent mode (``BENCH_server_concurrency.json``,
CI-gated at ≥ 2× pages per simulated second).
"""

import asyncio
import time

from _shared import print_table, record_bench

from repro.batching import BatchingEngine
from repro.devices import LAPTOP, WORKSTATION
from repro.obs import MetricsRegistry
from repro.sww.client import GenerativeClient
from repro.sww.content import GeneratedContent
from repro.sww.server import GenerativeServer, PageResource, SiteStore
from repro.workloads.corpus import _element_html

CLIENTS = 8
PAGES_PER_CLIENT = 2
PAGES = CLIENTS * PAGES_PER_CLIENT
MAX_BATCH = 8
BATCH_WAIT_S = 0.05
STALL_BAR_S = 0.05

_THEMES = (
    "harbour", "alpine", "orchard", "citadel", "lagoon", "mesa", "fjord", "steppe",
    "dune", "taiga", "atoll", "canyon", "glacier", "delta", "heath", "karst",
)


def build_page(theme: str, index: int) -> PageResource:
    """One 192×192 image per page: identical sizes keep every page in the
    same engine batch slot, so concurrency is the only grouping variable."""
    div = _element_html(
        GeneratedContent.image(
            f"a {theme} landscape at dusk, wide shot",
            name=f"conc-{theme}-{index:02d}",
            width=192,
            height=192,
        )
    )
    html = (
        f"<!DOCTYPE html><html><head><title>{theme.title()}</title></head>"
        f"<body><h1>{theme.title()}</h1>{div}</body></html>"
    )
    return PageResource(f"/scene/{theme}", html)


def build_site() -> SiteStore:
    store = SiteStore()
    for index, theme in enumerate(_THEMES):
        store.add_page(build_page(theme, index))
    return store


def run_scenario(concurrent: bool):
    """Fire all eight clients simultaneously; return the measurements."""
    registry = MetricsRegistry()
    engine = BatchingEngine(
        WORKSTATION, max_batch=MAX_BATCH, max_wait_s=BATCH_WAIT_S, registry=registry
    )
    paths = sorted(build_site().pages)
    lanes = [paths[i * PAGES_PER_CLIENT : (i + 1) * PAGES_PER_CLIENT] for i in range(CLIENTS)]

    async def scenario():
        server = GenerativeServer(
            build_site(),
            gen_ability=True,
            engine=engine,
            registry=registry,
            concurrent_streams=concurrent,
        )
        listener = await server.serve_forever("127.0.0.1", 0)
        port = listener.sockets[0].getsockname()[1]
        try:
            clients = [GenerativeClient(device=LAPTOP, gen_ability=False) for _ in range(CLIENTS)]

            async def run_client(lane: int):
                begin = time.perf_counter()
                results = await clients[lane].fetch_many_tcp("127.0.0.1", port, lanes[lane])
                return time.perf_counter() - begin, results

            start = time.perf_counter()
            per_client = await asyncio.wait_for(
                asyncio.gather(*(run_client(i) for i in range(CLIENTS))), timeout=600
            )
            wall_s = time.perf_counter() - start
            return wall_s, per_client
        finally:
            listener.close()
            await listener.wait_closed()

    try:
        wall_s, per_client = asyncio.run(scenario())
    finally:
        engine.close()

    latencies = sorted(latency for latency, _results in per_client)
    pages: dict[str, str] = {}
    for _latency, results in per_client:
        for result in results:
            assert result.status == 200, result.path
            pages[result.path] = result.received_html
    sim_s = registry.histogram(
        "sww_generation_seconds", layer="sww", operation="materialise"
    ).sum
    max_stall_s = registry.gauge(
        "sww_server_loop_stall_max_seconds", layer="sww", operation="loop"
    ).value
    return {
        "wall_s": wall_s,
        "sim_s": sim_s,
        "pages": pages,
        "latency_p50_s": latencies[len(latencies) // 2],
        "latency_max_s": latencies[-1],
        "max_stall_s": max_stall_s,
        "stats": engine.stats,
    }


def run_both():
    serial = run_scenario(concurrent=False)
    concurrent = run_scenario(concurrent=True)
    return serial, concurrent


def test_concurrent_scheduler_vs_serial(benchmark):
    serial, concurrent = benchmark.pedantic(run_both, rounds=1, iterations=1)

    assert len(serial["pages"]) == len(concurrent["pages"]) == PAGES
    serial_rate = PAGES / serial["sim_s"]
    concurrent_rate = PAGES / concurrent["sim_s"]
    speedup = concurrent_rate / serial_rate

    print_table(
        f"Stream scheduler: {CLIENTS} clients x {PAGES_PER_CLIENT} pages, one socket each",
        ["metric", "serial (seed)", f"concurrent (window {MAX_BATCH})"],
        [
            ["wall time", f"{serial['wall_s']:.2f} s", f"{concurrent['wall_s']:.2f} s"],
            ["simulated generation", f"{serial['sim_s']:.1f} s", f"{concurrent['sim_s']:.1f} s"],
            ["pages / simulated s", f"{serial_rate:.4f}", f"{concurrent_rate:.4f}"],
            ["throughput speedup", "-", f"{speedup:.2f}x"],
            ["client latency p50", f"{serial['latency_p50_s']:.2f} s", f"{concurrent['latency_p50_s']:.2f} s"],
            ["client latency max", f"{serial['latency_max_s']:.2f} s", f"{concurrent['latency_max_s']:.2f} s"],
            ["worst loop stall", f"{serial['max_stall_s'] * 1000:.1f} ms", f"{concurrent['max_stall_s'] * 1000:.1f} ms"],
            ["largest batch", serial["stats"].largest_batch, concurrent["stats"].largest_batch],
            ["mean batch", f"{serial['stats'].mean_batch:.1f}", f"{concurrent['stats'].mean_batch:.1f}"],
        ],
    )

    # Byte-identical pages: the scheduler must be invisible in the payload.
    assert concurrent["pages"] == serial["pages"]
    # Serial handling can never form a batch; the scheduler's overlapping
    # streams must actually meet in the engine window.
    assert serial["stats"].largest_batch == 1
    assert concurrent["stats"].largest_batch >= 4
    # The acceptance bars: ≥ 2× pages per simulated second at concurrency
    # 8, with the event loop never blocked past 50 ms.
    assert speedup >= 2.0, f"concurrent speedup {speedup:.2f}x below the 2x gate"
    assert concurrent["max_stall_s"] < STALL_BAR_S, (
        f"event loop stalled {concurrent['max_stall_s'] * 1000:.1f} ms in concurrent mode"
    )

    record_bench(
        "server_concurrency",
        "serial",
        wall_time_s=serial["wall_s"],
        generation_sim_s=round(serial["sim_s"], 3),
        pages=PAGES,
        pages_per_sim_s=round(serial_rate, 6),
        latency_p50_s=round(serial["latency_p50_s"], 4),
        latency_max_s=round(serial["latency_max_s"], 4),
        max_loop_stall_s=round(serial["max_stall_s"], 4),
        largest_batch=serial["stats"].largest_batch,
    )
    record_bench(
        "server_concurrency",
        "concurrent_8",
        wall_time_s=concurrent["wall_s"],
        generation_sim_s=round(concurrent["sim_s"], 3),
        pages=PAGES,
        pages_per_sim_s=round(concurrent_rate, 6),
        speedup=round(speedup, 3),
        latency_p50_s=round(concurrent["latency_p50_s"], 4),
        latency_max_s=round(concurrent["latency_max_s"], 4),
        max_loop_stall_s=round(concurrent["max_stall_s"], 4),
        largest_batch=concurrent["stats"].largest_batch,
        mean_batch=round(concurrent["stats"].mean_batch, 3),
        clients=CLIENTS,
        max_batch=MAX_BATCH,
    )


# --------------------------------------------------------------------- #
# Writer hot path: zero-copy chunking
# --------------------------------------------------------------------- #

CHUNKING_BODY_BYTES = 8 * 1024 * 1024
CHUNKING_ROUNDS = 3

_CHUNKING_REQUEST = [
    (b":method", b"GET"),
    (b":scheme", b"https"),
    (b":path", b"/blob"),
    (b":authority", b"bench"),
]


def _copying_take(self, limit: int) -> bytes:
    """The pre-zero-copy take: one bytes() copy per frame."""
    chunk = bytes(self.data[self.offset : self.offset + limit])
    self.offset += len(chunk)
    return chunk


def writer_chunking_seconds(body: bytes, copying: bool) -> tuple[float, int]:
    """Best-of-N time to push ``body`` through the ConnectionWriter.

    ``copying=True`` restores the old per-frame bytes() slice (plus the
    old enqueue-time copy), so the delta isolates exactly what the
    memoryview path removed. Returns (seconds, frames_sent).
    """
    from repro.http2.connection import H2Connection, Role
    from repro.http2.transport import InMemoryTransportPair
    from repro.http2.writer import ConnectionWriter, _SendQueue

    best = float("inf")
    frames = 0
    original_take = _SendQueue.take
    for round_idx in range(CHUNKING_ROUNDS):
        pair = InMemoryTransportPair(
            H2Connection(Role.CLIENT, initial_window_size=(1 << 24)),
            H2Connection(Role.SERVER),
        )
        pair.handshake()
        stream_id = pair.client.conn.get_next_available_stream_id()
        pair.client.conn.send_headers(stream_id, _CHUNKING_REQUEST, end_stream=True)
        pair.pump()
        writer = ConnectionWriter(pair.server.conn)
        pair.server.conn.send_headers(stream_id, [(b":status", b"200")])
        _SendQueue.take = _copying_take if copying else original_take
        try:
            begin = time.perf_counter()
            writer.enqueue(stream_id, bytes(body) if copying else body)
            while not writer.idle:
                writer.pump()
            elapsed = time.perf_counter() - begin
        finally:
            _SendQueue.take = original_take
        best = min(best, elapsed)
        frames = writer.frames_sent
        if round_idx == 0:
            # The fast path must be invisible on the wire.
            pair.pump()
            received = b"".join(
                bytes(e.data)
                for e in pair.client.events
                if e.__class__.__name__ == "DataReceived" and e.stream_id == stream_id
            )
            assert received == body
    return best, frames


def test_writer_chunking_zero_copy(benchmark):
    body = bytes(range(256)) * (CHUNKING_BODY_BYTES // 256)

    def run():
        copying_s, frames = writer_chunking_seconds(body, copying=True)
        zero_copy_s, frames_zc = writer_chunking_seconds(body, copying=False)
        assert frames == frames_zc
        return copying_s, zero_copy_s, frames

    copying_s, zero_copy_s, frames = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = copying_s / zero_copy_s if zero_copy_s else float("inf")

    print_table(
        f"Writer chunking: {CHUNKING_BODY_BYTES // (1024 * 1024)} MiB body, "
        f"{frames} DATA frames, best of {CHUNKING_ROUNDS}",
        ["path", "seconds", "MiB/s"],
        [
            ["per-frame copy (old)", f"{copying_s:.4f}", f"{CHUNKING_BODY_BYTES / copying_s / 2**20:.0f}"],
            ["memoryview (zero-copy)", f"{zero_copy_s:.4f}", f"{CHUNKING_BODY_BYTES / zero_copy_s / 2**20:.0f}"],
            ["speedup", f"{speedup:.2f}x", "-"],
        ],
    )

    # Wall-clock microbenchmarks are noisy in CI; gate only the sanity
    # bound (the fast path must never be meaningfully slower), and record
    # the measured delta for the trajectory.
    assert zero_copy_s <= copying_s * 1.25, (
        f"zero-copy path slower than copying path: {zero_copy_s:.4f}s vs {copying_s:.4f}s"
    )

    record_bench(
        "server_concurrency",
        "writer_chunking",
        wall_time_s=zero_copy_s,
        body_bytes=CHUNKING_BODY_BYTES,
        frames=frames,
        copying_path_s=round(copying_s, 6),
        zero_copy_path_s=round(zero_copy_s, 6),
        copy_elimination_speedup=round(speedup, 3),
    )
