"""E2 / Figure 2 + §6.2 — the Wikimedia "Landscape" page experiment.

Paper numbers reproduced here:

* 49 images, ≈1.4 MB of media → ≈8.92 kB of prompt metadata: 157×
  compression; with the 428 B worst-case metadata budget: 68×.
* Client-side generation: ≈310 s on the laptop (6.32 s/image), ≈49 s on
  the workstation (≈1 s/image).
* Semantic meaning conserved: CLIP-sim well above the 0.09 random floor.
"""

import time

import numpy as np
from _shared import BENCH_REGISTRY, print_table, record_bench, serve_page, within

from repro import GenerativeClient, LAPTOP, WORKSTATION, build_wikimedia_landscape_page
from repro.media.png import decode_png
from repro.metrics.clip import clip_score
from repro.metrics.compression import WORST_CASE_IMAGE_METADATA


def fetch_on(device):
    page = build_wikimedia_landscape_page()
    client, _server, pair = serve_page(
        page,
        client=GenerativeClient(device=device, registry=BENCH_REGISTRY),
        registry=BENCH_REGISTRY,
    )
    return page, client.fetch_via_pair(pair, page.path)


def _wire_bytes_sent() -> float:
    return BENCH_REGISTRY.value("http2_wire_bytes_total", layer="http2", operation="sent")


def test_fig2_compression(benchmark):
    page = benchmark(build_wikimedia_landscape_page)
    account = page.account
    worst_case = account.items * WORST_CASE_IMAGE_METADATA

    print_table(
        "Fig. 2 / §6.2: Wikimedia landscape page — data reduction",
        ["metric", "paper", "measured"],
        [
            ["images", "49", account.items],
            ["original media", "1400 kB", f"{account.original_media / 1000:.0f} kB"],
            ["prompt metadata", "8.92 kB", f"{account.metadata / 1000:.2f} kB"],
            ["compression", "157x", f"{account.ratio:.0f}x"],
            ["worst-case metadata", "20.97 kB", f"{worst_case / 1000:.2f} kB"],
            ["worst-case compression", "68x", f"{account.original_media / worst_case:.0f}x"],
        ],
    )

    assert account.items == 49
    within(account.original_media, 1_300_000, 1_500_000, "original bytes")
    within(account.metadata, 8_200, 9_700, "metadata bytes")
    within(account.ratio, 140, 170, "compression factor")
    within(account.original_media / worst_case, 62, 74, "worst-case factor")
    record_bench(
        "fig2",
        "compression",
        compression_ratio=account.ratio,
        original_media_bytes=account.original_media,
        metadata_bytes=account.metadata,
    )


def test_fig2_laptop_generation(benchmark):
    sent_before = _wire_bytes_sent()
    start = time.perf_counter()
    page, result = benchmark.pedantic(lambda: fetch_on(LAPTOP), rounds=1, iterations=1)
    record_bench(
        "fig2",
        "laptop",
        wall_time_s=time.perf_counter() - start,
        wire_bytes=_wire_bytes_sent() - sent_before,
        generation_sim_s=round(result.generation_time_s, 3),
    )
    per_image = result.generation_time_s / page.account.items

    print_table(
        "Fig. 2 / §6.2: client-side generation on the laptop",
        ["metric", "paper", "measured"],
        [
            ["total", "~310 s", f"{result.generation_time_s:.0f} s"],
            ["per image", "6.32 s", f"{per_image:.2f} s"],
            ["energy", "-", f"{result.generation_energy_wh:.2f} Wh"],
        ],
    )
    within(result.generation_time_s, 290, 330, "laptop total")
    within(per_image, 5.9, 6.8, "laptop per-image")


def test_fig2_workstation_generation(benchmark):
    sent_before = _wire_bytes_sent()
    start = time.perf_counter()
    page, result = benchmark.pedantic(lambda: fetch_on(WORKSTATION), rounds=1, iterations=1)
    record_bench(
        "fig2",
        "workstation",
        wall_time_s=time.perf_counter() - start,
        wire_bytes=_wire_bytes_sent() - sent_before,
        generation_sim_s=round(result.generation_time_s, 3),
    )
    per_image = result.generation_time_s / page.account.items

    print_table(
        "Fig. 2 / §6.2: generation on the workstation",
        ["metric", "paper", "measured"],
        [
            ["total", "~49 s", f"{result.generation_time_s:.0f} s"],
            ["per image", "~1 s", f"{per_image:.2f} s"],
        ],
    )
    within(result.generation_time_s, 38, 55, "workstation total")
    within(per_image, 0.75, 1.15, "workstation per-image")


def test_fig2_semantic_conservation(benchmark):
    """'the semantic meaning of each picture is conserved over this
    process, though the images are not identical'."""

    def score_page():
        page, result = fetch_on(WORKSTATION)
        scores = [
            clip_score(output.item.prompt, decode_png(output.payload))
            for output in result.report.outputs
        ]
        return np.asarray(scores)

    scores = benchmark.pedantic(score_page, rounds=1, iterations=1)
    print_table(
        "Fig. 2: semantic conservation (CLIP-sim vs own prompt)",
        ["metric", "reference", "measured"],
        [
            ["mean CLIP-sim", "~0.27 (SD3 band)", f"{scores.mean():.3f}"],
            ["min CLIP-sim", "> 0.09 floor", f"{scores.min():.3f}"],
        ],
    )
    assert scores.mean() > 0.24
    assert scores.min() > 0.15  # every image clearly above the random floor
