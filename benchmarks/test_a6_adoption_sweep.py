"""A6 ablation — web-scale adoption sweep (§4.2 → §7).

The paper's page-level compression (157×) only turns into Internet-scale
savings as sites convert; news-class content converts little and last.
This bench sweeps staged adoption over a mixed synthetic web corpus and
reports the storage and traffic savings curve — including what fraction
of the headline §7 projection survives a realistic unique-content mix.
"""

from _shared import print_table, within

from repro.workloads.traffic import TrafficModel
from repro.workloads.websites import adoption_sweep, build_web_corpus

STAGES = [0.0, 0.25, 0.5, 0.75, 1.0]


def run_sweep():
    corpus = build_web_corpus(sites=60, seed="a6")
    snapshots = adoption_sweep(corpus, STAGES)
    # Feed the full-adoption traffic saving into the §7 projection.
    full = snapshots[-1]
    projection = TrafficModel(2.5).project(full.traffic_saving)
    return corpus, snapshots, projection


def test_a6_adoption_sweep(benchmark):
    corpus, snapshots, projection = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print_table(
        "A6 / §4.2: staged SWW adoption over a 60-site mixed corpus",
        ["adoption", "converted sites", "storage saving", "traffic saving"],
        [
            [
                f"{snap.adoption_rate:.0%}",
                f"{snap.converted_sites}/{snap.total_sites}",
                f"{snap.storage_saving:.2f}x",
                f"{snap.traffic_saving:.2f}x",
            ]
            for snap in snapshots
        ],
    )
    print_table(
        "A6b: §7 projection with the corpus-level factor",
        ["metric", "value"],
        [
            ["corpus traffic saving at full adoption", f"{snapshots[-1].traffic_saving:.2f}x"],
            ["mobile web 2.5 EB/mo after SWW", f"{projection.compressed_pb / 1000:.2f} EB/mo"],
            ["note", "the 157x page factor applies to generatable content only;"],
            ["", "unique/news content bounds the aggregate (Amdahl-style)"],
        ],
    )

    savings = [snap.storage_saving for snap in snapshots]
    assert savings == sorted(savings)
    assert savings[0] == 1.0
    within(savings[-1], 1.4, 4.0, "full-adoption storage saving")
    traffic = [snap.traffic_saving for snap in snapshots]
    assert traffic == sorted(traffic)
    # Aggregate savings are real but far below the per-page headline:
    # the unique-content share bounds them.
    assert 1.4 < traffic[-1] < 20
    # The projection direction: multi-EB becomes sub-multi-EB, not tens of
    # PB, until generatable share rises (the §7 number assumes media-heavy
    # browsing traffic, which the corpus's news share dilutes).
    assert projection.compressed_bytes < 0.8 * projection.original_bytes
