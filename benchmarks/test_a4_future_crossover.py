"""A4 ablation — when does SWW become worth it? (paper §7)

The paper's verdict today: "generating content at the edge takes too long
and does not save energy", with optimism that faster models and consumer
accelerators flip the sign. This bench quantifies the flip: for each
device, the combined speed+efficiency improvement factor at which
generating a large image on-device beats transmitting it, plus the state
of play for a StreamDiffusion-class (10× faster) model generation.
"""

from _shared import print_table, within

from repro.devices import LAPTOP, MOBILE, WORKSTATION
from repro.devices.future import (
    find_crossover,
    generation_vs_transmission,
    project_device,
    project_model,
)
from repro.genai.registry import SD3_MEDIUM


def run_analysis():
    today = {
        device.name: generation_vs_transmission(SD3_MEDIUM, device)
        for device in (LAPTOP, WORKSTATION, MOBILE)
    }
    crossovers = {
        device.name: find_crossover(SD3_MEDIUM, device)
        for device in (LAPTOP, WORKSTATION, MOBILE)
    }
    fast_model = project_model(SD3_MEDIUM, 10.0)  # StreamDiffusion-class
    with_fast_model = {
        device.name: find_crossover(fast_model, device)
        for device in (LAPTOP, WORKSTATION, MOBILE)
    }
    return today, crossovers, with_fast_model


def test_a4_crossover(benchmark):
    today, crossovers, with_fast_model = benchmark.pedantic(run_analysis, rounds=1, iterations=1)

    print_table(
        "A4 / §7: energy crossover for a 1024² image (38 MWh/PB network)",
        ["device", "today: gen/tx energy", "crossover (HW x)", "with 10x-faster model"],
        [
            [
                name,
                f"{today[name].energy_ratio:.0f}x against SWW",
                f"{crossovers[name]:.1f}x",
                f"{with_fast_model[name]:.1f}x",
            ]
            for name in today
        ],
    )

    # Today, every device loses on energy (the paper's §7 verdict).
    for name, point in today.items():
        assert not point.sww_saves_energy, name
    # The crossover ordering matches device efficiency.
    assert crossovers["workstation"] < crossovers["laptop"] < crossovers["mobile"]
    # The bar is near-term: single-digit for the workstation, roughly one
    # hardware generation+model generation for the laptop.
    within(crossovers["workstation"], 3, 10, "workstation crossover")
    within(crossovers["laptop"], 8, 20, "laptop crossover")
    # A 10x faster model slashes the hardware bar everywhere.
    for name in crossovers:
        assert with_fast_model[name] < crossovers[name] / 2, name


def test_a4_future_point_check(benchmark):
    """Sanity: a concrete projected configuration actually wins."""

    def measure():
        device = project_device(WORKSTATION, speedup=4.0, efficiency_gain=4.0)
        model = project_model(SD3_MEDIUM, 10.0)
        return generation_vs_transmission(model, device)

    point = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "A4b: 10x model on a 4x-faster/4x-efficient workstation",
        ["metric", "value"],
        [
            ["generation", f"{point.generation_s * 1000:.0f} ms / {point.generation_wh * 1000:.2f} mWh"],
            ["transmission", f"{point.transmission_s * 1000:.1f} ms / {point.transmission_wh * 1000:.2f} mWh"],
            ["SWW saves energy", str(point.sww_saves_energy)],
        ],
    )
    assert point.sww_saves_energy
    assert point.generation_s < 0.5  # real-time-ish, per the cited work
