from setuptools import setup

# Entry points are declared here as well as in pyproject.toml because the
# offline install path (`python setup.py develop`, used when the `wheel`
# package is unavailable) does not read PEP 621 scripts on older setuptools.
setup(entry_points={"console_scripts": ["sww = repro.cli:main"]})
