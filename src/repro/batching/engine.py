"""The continuous micro-batching engine.

One :class:`BatchingEngine` models one accelerator: a dispatcher thread
pops the oldest queued request, opens a batching window, and admits every
compatible request that arrives within ``max_wait_s`` (up to
``max_batch``). Compatibility is the batch slot — same model, device,
step count, resolution and content type — because the batched kernels
stack the whole group into one ``(B, H, W, 3)`` pass. Groups execute
serially on the dispatcher (one accelerator), while PNG encodes are
pipelined onto a small worker pool so the next batch does not wait for
compression.

Admission composes with single-flight: a request submitted with a
content key that is already in flight does not enter the queue at all —
it shares the in-flight future and rides the leader's batch lane.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.devices.profiles import DeviceProfile
from repro.genai.embeddings import GRID
from repro.genai.image import ImageModel, ImageResult, batch_step_share, generate_image_batch
from repro.obs import MetricsRegistry, Tracer, get_event_log, get_registry, get_tracer

#: Marginal simulated cost of one extra batch lane relative to a solo run.
#: Calibrated so an accelerator-style diffusion batch of 8 lands at ~3.9×
#: solo throughput — the mid-range of published dynamic-batching speedups
#: for diffusion serving (docs/PERFORMANCE.md derives the curve).
DEFAULT_ALPHA = 0.15
DEFAULT_MAX_BATCH = 8
#: Batching window: how long the dispatcher holds an open group waiting
#: for compatible requests. Real wall-clock time (admission is a wall
#: phenomenon); simulated time is never affected by the window itself.
DEFAULT_MAX_WAIT_S = 0.004

_WAIT_BUCKETS = (0.0005, 0.001, 0.002, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25)
_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


@dataclass(frozen=True)
class BatchSlot:
    """The compatibility group key for admission."""

    model: str
    device: str
    steps: int
    width: int
    height: int
    content_type: str = "image"


@dataclass
class EngineStats:
    """Cumulative admission/execution counters (lock-guarded by the engine)."""

    requests: int = 0
    coalesced: int = 0
    batches: int = 0
    batched_items: int = 0
    largest_batch: int = 0
    saved_sim_s: float = 0.0

    @property
    def mean_batch(self) -> float:
        return self.batched_items / self.batches if self.batches else 0.0


@dataclass
class _PendingRequest:
    model: ImageModel
    prompt: str
    seed: int | None
    slot: BatchSlot
    future: Future = field(default_factory=Future)
    key: object | None = None
    enqueued_at: float = 0.0


class BatchingEngine:
    """Admits generation requests and executes them in micro-batches."""

    def __init__(
        self,
        device: DeviceProfile,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_s: float = DEFAULT_MAX_WAIT_S,
        alpha: float = DEFAULT_ALPHA,
        encode_workers: int = 2,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        events=None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        batch_step_share(1, alpha)  # validate alpha range
        self.device = device
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.alpha = alpha
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer if tracer is not None else get_tracer()
        #: Wide-event log: one batch.execute event per realised batch.
        self.events = events if events is not None else get_event_log()
        self.stats = EngineStats()
        #: Monotonic batch sequence; stamped on every waiter's future as
        #: ``future.batch_id`` / ``future.batch_size`` so the request-side
        #: wide event can record which batch its generation rode.
        self._batch_seq = 0
        self._queue: deque[_PendingRequest] = deque()
        self._inflight: dict[object, Future] = {}
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._closed = False
        self._encode_pool = ThreadPoolExecutor(
            max_workers=max(1, encode_workers), thread_name_prefix="batch-encode"
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="batch-dispatch", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------ admission

    def submit_image(
        self,
        model: ImageModel,
        prompt: str,
        width: int = 256,
        height: int = 256,
        steps: int | None = None,
        seed: int | None = None,
        key: object | None = None,
    ) -> Future:
        """Queue one image request; returns a future of :class:`ImageResult`.

        Validation happens at submit time so bad requests fail in the
        caller, not on the dispatcher. ``key`` (any hashable — callers
        pass the content-addressed :class:`~repro.gencache.GenerationKey`)
        enables single-flight coalescing: a duplicate of an in-flight key
        shares that request's future instead of entering the queue.
        """
        if width < GRID or height < GRID:
            raise ValueError(f"minimum generatable size is {GRID}x{GRID}")
        resolved_steps = steps if steps is not None else model.default_steps
        if resolved_steps <= 0:
            raise ValueError("steps must be positive")
        slot = BatchSlot(model.name, self.device.name, resolved_steps, width, height)
        with self._cond:
            if self._closed:
                raise RuntimeError("BatchingEngine is closed")
            if key is not None:
                shared = self._inflight.get(key)
                if shared is not None:
                    self.stats.coalesced += 1
                    self._count_request("coalesced")
                    return shared
            pending = _PendingRequest(
                model=model,
                prompt=prompt,
                seed=seed,
                slot=slot,
                key=key,
                enqueued_at=time.perf_counter(),
            )
            if key is not None:
                self._inflight[key] = pending.future
            self._queue.append(pending)
            self.stats.requests += 1
            self._count_request("admitted")
            self._cond.notify_all()
        return pending.future

    def generate_image(
        self,
        model: ImageModel,
        prompt: str,
        width: int = 256,
        height: int = 256,
        steps: int | None = None,
        seed: int | None = None,
        key: object | None = None,
    ) -> ImageResult:
        """Blocking convenience wrapper around :meth:`submit_image`."""
        return self.submit_image(model, prompt, width, height, steps, seed, key).result()

    # ----------------------------------------------------------- dispatcher

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    return  # closed and drained
                head = self._queue.popleft()
                group = [head]
                deadline = time.perf_counter() + self.max_wait_s
                while len(group) < self.max_batch:
                    self._take_compatible(head.slot, group)
                    if len(group) >= self.max_batch or self._closed:
                        break
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
            self._execute(group)

    def _take_compatible(self, slot: BatchSlot, group: list[_PendingRequest]) -> None:
        """Move queued requests matching ``slot`` into ``group`` (FIFO)."""
        kept: deque[_PendingRequest] = deque()
        while self._queue and len(group) < self.max_batch:
            candidate = self._queue.popleft()
            if candidate.slot == slot:
                group.append(candidate)
            else:
                kept.append(candidate)
        kept.extend(self._queue)
        self._queue = kept

    def _execute(self, group: list[_PendingRequest]) -> None:
        size = len(group)
        slot = group[0].slot
        now = time.perf_counter()
        self._observe_admission(group, now)
        with self._lock:
            self._batch_seq += 1
            batch_id = self._batch_seq
        share = round(batch_step_share(size, self.alpha), 4)
        record = self.events.begin(
            "batch.execute",
            batch_id=batch_id,
            batch_size=size,
            batch_share=share,
            model=slot.model,
            device=slot.device,
            steps=slot.steps,
        )
        # Waiters learn their batch before the result lands, so a request
        # event annotated after future.result() always sees the metadata.
        for pending in group:
            pending.future.batch_id = batch_id
            pending.future.batch_size = size
        with self.tracer.span(
            "batch.execute",
            model=slot.model,
            device=slot.device,
            size=f"{slot.width}x{slot.height}",
            steps=slot.steps,
            batch=size,
        ) as span:
            try:
                results = generate_image_batch(
                    group[0].model,
                    self.device,
                    [pending.prompt for pending in group],
                    slot.width,
                    slot.height,
                    steps=slot.steps,
                    seeds=[pending.seed for pending in group],
                    alpha=self.alpha,
                    registry=self.registry,
                    tracer=self.tracer,
                )
            except BaseException as exc:  # propagate to every waiter
                span.annotate(outcome="error")
                record.finish(error=type(exc).__name__)
                for pending in group:
                    pending.future.set_exception(exc)
                self._forget_keys(group)
                return
            span.annotate(outcome="ok", share=share)
        record.set(sim_time_s=results[0].sim_time_s * size)
        record.finish(status=200)
        for pending, result in zip(group, results):
            pending.future.set_result(result)
        self._forget_keys(group)
        solo_s = slot.steps * group[0].model.step_time(self.device, slot.width, slot.height)
        saved = (solo_s - results[0].sim_time_s) * size
        with self._lock:
            self.stats.batches += 1
            self.stats.batched_items += size
            self.stats.largest_batch = max(self.stats.largest_batch, size)
            self.stats.saved_sim_s += saved
        self._observe_execution(size, saved)
        # Pipeline the PNG encodes: the dispatcher moves on to the next
        # window while workers compress (png_bytes is thread-safe and
        # idempotent, so a consumer racing the pool costs nothing).
        for result in results:
            self._encode_pool.submit(result.png_bytes)

    def _forget_keys(self, group: list[_PendingRequest]) -> None:
        with self._lock:
            for pending in group:
                if pending.key is not None:
                    self._inflight.pop(pending.key, None)

    # -------------------------------------------------------------- closing

    def close(self) -> None:
        """Stop admission, drain queued requests, release the encode pool."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._dispatcher.join()
        self._encode_pool.shutdown(wait=True)

    def __enter__(self) -> BatchingEngine:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ---------------------------------------------------------- observation

    def _count_request(self, operation: str) -> None:
        if self.registry.enabled:
            self.registry.counter(
                "batching_requests_total",
                "Generation requests offered to the batching engine",
                layer="batching",
                operation=operation,
            ).inc()

    def _observe_admission(self, group: list[_PendingRequest], now: float) -> None:
        if not self.registry.enabled:
            return
        wait_hist = self.registry.histogram(
            "batching_queue_wait_seconds",
            "Wall time a request spent in the admission window",
            buckets=_WAIT_BUCKETS,
            layer="batching",
            operation="admit",
        )
        for pending in group:
            wait_hist.observe(now - pending.enqueued_at)

    def _observe_execution(self, size: int, saved: float) -> None:
        if not self.registry.enabled:
            return
        self.registry.histogram(
            "batching_batch_size",
            "Realised micro-batch sizes",
            buckets=_SIZE_BUCKETS,
            layer="batching",
            operation="execute",
        ).observe(size)
        self.registry.counter(
            "batching_batches_total",
            "Micro-batches executed",
            layer="batching",
            operation="execute",
        ).inc()
        self.registry.counter(
            "batching_saved_sim_seconds_total",
            "Simulated seconds saved by amortisation vs solo runs",
            layer="batching",
            operation="execute",
        ).inc(saved)
        # Speedup of the last batch: B / (1 + α(B−1)); 1.0 means no
        # amortisation happened (solo batches).
        self.registry.gauge(
            "batching_efficiency",
            "Throughput speedup of the most recent batch vs solo execution",
            layer="batching",
            operation="execute",
        ).set(size / (1.0 + self.alpha * (size - 1)))
