"""repro.batching — continuous micro-batching for the generation layer.

Real inference servers (Triton, vLLM) never run one request at a time
under load: requests from concurrent streams are admitted into a bounded
batching window and executed together, amortising the per-step cost of
the accelerator across the batch. This package reproduces that serving
pattern for the simulated diffusion pipeline, sitting under the client
page loop, the server materialisation fallback, and the CDN prompt-mode
edge (ROADMAP: "serves heavy traffic from millions of users, as fast as
the hardware allows").

:class:`BatchingEngine` groups compatible requests — same
``(model, device, steps, width×height, content-type)`` — inside a
``max_batch`` / ``max_wait`` window and executes each group through the
batched numpy kernels in :mod:`repro.genai.image`. Simulated time models
GPU-style amortisation with the efficiency curve

    ``batch_time(B) = step_time × steps × (1 + α·(B−1)) / B``

where :data:`DEFAULT_ALPHA` is the marginal cost of an extra batch lane
(docs/PERFORMANCE.md documents the calibration). Per-item *bytes* are
unaffected: every batched output is byte-identical to the solo path, and
a batch of one is identical in simulated time and energy too, so the
cold Fig. 2 / Table 2 numbers never move.

Single-flight composes with batching: duplicate content keys coalesce
onto one in-flight future *before* admission, then distinct keys batch.
"""

from repro.batching.engine import (
    DEFAULT_ALPHA,
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_WAIT_S,
    BatchingEngine,
    BatchSlot,
    EngineStats,
)
from repro.genai.image import batch_step_share

__all__ = [
    "DEFAULT_ALPHA",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_WAIT_S",
    "BatchingEngine",
    "BatchSlot",
    "EngineStats",
    "batch_step_share",
]
