"""A sans-io HTTP/2 connection engine (client and server roles).

The engine follows the "sans-io" pattern: callers feed received bytes in via
:meth:`H2Connection.receive_data` and get protocol events out; outbound
bytes accumulate in an internal buffer drained with
:meth:`H2Connection.data_to_send`. This keeps the protocol logic fully
testable without sockets, and lets the same engine run over asyncio TCP or
the in-memory transports in :mod:`repro.http2.transport`.

The SWW extension surfaces here in three places:

* :meth:`initiate_connection` includes ``SETTINGS_GEN_ABILITY`` in the
  initial SETTINGS frame when the local endpoint supports generation;
* incoming SETTINGS update :attr:`peer_settings`, after which
  :attr:`gen_ability_negotiated` reports whether *both* peers advertised
  support (paper §3: "In any case other than both server and client having
  SETTINGS_GEN_ABILITY set to 1, default behavior will be assumed.");
* the :class:`GenAbilityNegotiated` event fires exactly once per connection
  when the peer's first SETTINGS frame arrives, carrying the verdict.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.http2 import frames
from repro.http2.errors import (
    CompressionError,
    ErrorCode,
    FlowControlError,
    ProtocolError,
    StreamError,
)
from repro.http2.flow_control import FlowControlWindow
from repro.http2.frames import (
    ContinuationFrame,
    DataFrame,
    Frame,
    GoAwayFrame,
    HeadersFrame,
    PingFrame,
    PriorityFrame,
    PriorityUpdateFrame,
    PushPromiseFrame,
    RstStreamFrame,
    SettingsFrame,
    WindowUpdateFrame,
)
from repro.http2.hpack import HpackDecoder, HpackEncoder
from repro.http2.priority import (
    PRIORITY_HEADER,
    Priority,
    parse_priority_field,
    urgency_from_weight,
)
from repro.http2.settings import Setting, Settings
from repro.http2.streams import H2Stream, StreamEvent, StreamState
from repro.obs import MetricsRegistry, get_registry

#: The client connection preface (RFC 9113 §3.4).
CONNECTION_PREFACE = b"PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"

HeaderList = list[tuple[bytes, bytes]]

#: Frame type code → exported metric label.
FRAME_TYPE_NAMES = {
    frames.TYPE_DATA: "DATA",
    frames.TYPE_HEADERS: "HEADERS",
    frames.TYPE_PRIORITY: "PRIORITY",
    frames.TYPE_RST_STREAM: "RST_STREAM",
    frames.TYPE_SETTINGS: "SETTINGS",
    frames.TYPE_PUSH_PROMISE: "PUSH_PROMISE",
    frames.TYPE_PING: "PING",
    frames.TYPE_GOAWAY: "GOAWAY",
    frames.TYPE_WINDOW_UPDATE: "WINDOW_UPDATE",
    frames.TYPE_CONTINUATION: "CONTINUATION",
    frames.TYPE_PRIORITY_UPDATE: "PRIORITY_UPDATE",
}


class Role(enum.Enum):
    CLIENT = "client"
    SERVER = "server"


@dataclass
class Event:
    """Base class for protocol events returned by ``receive_data``."""

    stream_id: int = 0


@dataclass
class RemoteSettingsChanged(Event):
    changes: dict[int, int] = field(default_factory=dict)


@dataclass
class SettingsAcknowledged(Event):
    pass


@dataclass
class GenAbilityNegotiated(Event):
    """Fired when the peer's first SETTINGS frame reveals its capability."""

    local: bool = False
    peer: bool = False

    @property
    def negotiated(self) -> bool:
        return self.local and self.peer


@dataclass
class RequestReceived(Event):
    headers: HeaderList = field(default_factory=list)
    end_stream: bool = False


@dataclass
class ResponseReceived(Event):
    headers: HeaderList = field(default_factory=list)
    end_stream: bool = False


@dataclass
class TrailersReceived(Event):
    headers: HeaderList = field(default_factory=list)


@dataclass
class DataReceived(Event):
    data: bytes = b""
    flow_controlled_length: int = 0
    end_stream: bool = False


@dataclass
class StreamEnded(Event):
    pass


@dataclass
class StreamReset(Event):
    error_code: ErrorCode = ErrorCode.NO_ERROR


@dataclass
class PushPromiseReceived(Event):
    promised_stream_id: int = 0
    headers: HeaderList = field(default_factory=list)


@dataclass
class PingReceived(Event):
    data: bytes = b""


@dataclass
class PingAcknowledged(Event):
    data: bytes = b""


@dataclass
class WindowUpdated(Event):
    delta: int = 0


@dataclass
class ConnectionTerminated(Event):
    error_code: ErrorCode = ErrorCode.NO_ERROR
    last_stream_id: int = 0
    debug_data: bytes = b""


@dataclass
class PriorityUpdated(Event):
    """An RFC 9218 priority signal (header, PRIORITY_UPDATE, or mapped
    legacy PRIORITY frame) changed a stream's scheduling parameters."""

    urgency: int = 3
    incremental: bool = False
    #: True when the signal came from a deprecated RFC 7540 §5.3 PRIORITY
    #: frame and was approximated via ``urgency_from_weight``.
    legacy: bool = False


@dataclass
class StreamRefused(Event):
    """A new peer stream was refused (REFUSED_STREAM) — over the local
    MAX_CONCURRENT_STREAMS limit. The stream was never created; the peer
    may safely retry it later (RFC 9113 §8.7)."""

    reason: str = "max-concurrent-streams"


@dataclass
class AbuseDetected(Event):
    """Abusive peer behaviour crossed a limit and the connection is being
    torn down with ENHANCE_YOUR_CALM (rapid reset, SETTINGS/PING floods)."""

    kind: str = ""
    count: int = 0


class H2Connection:
    """One endpoint of an HTTP/2 connection.

    Parameters
    ----------
    role:
        CLIENT sends the connection preface and uses odd stream ids;
        SERVER expects the preface and uses even ids for pushes.
    gen_ability:
        Whether this endpoint advertises ``SETTINGS_GEN_ABILITY`` (the SWW
        capability). ``gen_ability_value`` allows richer 32-bit encodings.
    """

    def __init__(
        self,
        role: Role,
        gen_ability: bool = False,
        gen_ability_value: int | None = None,
        header_table_size: int = 4096,
        use_huffman: bool = True,
        use_indexing: bool = True,
        initial_window_size: int = 1 << 24,
        registry: MetricsRegistry | None = None,
        max_concurrent_streams: int | None = None,
        rapid_reset_limit: int = 64,
        control_flood_limit: int = 512,
    ) -> None:
        self.role = role
        #: Observability sink; defaults to the process-wide registry
        #: (a no-op unless :func:`repro.obs.configure` installed one).
        self.registry = registry if registry is not None else get_registry()
        self.local_gen_ability = gen_ability
        self._gen_ability_value = gen_ability_value if gen_ability_value is not None else (1 if gen_ability else 0)
        local_overrides = {
            Setting.GEN_ABILITY: self._gen_ability_value,
            Setting.INITIAL_WINDOW_SIZE: initial_window_size,
        }
        if max_concurrent_streams is not None:
            local_overrides[Setting.MAX_CONCURRENT_STREAMS] = max_concurrent_streams
        self.local_settings = Settings(local_overrides)
        #: None = unlimited (we refuse nothing even if the peer floods us).
        self._max_concurrent_streams = max_concurrent_streams
        # Abuse accounting (CVE-2023-44487-style rapid reset; SETTINGS/PING
        # control-frame floods). Crossing a limit triggers GOAWAY with
        # ENHANCE_YOUR_CALM and an AbuseDetected event.
        self._rapid_reset_limit = rapid_reset_limit
        self._control_flood_limit = control_flood_limit
        self._rapid_resets = 0
        self._control_frames = 0
        self.peer_settings = Settings()
        self._peer_settings_received = False
        self.encoder = HpackEncoder(header_table_size, use_huffman=use_huffman, use_indexing=use_indexing)
        self.decoder = HpackDecoder(header_table_size)
        self.streams: dict[int, H2Stream] = {}
        self.outbound_window = FlowControlWindow()
        self.inbound_window = FlowControlWindow()
        self._send_buffer = bytearray()
        self._recv_buffer = b""
        self._preface_pending = role == Role.SERVER
        self._next_stream_id = 1 if role == Role.CLIENT else 2
        self._highest_peer_stream = 0
        self._expect_continuation: tuple[int, bytearray, bool] | None = None
        self._goaway_sent = False
        self._goaway_received = False
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Per-frame-type byte accounting, for the protocol-overhead benches.
        self.sent_frame_bytes: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Outbound API
    # ------------------------------------------------------------------ #

    def initiate_connection(self) -> None:
        """Send the preface (clients) and the initial SETTINGS frame."""
        if self.role == Role.CLIENT:
            self._emit_raw(CONNECTION_PREFACE)
        settings: dict[int, int] = {
            Setting.HEADER_TABLE_SIZE: self.local_settings.header_table_size,
            Setting.INITIAL_WINDOW_SIZE: self.local_settings.initial_window_size,
            Setting.MAX_FRAME_SIZE: self.local_settings.max_frame_size,
        }
        if self._max_concurrent_streams is not None:
            settings[Setting.MAX_CONCURRENT_STREAMS] = self._max_concurrent_streams
        if self._gen_ability_value:
            settings[Setting.GEN_ABILITY] = self._gen_ability_value
            if self.registry.enabled:
                self.registry.counter(
                    "sww_negotiation_total",
                    "GEN_ABILITY negotiation outcomes per endpoint",
                    layer="http2",
                    operation="advertised",
                ).inc()
        self._emit_frame(SettingsFrame(settings=settings))
        # Raise the connection-level receive window to match the advertised
        # stream window (the connection window is not covered by SETTINGS —
        # RFC 9113 §6.9.2 — so it needs an explicit WINDOW_UPDATE).
        grant = self.local_settings.initial_window_size - self.inbound_window.available
        if grant > 0:
            self.inbound_window.replenish(grant)
            self._emit_frame(WindowUpdateFrame(stream_id=0, increment=grant))

    def get_next_available_stream_id(self) -> int:
        stream_id = self._next_stream_id
        self._next_stream_id += 2
        return stream_id

    def send_headers(
        self,
        stream_id: int,
        headers: HeaderList,
        end_stream: bool = False,
        max_fragment: int | None = None,
    ) -> None:
        """Send HEADERS (+CONTINUATIONs when the block exceeds a frame)."""
        self._assert_open_for_sending()
        stream = self._get_or_create_stream(stream_id)
        stream.process(StreamEvent.SEND_HEADERS)
        if end_stream:
            stream.process(StreamEvent.SEND_END_STREAM)
        block = self.encoder.encode(headers)
        self._note_hpack()
        limit = max_fragment or self.peer_settings.max_frame_size
        first, rest = block[:limit], block[limit:]
        self._emit_frame(
            HeadersFrame(
                stream_id=stream_id,
                header_block=first,
                end_stream=end_stream,
                end_headers=not rest,
            )
        )
        while rest:
            fragment, rest = rest[:limit], rest[limit:]
            self._emit_frame(
                ContinuationFrame(stream_id=stream_id, header_block=fragment, end_headers=not rest)
            )

    def send_data(self, stream_id: int, data: bytes | memoryview, end_stream: bool = False) -> None:
        """Send DATA, chunked to the peer's MAX_FRAME_SIZE, consuming windows.

        Chunks are memoryview slices — no per-frame copy of the body; the
        only copy is the final wire assembly in ``Frame.serialize``.
        """
        self._assert_open_for_sending()
        stream = self.streams.get(stream_id)
        if stream is None or not stream.can_send_data:
            raise ProtocolError(f"cannot send DATA on stream {stream_id}")
        limit = self.peer_settings.max_frame_size
        view = memoryview(data)
        offset = 0
        while True:
            chunk = view[offset : offset + limit]
            offset += len(chunk)
            last = offset >= len(data)
            try:
                self.outbound_window.consume(len(chunk))
                stream.outbound_window.consume(len(chunk))
            except FlowControlError:
                if self.registry.enabled:
                    self.registry.counter(
                        "http2_flow_stalls_total",
                        "Sends/receives blocked on an exhausted flow-control window",
                        layer="http2",
                        operation="send",
                    ).inc()
                raise
            self._emit_frame(DataFrame(stream_id=stream_id, data=chunk, end_stream=end_stream and last))
            if last:
                break
        if end_stream:
            stream.process(StreamEvent.SEND_END_STREAM)

    def send_ping(self, data: bytes = b"\x00" * 8) -> None:
        self._emit_frame(PingFrame(data=data))

    def promise_stream(
        self,
        request_stream_id: int,
        request_headers: HeaderList,
        response_headers: HeaderList,
    ) -> int:
        """Reserve a pushed stream and send its PUSH_PROMISE + HEADERS.

        Emits PUSH_PROMISE on ``request_stream_id`` (RFC 9113 §8.4),
        reserving a new even-numbered stream, then sends the response
        headers on the promised stream — but *not* the body, so callers
        that schedule DATA through a flow-control-aware writer (the
        concurrent server) can queue the payload separately. Returns the
        promised stream id. Requires the peer to have left ENABLE_PUSH on.
        """
        if self.role != Role.SERVER:
            raise ProtocolError("only servers may push")
        if not self.peer_settings.enable_push:
            raise ProtocolError("peer disabled server push")
        parent = self.streams.get(request_stream_id)
        if parent is None or parent.closed:
            raise ProtocolError(f"cannot push against stream {request_stream_id}")
        promised_id = self.get_next_available_stream_id()
        promised = self._get_or_create_stream(promised_id)
        promised.process(StreamEvent.SEND_PUSH_PROMISE)
        block = self.encoder.encode(request_headers)
        self._emit_frame(
            PushPromiseFrame(
                stream_id=request_stream_id,
                promised_stream_id=promised_id,
                header_block=block,
            )
        )
        promised.process(StreamEvent.SEND_HEADERS)
        response_block = self.encoder.encode(response_headers)
        self._emit_frame(HeadersFrame(stream_id=promised_id, header_block=response_block))
        return promised_id

    def push_stream(
        self,
        request_stream_id: int,
        request_headers: HeaderList,
        response_headers: HeaderList,
        data: bytes,
    ) -> int:
        """Server push: promise and immediately fulfil a pushed response
        (see :meth:`promise_stream` for the deferred-body variant)."""
        promised_id = self.promise_stream(request_stream_id, request_headers, response_headers)
        self.send_data(promised_id, data, end_stream=True)
        return promised_id

    def reset_stream(self, stream_id: int, error_code: ErrorCode = ErrorCode.CANCEL) -> None:
        stream = self._get_or_create_stream(stream_id)
        stream.process(StreamEvent.SEND_RST)
        self._emit_frame(RstStreamFrame(stream_id=stream_id, error_code=error_code))

    def close_connection(self, error_code: ErrorCode = ErrorCode.NO_ERROR, debug: bytes = b"") -> None:
        self._emit_frame(
            GoAwayFrame(last_stream_id=self._highest_peer_stream, error_code=error_code, debug_data=debug)
        )
        self._goaway_sent = True
        if self.registry.enabled:
            self.registry.counter(
                "http2_goaway_sent_total",
                "GOAWAY frames emitted, by error code",
                layer="http2",
                operation=error_code.name,
            ).inc()

    def send_priority_update(self, stream_id: int, priority: Priority) -> None:
        """Reprioritise a stream hop-by-hop (RFC 9218 §7.1).

        Also applies the parameters locally so a same-process scheduler
        (tests, in-memory transports) observes the change without a
        round trip.
        """
        self._emit_frame(
            PriorityUpdateFrame(prioritized_stream_id=stream_id, field_value=priority.serialize())
        )
        stream = self.streams.get(stream_id)
        if stream is not None and not stream.closed:
            stream.set_priority(priority.urgency, priority.incremental)

    def increment_flow_control_window(self, increment: int, stream_id: int = 0) -> None:
        """Grant the peer more credit (connection when stream_id == 0)."""
        if stream_id == 0:
            self.inbound_window.replenish(increment)
        else:
            stream = self.streams.get(stream_id)
            if stream is None:
                raise ProtocolError(f"unknown stream {stream_id}")
            stream.inbound_window.replenish(increment)
        self._emit_frame(WindowUpdateFrame(stream_id=stream_id, increment=increment))

    def acknowledge_settings(self) -> None:
        self._emit_frame(SettingsFrame(ack=True))

    def update_settings(self, changes: dict[int, int]) -> None:
        """Send a mid-connection SETTINGS frame."""
        self._emit_frame(SettingsFrame(settings=dict(changes)))
        old_window = self.local_settings.initial_window_size
        applied = self.local_settings.update(changes)
        if Setting.INITIAL_WINDOW_SIZE in applied:
            # Mirror §6.9.2 locally: the peer will treat every stream's
            # send window as resized by the delta the moment it applies
            # this frame, so our per-stream receive windows must move in
            # lockstep or a grown window looks like an overrun here.
            delta = applied[Setting.INITIAL_WINDOW_SIZE] - old_window
            for stream in self.streams.values():
                if not stream.closed:
                    stream.inbound_window.adjust(delta)

    def data_to_send(self) -> bytes:
        """Drain the outbound byte buffer."""
        out = bytes(self._send_buffer)
        self._send_buffer.clear()
        return out

    # ------------------------------------------------------------------ #
    # Inbound API
    # ------------------------------------------------------------------ #

    def receive_data(self, data: bytes) -> list[Event]:
        """Feed received bytes; returns the protocol events they produced."""
        self.bytes_received += len(data)
        if self.registry.enabled:
            self.registry.counter(
                "http2_wire_bytes_total", "Bytes on the wire", layer="http2", operation="received"
            ).inc(len(data))
        self._recv_buffer += data
        events: list[Event] = []
        if self._preface_pending:
            if len(self._recv_buffer) < len(CONNECTION_PREFACE):
                if not CONNECTION_PREFACE.startswith(self._recv_buffer):
                    raise ProtocolError("invalid connection preface")
                return events
            if not self._recv_buffer.startswith(CONNECTION_PREFACE):
                raise ProtocolError("invalid connection preface")
            self._recv_buffer = self._recv_buffer[len(CONNECTION_PREFACE) :]
            self._preface_pending = False
        parsed, self._recv_buffer = frames.parse_frames(
            self._recv_buffer, self.local_settings.max_frame_size
        )
        for frame in parsed:
            events.extend(self._handle_frame(frame))
        return events

    # ------------------------------------------------------------------ #
    # Negotiation status
    # ------------------------------------------------------------------ #

    @property
    def peer_gen_ability(self) -> bool:
        return self.peer_settings.gen_ability

    @property
    def gen_ability_negotiated(self) -> bool:
        """True only when *both* endpoints advertised GEN_ABILITY (§3)."""
        return self.local_gen_ability and self.peer_settings.gen_ability

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _assert_open_for_sending(self) -> None:
        if self._goaway_sent:
            raise ProtocolError("connection is shutting down (GOAWAY sent)")

    @property
    def hpack_evictions(self) -> int:
        """Dynamic-table evictions across both compression contexts."""
        return self.encoder.table.evictions + self.decoder.table.evictions

    def _note_hpack(self) -> None:
        """Refresh the HPACK dynamic-table gauges after an encode/decode."""
        if not self.registry.enabled:
            return
        for context, table in (("encoder", self.encoder.table), ("decoder", self.decoder.table)):
            self.registry.gauge(
                "http2_hpack_evictions",
                "HPACK dynamic-table entries evicted so far",
                layer="http2",
                operation=context,
            ).set(table.evictions)
            self.registry.gauge(
                "http2_hpack_table_bytes",
                "HPACK dynamic-table occupancy",
                layer="http2",
                operation=context,
            ).set(table.size)

    def _get_or_create_stream(self, stream_id: int) -> H2Stream:
        stream = self.streams.get(stream_id)
        if stream is None:
            stream = H2Stream(
                stream_id,
                outbound_window=FlowControlWindow(self.peer_settings.initial_window_size),
                inbound_window=FlowControlWindow(self.local_settings.initial_window_size),
            )
            self.streams[stream_id] = stream
        return stream

    def _emit_frame(self, frame: Frame) -> None:
        wire = frame.serialize()
        self._send_buffer += wire
        self.bytes_sent += len(wire)
        self.sent_frame_bytes[frame.TYPE] = self.sent_frame_bytes.get(frame.TYPE, 0) + len(wire)
        if self.registry.enabled:
            name = FRAME_TYPE_NAMES.get(frame.TYPE, "UNKNOWN")
            self.registry.counter(
                "http2_frames_sent_total", "Frames emitted, by type", layer="http2", operation=name
            ).inc()
            self.registry.counter(
                "http2_wire_bytes_total", "Bytes on the wire", layer="http2", operation="sent"
            ).inc(len(wire))

    def _emit_raw(self, data: bytes) -> None:
        self._send_buffer += data
        self.bytes_sent += len(data)
        if self.registry.enabled:
            self.registry.counter(
                "http2_wire_bytes_total", "Bytes on the wire", layer="http2", operation="sent"
            ).inc(len(data))

    def _handle_frame(self, frame: Frame) -> list[Event]:
        if self.registry.enabled:
            self.registry.counter(
                "http2_frames_received_total",
                "Frames received, by type",
                layer="http2",
                operation=FRAME_TYPE_NAMES.get(frame.TYPE, "UNKNOWN"),
            ).inc()
        if self._expect_continuation is not None and not isinstance(frame, ContinuationFrame):
            raise ProtocolError("expected CONTINUATION frame")
        if isinstance(frame, SettingsFrame):
            return self._handle_settings(frame)
        if isinstance(frame, HeadersFrame):
            return self._handle_headers(frame)
        if isinstance(frame, ContinuationFrame):
            return self._handle_continuation(frame)
        if isinstance(frame, DataFrame):
            return self._handle_data(frame)
        if isinstance(frame, PingFrame):
            return self._handle_ping(frame)
        if isinstance(frame, WindowUpdateFrame):
            return self._handle_window_update(frame)
        if isinstance(frame, RstStreamFrame):
            return self._handle_rst(frame)
        if isinstance(frame, GoAwayFrame):
            self._goaway_received = True
            return [
                ConnectionTerminated(
                    error_code=frame.error_code,
                    last_stream_id=frame.last_stream_id,
                    debug_data=frame.debug_data,
                )
            ]
        if isinstance(frame, PushPromiseFrame):
            return self._handle_push_promise(frame)
        if isinstance(frame, PriorityUpdateFrame):
            return self._handle_priority_update(frame)
        if isinstance(frame, PriorityFrame):
            return self._handle_legacy_priority(frame)
        return []

    def _handle_priority_update(self, frame: PriorityUpdateFrame) -> list[Event]:
        priority = parse_priority_field(frame.field_value)
        stream = self.streams.get(frame.prioritized_stream_id)
        if stream is None or stream.closed:
            # RFC 9218 §7: updates for unknown/closed streams are ignored
            # (a real server might buffer a couple for soon-to-open ids).
            return []
        stream.set_priority(priority.urgency, priority.incremental)
        return [
            PriorityUpdated(
                stream_id=frame.prioritized_stream_id,
                urgency=priority.urgency,
                incremental=priority.incremental,
            )
        ]

    def _handle_legacy_priority(self, frame: PriorityFrame) -> list[Event]:
        """Map a deprecated RFC 7540 §5.3 PRIORITY frame onto urgency.

        The dependency tree is not reconstructed — only the weight is
        approximated (RFC 9218 §2 recommends exactly this downgrade). Dep
        and exclusivity are accepted and dropped.
        """
        if frame.stream_id == 0:
            raise ProtocolError("PRIORITY on stream 0")
        stream = self.streams.get(frame.stream_id)
        if stream is None or stream.closed:
            return []  # priority for idle/closed streams carries no state here
        urgency = urgency_from_weight(frame.weight)
        stream.set_priority(urgency, incremental=False)
        return [
            PriorityUpdated(stream_id=frame.stream_id, urgency=urgency, incremental=False, legacy=True)
        ]

    def _active_peer_streams(self) -> int:
        """Streams the peer initiated that are not yet closed (§5.1.2)."""
        peer_parity = 1 if self.role == Role.SERVER else 0
        return sum(
            1
            for stream in self.streams.values()
            if stream.stream_id % 2 == peer_parity and not stream.closed
        )

    def _abuse(self, kind: str, count: int) -> list[Event]:
        """Tear the connection down with ENHANCE_YOUR_CALM."""
        if not self._goaway_sent:
            self.close_connection(ErrorCode.ENHANCE_YOUR_CALM, debug=kind.encode("ascii"))
        return [AbuseDetected(kind=kind, count=count)]

    def _handle_settings(self, frame: SettingsFrame) -> list[Event]:
        if frame.ack:
            return [SettingsAcknowledged()]
        old_window = self.peer_settings.initial_window_size
        applied = self.peer_settings.update(frame.settings)
        if Setting.HEADER_TABLE_SIZE in applied:
            self.encoder.set_max_table_size(applied[Setting.HEADER_TABLE_SIZE])
        if Setting.INITIAL_WINDOW_SIZE in applied:
            delta = applied[Setting.INITIAL_WINDOW_SIZE] - old_window
            for stream in self.streams.values():
                if not stream.closed:
                    stream.outbound_window.adjust(delta)
        self.acknowledge_settings()
        events: list[Event] = [RemoteSettingsChanged(changes=applied)]
        if not self._peer_settings_received:
            self._peer_settings_received = True
            negotiated = GenAbilityNegotiated(
                local=self.local_gen_ability, peer=self.peer_settings.gen_ability
            )
            if self.registry.enabled:
                self.registry.counter(
                    "sww_negotiation_total",
                    "GEN_ABILITY negotiation outcomes per endpoint",
                    layer="http2",
                    operation="accepted" if negotiated.negotiated else "fallback",
                ).inc()
            events.append(negotiated)
        events.extend(self._count_control_frame("settings-flood"))
        return events

    def _header_events(self, stream_id: int, headers: HeaderList, end_stream: bool) -> list[Event]:
        self._note_hpack()
        if (
            self._max_concurrent_streams is not None
            and stream_id not in self.streams
            and self._active_peer_streams() >= self._max_concurrent_streams
        ):
            # Refuse without touching the stream table: IDLE has no
            # SEND_RST transition, and REFUSED_STREAM promises the peer
            # the request was not processed at all (§8.7). The HPACK
            # block was already decoded, keeping the shared decoder
            # context consistent.
            self._emit_frame(
                RstStreamFrame(stream_id=stream_id, error_code=ErrorCode.REFUSED_STREAM)
            )
            if self.registry.enabled:
                self.registry.counter(
                    "http2_refused_streams_total",
                    "New streams refused over MAX_CONCURRENT_STREAMS",
                    layer="http2",
                    operation="max-concurrent",
                ).inc()
            return [StreamRefused(stream_id=stream_id, reason="max-concurrent-streams")]
        stream = self._get_or_create_stream(stream_id)
        priority_field = next((value for name, value in headers if name == PRIORITY_HEADER), None)
        if priority_field is not None:
            parsed = parse_priority_field(priority_field)
            stream.set_priority(parsed.urgency, parsed.incremental)
        is_trailers = bool(stream.received_headers) and stream.state in (
            StreamState.OPEN,
            StreamState.HALF_CLOSED_LOCAL,
        )
        stream.process(StreamEvent.RECV_HEADERS)
        stream.received_headers.append(headers)
        events: list[Event]
        if is_trailers:
            events = [TrailersReceived(stream_id=stream_id, headers=headers)]
        elif self.role == Role.SERVER:
            events = [RequestReceived(stream_id=stream_id, headers=headers, end_stream=end_stream)]
        else:
            events = [ResponseReceived(stream_id=stream_id, headers=headers, end_stream=end_stream)]
        if end_stream:
            stream.process(StreamEvent.RECV_END_STREAM)
            events.append(StreamEnded(stream_id=stream_id))
        self._highest_peer_stream = max(self._highest_peer_stream, stream_id)
        return events

    def _handle_headers(self, frame: HeadersFrame) -> list[Event]:
        if frame.stream_id == 0:
            raise ProtocolError("HEADERS on stream 0")
        if not frame.end_headers:
            self._expect_continuation = (frame.stream_id, bytearray(frame.header_block), frame.end_stream)
            return []
        try:
            headers = self.decoder.decode(frame.header_block)
        except CompressionError:
            raise
        events = self._header_events(frame.stream_id, headers, frame.end_stream)
        if frame.priority is not None:
            # Legacy HEADERS-borne prioritisation (RFC 7540 §6.2). The
            # RFC 9218 ``priority`` header field wins when both appear.
            stream = self.streams.get(frame.stream_id)
            if stream is not None and not stream.priority_signalled:
                _, weight, _ = frame.priority
                stream.set_priority(urgency_from_weight(weight), incremental=False)
        return events

    def _handle_continuation(self, frame: ContinuationFrame) -> list[Event]:
        if self._expect_continuation is None:
            raise ProtocolError("CONTINUATION without preceding HEADERS")
        stream_id, buffer, end_stream = self._expect_continuation
        if frame.stream_id != stream_id:
            raise ProtocolError("CONTINUATION on wrong stream")
        buffer += frame.header_block
        if not frame.end_headers:
            self._expect_continuation = (stream_id, buffer, end_stream)
            return []
        self._expect_continuation = None
        headers = self.decoder.decode(bytes(buffer))
        return self._header_events(stream_id, headers, end_stream)

    def _handle_data(self, frame: DataFrame) -> list[Event]:
        if frame.stream_id == 0:
            raise ProtocolError("DATA on stream 0")
        stream = self.streams.get(frame.stream_id)
        if stream is None or not stream.can_receive_data:
            raise StreamError(
                f"DATA on unusable stream {frame.stream_id}", frame.stream_id, ErrorCode.STREAM_CLOSED
            )
        flow_length = frame.flow_controlled_length()
        try:
            self.inbound_window.consume(flow_length)
            stream.inbound_window.consume(flow_length)
        except FlowControlError:
            if self.registry.enabled:
                self.registry.counter(
                    "http2_flow_stalls_total",
                    "Sends/receives blocked on an exhausted flow-control window",
                    layer="http2",
                    operation="receive",
                ).inc()
            raise
        stream.received_data += frame.data
        events: list[Event] = [
            DataReceived(
                stream_id=frame.stream_id,
                data=frame.data,
                flow_controlled_length=flow_length,
                end_stream=frame.end_stream,
            )
        ]
        if frame.end_stream:
            stream.process(StreamEvent.RECV_END_STREAM)
            events.append(StreamEnded(stream_id=frame.stream_id))
        return events

    def _handle_ping(self, frame: PingFrame) -> list[Event]:
        if frame.ack:
            return [PingAcknowledged(data=frame.data)]
        self._emit_frame(PingFrame(data=frame.data, ack=True))
        events: list[Event] = [PingReceived(data=frame.data)]
        events.extend(self._count_control_frame("ping-flood"))
        return events

    def _count_control_frame(self, kind: str) -> list[Event]:
        """Flood accounting for ack-eliciting control frames (PING,
        non-ack SETTINGS): each costs us a mandatory reply, so an
        unbounded stream of them is free amplification for the peer."""
        self._control_frames += 1
        if self._control_frames >= self._control_flood_limit:
            return self._abuse(kind, self._control_frames)
        return []

    def _handle_window_update(self, frame: WindowUpdateFrame) -> list[Event]:
        if frame.increment == 0:
            raise ProtocolError("WINDOW_UPDATE with zero increment")
        if frame.stream_id == 0:
            self.outbound_window.replenish(frame.increment)
        else:
            stream = self.streams.get(frame.stream_id)
            if stream is not None and not stream.closed:
                stream.outbound_window.replenish(frame.increment)
        return [WindowUpdated(stream_id=frame.stream_id, delta=frame.increment)]

    def _handle_rst(self, frame: RstStreamFrame) -> list[Event]:
        stream = self.streams.get(frame.stream_id)
        if stream is None:
            raise ProtocolError(f"RST_STREAM for idle stream {frame.stream_id}")
        if self.registry.enabled:
            self.registry.counter(
                "http2_rst_received_total",
                "RST_STREAM frames received, by error code",
                layer="http2",
                operation=frame.error_code.name,
            ).inc()
        # Rapid-reset accounting (CVE-2023-44487): a peer that cancels
        # streams it just opened, over and over, burns server work for
        # free. Count resets that land while the request is still live.
        rapid = stream.state in (StreamState.OPEN, StreamState.HALF_CLOSED_REMOTE)
        stream.process(StreamEvent.RECV_RST)
        events: list[Event] = [StreamReset(stream_id=frame.stream_id, error_code=frame.error_code)]
        if rapid:
            self._rapid_resets += 1
            if self._rapid_resets >= self._rapid_reset_limit:
                events.extend(self._abuse("rapid-reset", self._rapid_resets))
        return events

    def _handle_push_promise(self, frame: PushPromiseFrame) -> list[Event]:
        if self.role == Role.SERVER:
            raise ProtocolError("client sent PUSH_PROMISE")
        if not self.local_settings.enable_push:
            raise ProtocolError("PUSH_PROMISE with push disabled")
        headers = self.decoder.decode(frame.header_block)
        promised = self._get_or_create_stream(frame.promised_stream_id)
        promised.process(StreamEvent.RECV_PUSH_PROMISE)
        return [
            PushPromiseReceived(
                stream_id=frame.stream_id,
                promised_stream_id=frame.promised_stream_id,
                headers=headers,
            )
        ]
