"""HTTP/2 frame types and their wire format (RFC 9113 §4, §6).

Every frame starts with a 9-octet header::

    +-----------------------------------------------+
    |                 Length (24)                   |
    +---------------+---------------+---------------+
    |   Type (8)    |   Flags (8)   |
    +-+-------------+---------------+-------------------------------+
    |R|                 Stream Identifier (31)                      |
    +=+=============================================================+
    |                   Frame Payload (0...)                      ...
    +---------------------------------------------------------------+

All ten RFC 9113 frame types are implemented. ``serialize`` produces wire
bytes; :func:`parse_frame` / :func:`parse_frames` reverse it, raising
:class:`~repro.http2.errors.FrameError` on malformed input.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import ClassVar

from repro.http2.errors import ErrorCode, FrameError

FRAME_HEADER_LENGTH = 9
DEFAULT_MAX_FRAME_SIZE = 16_384

#: RFC 9113 frame type codes.
TYPE_DATA = 0x0
TYPE_HEADERS = 0x1
TYPE_PRIORITY = 0x2
TYPE_RST_STREAM = 0x3
TYPE_SETTINGS = 0x4
TYPE_PUSH_PROMISE = 0x5
TYPE_PING = 0x6
TYPE_GOAWAY = 0x7
TYPE_WINDOW_UPDATE = 0x8
TYPE_CONTINUATION = 0x9
#: RFC 9218 §7.1 (extensible priorities; not part of RFC 9113's ten).
TYPE_PRIORITY_UPDATE = 0x10

#: Flag bits.
FLAG_END_STREAM = 0x1
FLAG_ACK = 0x1
FLAG_END_HEADERS = 0x4
FLAG_PADDED = 0x8
FLAG_PRIORITY = 0x20


def _check_stream_id(stream_id: int) -> None:
    if not 0 <= stream_id <= 0x7FFFFFFF:
        raise FrameError(f"stream id {stream_id} out of 31-bit range", ErrorCode.PROTOCOL_ERROR)


@dataclass
class Frame:
    """Base frame; concrete subclasses define payload layout."""

    stream_id: int = 0
    TYPE: ClassVar[int] = -1

    def flags(self) -> int:
        return 0

    def payload(self) -> bytes:
        raise NotImplementedError

    def serialize(self) -> bytes:
        """Return the wire representation, header plus payload.

        ``payload()`` may return a :class:`memoryview` (the writer's
        zero-copy DATA path); the join here is the single copy that
        assembles the wire bytes.
        """
        _check_stream_id(self.stream_id)
        body = self.payload()
        if len(body) > 0xFFFFFF:
            raise FrameError(f"payload of {len(body)} bytes exceeds 24-bit length")
        header = struct.pack(
            ">BHBBL",
            (len(body) >> 16) & 0xFF,
            len(body) & 0xFFFF,
            self.TYPE,
            self.flags(),
            self.stream_id & 0x7FFFFFFF,
        )
        return b"".join((header, body))

    def wire_length(self) -> int:
        """Total bytes on the wire (header + payload)."""
        return FRAME_HEADER_LENGTH + len(self.payload())


def _split_padding(payload: bytes, flags: int) -> tuple[bytes, int]:
    """Strip PADDED layout; returns (content, pad_length)."""
    if not flags & FLAG_PADDED:
        return payload, 0
    if not payload:
        raise FrameError("PADDED frame with empty payload")
    pad_length = payload[0]
    body = payload[1:]
    if pad_length > len(body):
        raise FrameError("padding exceeds payload size", ErrorCode.PROTOCOL_ERROR)
    if any(body[len(body) - pad_length :]):
        # RFC 9113 §6.1: padding MUST be zero; receivers MAY treat nonzero
        # padding as PROTOCOL_ERROR. We do, to keep the codec strict.
        raise FrameError("nonzero padding octets", ErrorCode.PROTOCOL_ERROR)
    return body[: len(body) - pad_length], pad_length


def _pad(content: bytes, pad_length: int) -> bytes:
    if pad_length > 255:
        raise FrameError("pad length exceeds 255")
    # join, not +: content may be a memoryview on the zero-copy path.
    return b"".join((bytes([pad_length]), content, b"\x00" * pad_length))


@dataclass
class DataFrame(Frame):
    """DATA (§6.1) — application payload bytes, flow controlled.

    ``data`` may be a :class:`memoryview` slice of a larger response body
    (the writer's zero-copy path); it is consumed by ``serialize()``
    before the frame outlives the buffer it views.
    """

    data: bytes | memoryview = b""
    end_stream: bool = False
    pad_length: int = 0
    TYPE = TYPE_DATA

    def flags(self) -> int:
        value = FLAG_END_STREAM if self.end_stream else 0
        if self.pad_length:
            value |= FLAG_PADDED
        return value

    def payload(self) -> bytes:
        if self.pad_length:
            return _pad(self.data, self.pad_length)
        return self.data

    def flow_controlled_length(self) -> int:
        """The length counted against flow-control windows (§6.9.1)."""
        return len(self.payload())


@dataclass
class HeadersFrame(Frame):
    """HEADERS (§6.2) — carries an HPACK header block fragment."""

    header_block: bytes = b""
    end_stream: bool = False
    end_headers: bool = True
    pad_length: int = 0
    priority: tuple[int, int, bool] | None = None  # (dependency, weight, exclusive)
    TYPE = TYPE_HEADERS

    def flags(self) -> int:
        value = 0
        if self.end_stream:
            value |= FLAG_END_STREAM
        if self.end_headers:
            value |= FLAG_END_HEADERS
        if self.pad_length:
            value |= FLAG_PADDED
        if self.priority is not None:
            value |= FLAG_PRIORITY
        return value

    def payload(self) -> bytes:
        body = bytearray()
        if self.priority is not None:
            dependency, weight, exclusive = self.priority
            body += struct.pack(">LB", dependency | (0x80000000 if exclusive else 0), weight - 1)
        body += self.header_block
        if self.pad_length:
            return _pad(bytes(body), self.pad_length)
        return bytes(body)


@dataclass
class PriorityFrame(Frame):
    """PRIORITY (§6.3) — deprecated scheme, parsed for completeness."""

    dependency: int = 0
    weight: int = 16
    exclusive: bool = False
    TYPE = TYPE_PRIORITY

    def payload(self) -> bytes:
        return struct.pack(">LB", self.dependency | (0x80000000 if self.exclusive else 0), self.weight - 1)


@dataclass
class RstStreamFrame(Frame):
    """RST_STREAM (§6.4) — abnormal stream termination."""

    error_code: ErrorCode = ErrorCode.NO_ERROR
    TYPE = TYPE_RST_STREAM

    def payload(self) -> bytes:
        return struct.pack(">L", int(self.error_code))


@dataclass
class SettingsFrame(Frame):
    """SETTINGS (§6.5) — connection configuration parameters.

    This is the frame the paper extends: ``SETTINGS_GEN_ABILITY`` (0x07)
    travels as an ordinary (identifier, value) pair, so non-participating
    peers ignore it per §6.5.2.
    """

    settings: dict[int, int] = field(default_factory=dict)
    ack: bool = False
    TYPE = TYPE_SETTINGS

    def flags(self) -> int:
        return FLAG_ACK if self.ack else 0

    def payload(self) -> bytes:
        if self.ack and self.settings:
            raise FrameError("SETTINGS ACK must have empty payload")
        return b"".join(struct.pack(">HL", ident, value) for ident, value in sorted(self.settings.items()))


@dataclass
class PushPromiseFrame(Frame):
    """PUSH_PROMISE (§6.6) — reserves a stream for a server push."""

    promised_stream_id: int = 0
    header_block: bytes = b""
    end_headers: bool = True
    pad_length: int = 0
    TYPE = TYPE_PUSH_PROMISE

    def flags(self) -> int:
        value = FLAG_END_HEADERS if self.end_headers else 0
        if self.pad_length:
            value |= FLAG_PADDED
        return value

    def payload(self) -> bytes:
        body = struct.pack(">L", self.promised_stream_id & 0x7FFFFFFF) + self.header_block
        if self.pad_length:
            return _pad(body, self.pad_length)
        return body


@dataclass
class PingFrame(Frame):
    """PING (§6.7) — liveness / RTT measurement; 8 opaque octets."""

    data: bytes = b"\x00" * 8
    ack: bool = False
    TYPE = TYPE_PING

    def flags(self) -> int:
        return FLAG_ACK if self.ack else 0

    def payload(self) -> bytes:
        if len(self.data) != 8:
            raise FrameError("PING payload must be exactly 8 octets")
        return self.data


@dataclass
class GoAwayFrame(Frame):
    """GOAWAY (§6.8) — connection shutdown with last processed stream."""

    last_stream_id: int = 0
    error_code: ErrorCode = ErrorCode.NO_ERROR
    debug_data: bytes = b""
    TYPE = TYPE_GOAWAY

    def payload(self) -> bytes:
        return struct.pack(">LL", self.last_stream_id & 0x7FFFFFFF, int(self.error_code)) + self.debug_data


@dataclass
class WindowUpdateFrame(Frame):
    """WINDOW_UPDATE (§6.9) — flow-control credit."""

    increment: int = 0
    TYPE = TYPE_WINDOW_UPDATE

    def payload(self) -> bytes:
        if not 1 <= self.increment <= 0x7FFFFFFF:
            raise FrameError("window increment must be in [1, 2^31-1]", ErrorCode.PROTOCOL_ERROR)
        return struct.pack(">L", self.increment)


@dataclass
class PriorityUpdateFrame(Frame):
    """PRIORITY_UPDATE (RFC 9218 §7.1) — reprioritise a stream hop-by-hop.

    Sent on stream 0; the stream being reprioritised travels in the
    payload, followed by the ASCII priority field value (``u=N, i``).
    """

    prioritized_stream_id: int = 0
    field_value: bytes = b""
    TYPE = TYPE_PRIORITY_UPDATE

    def payload(self) -> bytes:
        _check_stream_id(self.prioritized_stream_id)
        return struct.pack(">L", self.prioritized_stream_id & 0x7FFFFFFF) + self.field_value


@dataclass
class ContinuationFrame(Frame):
    """CONTINUATION (§6.10) — continues a header block."""

    header_block: bytes = b""
    end_headers: bool = False
    TYPE = TYPE_CONTINUATION

    def flags(self) -> int:
        return FLAG_END_HEADERS if self.end_headers else 0

    def payload(self) -> bytes:
        return self.header_block


_FIXED_PAYLOAD_SIZES = {
    TYPE_PRIORITY: 5,
    TYPE_RST_STREAM: 4,
    TYPE_PING: 8,
    TYPE_WINDOW_UPDATE: 4,
}


def _parse_data(flags: int, stream_id: int, payload: bytes) -> DataFrame:
    content, pad = _split_padding(payload, flags)
    return DataFrame(stream_id=stream_id, data=content, end_stream=bool(flags & FLAG_END_STREAM), pad_length=pad)


def _parse_headers(flags: int, stream_id: int, payload: bytes) -> HeadersFrame:
    content, pad = _split_padding(payload, flags)
    priority = None
    if flags & FLAG_PRIORITY:
        if len(content) < 5:
            raise FrameError("HEADERS priority fields truncated")
        raw_dep, weight = struct.unpack(">LB", content[:5])
        priority = (raw_dep & 0x7FFFFFFF, weight + 1, bool(raw_dep & 0x80000000))
        content = content[5:]
    return HeadersFrame(
        stream_id=stream_id,
        header_block=content,
        end_stream=bool(flags & FLAG_END_STREAM),
        end_headers=bool(flags & FLAG_END_HEADERS),
        pad_length=pad,
        priority=priority,
    )


def _parse_settings(flags: int, stream_id: int, payload: bytes) -> SettingsFrame:
    if stream_id != 0:
        raise FrameError("SETTINGS must be on stream 0", ErrorCode.PROTOCOL_ERROR)
    if flags & FLAG_ACK:
        if payload:
            raise FrameError("SETTINGS ACK with payload")
        return SettingsFrame(ack=True)
    if len(payload) % 6:
        raise FrameError("SETTINGS payload not a multiple of 6")
    settings: dict[int, int] = {}
    for i in range(0, len(payload), 6):
        ident, value = struct.unpack(">HL", payload[i : i + 6])
        settings[ident] = value
    return SettingsFrame(settings=settings)


def _parse_push_promise(flags: int, stream_id: int, payload: bytes) -> PushPromiseFrame:
    content, pad = _split_padding(payload, flags)
    if len(content) < 4:
        raise FrameError("PUSH_PROMISE payload truncated")
    (promised,) = struct.unpack(">L", content[:4])
    return PushPromiseFrame(
        stream_id=stream_id,
        promised_stream_id=promised & 0x7FFFFFFF,
        header_block=content[4:],
        end_headers=bool(flags & FLAG_END_HEADERS),
        pad_length=pad,
    )


def _parse_goaway(flags: int, stream_id: int, payload: bytes) -> GoAwayFrame:
    if stream_id != 0:
        raise FrameError("GOAWAY must be on stream 0", ErrorCode.PROTOCOL_ERROR)
    if len(payload) < 8:
        raise FrameError("GOAWAY payload truncated")
    last, code = struct.unpack(">LL", payload[:8])
    try:
        error = ErrorCode(code)
    except ValueError:
        error = ErrorCode.INTERNAL_ERROR
    return GoAwayFrame(last_stream_id=last & 0x7FFFFFFF, error_code=error, debug_data=payload[8:])


def parse_frame(data: bytes, offset: int = 0, max_frame_size: int = DEFAULT_MAX_FRAME_SIZE) -> tuple[Frame | None, int]:
    """Parse a single frame starting at ``offset``.

    Returns ``(frame, new_offset)``. ``frame`` is ``None`` when fewer bytes
    than a complete frame are available (the caller should buffer more).
    Unknown frame types are skipped and returned as ``None`` with the offset
    advanced (RFC 9113 §4.1: implementations must ignore unknown types).
    """
    if len(data) - offset < FRAME_HEADER_LENGTH:
        return None, offset
    hi, lo, ftype, flags, raw_stream = struct.unpack_from(">BHBBL", data, offset)
    length = (hi << 16) | lo
    if length > max_frame_size:
        raise FrameError(f"frame of {length} bytes exceeds SETTINGS_MAX_FRAME_SIZE {max_frame_size}")
    if len(data) - offset < FRAME_HEADER_LENGTH + length:
        return None, offset
    stream_id = raw_stream & 0x7FFFFFFF
    payload = bytes(data[offset + FRAME_HEADER_LENGTH : offset + FRAME_HEADER_LENGTH + length])
    new_offset = offset + FRAME_HEADER_LENGTH + length

    expected = _FIXED_PAYLOAD_SIZES.get(ftype)
    if expected is not None and length != expected:
        raise FrameError(f"frame type {ftype:#x} requires {expected}-byte payload, got {length}")

    if ftype == TYPE_DATA:
        return _parse_data(flags, stream_id, payload), new_offset
    if ftype == TYPE_HEADERS:
        return _parse_headers(flags, stream_id, payload), new_offset
    if ftype == TYPE_PRIORITY:
        raw_dep, weight = struct.unpack(">LB", payload)
        return (
            PriorityFrame(
                stream_id=stream_id,
                dependency=raw_dep & 0x7FFFFFFF,
                weight=weight + 1,
                exclusive=bool(raw_dep & 0x80000000),
            ),
            new_offset,
        )
    if ftype == TYPE_RST_STREAM:
        (code,) = struct.unpack(">L", payload)
        try:
            error = ErrorCode(code)
        except ValueError:
            error = ErrorCode.INTERNAL_ERROR
        return RstStreamFrame(stream_id=stream_id, error_code=error), new_offset
    if ftype == TYPE_SETTINGS:
        return _parse_settings(flags, stream_id, payload), new_offset
    if ftype == TYPE_PUSH_PROMISE:
        return _parse_push_promise(flags, stream_id, payload), new_offset
    if ftype == TYPE_PING:
        if stream_id != 0:
            raise FrameError("PING must be on stream 0", ErrorCode.PROTOCOL_ERROR)
        return PingFrame(stream_id=0, data=payload, ack=bool(flags & FLAG_ACK)), new_offset
    if ftype == TYPE_GOAWAY:
        return _parse_goaway(flags, stream_id, payload), new_offset
    if ftype == TYPE_WINDOW_UPDATE:
        (raw,) = struct.unpack(">L", payload)
        return WindowUpdateFrame(stream_id=stream_id, increment=raw & 0x7FFFFFFF), new_offset
    if ftype == TYPE_CONTINUATION:
        return (
            ContinuationFrame(stream_id=stream_id, header_block=payload, end_headers=bool(flags & FLAG_END_HEADERS)),
            new_offset,
        )
    if ftype == TYPE_PRIORITY_UPDATE:
        if stream_id != 0:
            raise FrameError("PRIORITY_UPDATE must be on stream 0", ErrorCode.PROTOCOL_ERROR)
        if length < 4:
            raise FrameError("PRIORITY_UPDATE payload truncated")
        (prioritized,) = struct.unpack(">L", payload[:4])
        return (
            PriorityUpdateFrame(
                stream_id=0,
                prioritized_stream_id=prioritized & 0x7FFFFFFF,
                field_value=payload[4:],
            ),
            new_offset,
        )
    # Unknown frame type: discard (extensions are allowed to use new types).
    return None, new_offset


def parse_frames(data: bytes, max_frame_size: int = DEFAULT_MAX_FRAME_SIZE) -> tuple[list[Frame], bytes]:
    """Parse as many complete frames as possible.

    Returns ``(frames, remainder)`` where ``remainder`` holds trailing bytes
    of an incomplete frame for the caller to prepend to its next read.
    """
    frames: list[Frame] = []
    offset = 0
    while True:
        frame, new_offset = parse_frame(data, offset, max_frame_size)
        if new_offset == offset:
            break
        offset = new_offset
        if frame is not None:
            frames.append(frame)
    return frames, bytes(data[offset:])
