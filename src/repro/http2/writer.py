"""Flow-control-aware response writer (the concurrent stream scheduler).

The sans-io engine's :meth:`H2Connection.send_data` is strict: it raises
:class:`FlowControlError` the moment a frame would overrun a window. That
is the right behaviour for a protocol engine, but a server streaming many
responses at once needs the complementary *scheduling* layer — something
that holds each stream's remaining body, sends exactly as much as the
connection and stream windows allow, parks streams whose window is
exhausted, and resumes them when the peer's WINDOW_UPDATE arrives.

:class:`ConnectionWriter` is that layer. It is itself sans-io (it only
writes into the engine's outbound buffer), so the same scheduler runs
under asyncio TCP in :mod:`repro.sww.server` and under the deterministic
in-memory transport in tests:

* **per-stream send queues** — :meth:`enqueue` accepts a whole response
  body; the writer owns chunking it into DATA frames no larger than the
  peer's ``MAX_FRAME_SIZE``;
* **round-robin interleaving** — each scheduling round gives every ready
  stream at most one frame before any stream gets a second, so a small
  page completes in bounded time even while a multi-megabyte asset is
  mid-transfer (no head-of-line blocking between responses);
* **flow-control pausing** — a stream whose stream window (or the shared
  connection window) is empty is skipped, not failed; :meth:`pump`
  simply stops making progress and the caller waits for the peer;
* **resume on WINDOW_UPDATE** — the owner calls :meth:`pump` again after
  feeding WINDOW_UPDATE frames to the engine (the asyncio server wires
  this to a writer-task wakeup).

The writer never splits the engine's invariants: every byte it emits goes
through :meth:`H2Connection.send_data` with a chunk size pre-clamped to
the available windows, so the engine's own accounting remains the single
source of truth.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from repro.http2.connection import H2Connection
from repro.obs import MetricsRegistry, get_registry


@dataclass
class _SendQueue:
    """One stream's pending response body."""

    stream_id: int
    data: memoryview
    end_stream: bool
    offset: int = 0
    #: True once the final frame (with END_STREAM when requested) went out.
    finished: bool = False
    #: Extra chunks appended while the stream was already queued.
    backlog: deque = field(default_factory=deque)
    #: Wide event this stream's response will close (see ``enqueue``).
    event: object | None = None
    enqueued_at: float = 0.0
    #: Per-stream scheduling stats, annotated onto the wide event.
    frames: int = 0
    stalls: int = 0
    #: True when the stream died (reset) under the queued response.
    reset: bool = False

    @property
    def remaining(self) -> int:
        return len(self.data) - self.offset

    def take(self, limit: int) -> memoryview:
        """Next chunk as a zero-copy view into the queued body.

        The view is consumed (serialized into the engine's outbound
        buffer) before the writer yields, so it never outlives ``data``.
        """
        chunk = self.data[self.offset : self.offset + limit]
        self.offset += len(chunk)
        return chunk


class ConnectionWriter:
    """Round-robin DATA scheduler over one connection's flow windows."""

    def __init__(self, conn: H2Connection, registry: MetricsRegistry | None = None) -> None:
        self.conn = conn
        self.registry = registry if registry is not None else get_registry()
        self._queues: dict[int, _SendQueue] = {}
        #: Round-robin order; rotated as streams take their turn.
        self._order: deque[int] = deque()
        #: Streams whose final frame already went out (END_STREAM sent or
        #: the stream died under the queue); late enqueues are programming
        #: errors, not silent re-opens.
        self._finished: set[int] = set()
        #: Cumulative scheduling statistics (also exported as metrics).
        self.frames_sent = 0
        self.bytes_sent = 0
        self.stream_stalls = 0
        self.connection_stalls = 0
        self.completed_streams = 0

    # ------------------------------------------------------------------ #
    # Queue management
    # ------------------------------------------------------------------ #

    def enqueue(
        self, stream_id: int, data: bytes, end_stream: bool = True, event=None
    ) -> None:
        """Queue a response body for flow-controlled transmission.

        Multiple calls for one stream append in order; ``end_stream`` on
        any call marks the stream finished after its last queued byte.
        Passing a wide ``event`` hands its completion to the writer: the
        event is annotated with the stream's frame/stall/queue-time stats
        and finished when the final frame goes out — or finished with
        ``error="stream-reset"`` if the stream dies under the queue — so
        a request's record covers its whole wire lifetime.
        """
        if stream_id in self._finished:
            raise ValueError(f"stream {stream_id} already finished its response")
        queue = self._queues.get(stream_id)
        if queue is None:
            self._queues[stream_id] = _SendQueue(
                stream_id,
                # Zero-copy: the queue views the caller's body directly;
                # every frame is sliced out of it without duplicating the
                # payload (callers hand over immutable response bytes).
                memoryview(data),
                end_stream,
                event=event,
                enqueued_at=time.perf_counter(),
            )
            self._order.append(stream_id)
        else:
            queue.backlog.append(data)
            queue.end_stream = queue.end_stream or end_stream
            if event is not None:
                queue.event = event
                if not queue.enqueued_at:
                    queue.enqueued_at = time.perf_counter()
        self._update_gauges()

    @property
    def pending_streams(self) -> int:
        return len(self._queues)

    @property
    def pending_bytes(self) -> int:
        return sum(
            q.remaining + sum(len(extra) for extra in q.backlog)
            for q in self._queues.values()
        )

    @property
    def idle(self) -> bool:
        return not self._queues

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def pump(self) -> int:
        """Emit as many DATA frames as the windows allow; return the bytes
        written into the engine's outbound buffer.

        Streams are served round-robin, one frame per stream per round.
        A return of 0 with :attr:`pending_streams` > 0 means every queued
        stream is blocked on flow control — the caller should wait for
        WINDOW_UPDATE (or a SETTINGS window resize) and pump again.
        """
        written = 0
        progress = True
        while progress and self._order:
            progress = False
            for _ in range(len(self._order)):
                stream_id = self._order.popleft()
                queue = self._queues.get(stream_id)
                if queue is None:
                    continue
                sent = self._send_one_frame(queue)
                if queue.finished:
                    del self._queues[stream_id]
                    self.completed_streams += 1
                    if queue.end_stream:
                        self._finished.add(stream_id)
                    self._close_event(queue)
                else:
                    self._order.append(stream_id)
                if sent is None:
                    continue  # stalled on a window; stays queued
                written += sent
                progress = True
            if (
                not progress
                and self._any_payload_pending()
                and self.conn.outbound_window.available <= 0
            ):
                # Everyone is parked on the shared connection window.
                self.connection_stalls += 1
                self._count_stall("connection")
        self._update_gauges()
        return written

    def _any_payload_pending(self) -> bool:
        """True if any queued stream still has body bytes (not just a bare
        END_STREAM flag, which needs no window credit)."""
        return any(
            q.remaining > 0 or q.backlog for q in self._queues.values()
        )

    def _send_one_frame(self, queue: _SendQueue) -> int | None:
        """Send at most one DATA frame for this stream.

        Returns the payload size sent (0 for a bare END_STREAM frame), or
        None when the stream is parked on an exhausted window.
        """
        if queue.remaining == 0 and queue.backlog:
            queue.data = memoryview(queue.backlog.popleft())
            queue.offset = 0
        stream = self.conn.streams.get(queue.stream_id)
        if stream is None or not stream.can_send_data:
            # The stream died (reset) under the queued response: drop it.
            queue.finished = True
            queue.reset = True
            queue.offset = len(queue.data)
            queue.backlog.clear()
            return 0
        last_chunk = queue.remaining <= self._frame_limit() and not queue.backlog
        if queue.remaining == 0:
            # Body fully sent; emit the bare END_STREAM frame if owed.
            self.conn.send_data(queue.stream_id, b"", end_stream=queue.end_stream)
            queue.finished = True
            self.frames_sent += 1
            queue.frames += 1
            return 0
        allowance = min(
            self._frame_limit(),
            self.conn.outbound_window.available,
            stream.outbound_window.available,
            queue.remaining,
        )
        if allowance <= 0:
            if stream.outbound_window.available <= 0:
                self.stream_stalls += 1
                queue.stalls += 1
                self._count_stall("stream")
            return None
        final = queue.end_stream and last_chunk and allowance == queue.remaining
        chunk = queue.take(allowance)
        self.conn.send_data(queue.stream_id, chunk, end_stream=final)
        queue.finished = final or (
            queue.remaining == 0 and not queue.backlog and not queue.end_stream
        )
        self.frames_sent += 1
        queue.frames += 1
        self.bytes_sent += len(chunk)
        return len(chunk)

    def _frame_limit(self) -> int:
        return self.conn.peer_settings.max_frame_size

    # ------------------------------------------------------------------ #
    # Wide-event completion
    # ------------------------------------------------------------------ #

    def _close_event(self, queue: _SendQueue, error: str | None = None) -> None:
        event = queue.event
        if event is None:
            return
        queue.event = None
        event.set(
            writer_frames=queue.frames,
            writer_stalls=queue.stalls,
            writer_queue_s=time.perf_counter() - queue.enqueued_at,
        )
        if error is not None:
            event.finish(error=error)
        elif queue.reset:
            event.finish(error="stream-reset")
        else:
            event.finish()

    def abort_pending(self, error: str = "connection-closed") -> int:
        """Finish every queued stream's wide event with an error.

        Called when the connection dies with responses still queued —
        without this, events handed to the writer would stay open forever
        (a leaked ring entry). Returns the number of streams aborted.
        """
        aborted = 0
        for queue in list(self._queues.values()):
            self._close_event(queue, error=error)
            aborted += 1
        self._queues.clear()
        self._order.clear()
        self._update_gauges()
        return aborted

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #

    def debug_state(self) -> dict:
        """Scheduler state for the admin plane's ``/debug/streams`` view:
        cumulative counters plus every queued stream's backlog and the
        flow-control windows it is waiting on."""
        streams = []
        for queue in self._queues.values():
            stream = self.conn.streams.get(queue.stream_id)
            streams.append(
                {
                    "stream_id": queue.stream_id,
                    "queued_bytes": queue.remaining
                    + sum(len(extra) for extra in queue.backlog),
                    "end_stream": queue.end_stream,
                    "stream_window": (
                        stream.outbound_window.available if stream is not None else None
                    ),
                }
            )
        return {
            "pending_streams": self.pending_streams,
            "pending_bytes": self.pending_bytes,
            "frames_sent": self.frames_sent,
            "bytes_sent": self.bytes_sent,
            "stream_stalls": self.stream_stalls,
            "connection_stalls": self.connection_stalls,
            "completed_streams": self.completed_streams,
            "connection_window": self.conn.outbound_window.available,
            "streams": streams,
        }

    def _count_stall(self, scope: str) -> None:
        if self.registry.enabled:
            self.registry.counter(
                "http2_writer_stalls_total",
                "Scheduler rounds that parked on an exhausted flow-control window",
                layer="http2",
                operation=scope,
            ).inc()

    def _update_gauges(self) -> None:
        if not self.registry.enabled:
            return
        self.registry.gauge(
            "http2_writer_queue_depth",
            "Streams with a response queued in the connection writer",
            layer="http2",
            operation="streams",
        ).set(float(self.pending_streams))
        self.registry.gauge(
            "http2_writer_buffered_bytes",
            "Response bytes waiting on flow-control credit in the writer",
            layer="http2",
            operation="bytes",
        ).set(float(self.pending_bytes))
