"""Flow-control-aware response writer (the concurrent stream scheduler).

The sans-io engine's :meth:`H2Connection.send_data` is strict: it raises
:class:`FlowControlError` the moment a frame would overrun a window. That
is the right behaviour for a protocol engine, but a server streaming many
responses at once needs the complementary *scheduling* layer — something
that holds each stream's remaining body, sends exactly as much as the
connection and stream windows allow, parks streams whose window is
exhausted, and resumes them when the peer's WINDOW_UPDATE arrives.

:class:`ConnectionWriter` is that layer. It is itself sans-io (it only
writes into the engine's outbound buffer), so the same scheduler runs
under asyncio TCP in :mod:`repro.sww.server` and under the deterministic
in-memory transport in tests:

* **per-stream send queues** — :meth:`enqueue` accepts a whole response
  body; the writer owns chunking it into DATA frames no larger than the
  peer's ``MAX_FRAME_SIZE``;
* **priority scheduling (RFC 9218)** — streams sit in strict urgency
  buckets (0 most urgent … 7 least). A lower-urgency bucket is served
  only when every more-urgent bucket is empty or window-blocked. Within
  a bucket, *incremental* streams round-robin one frame at a time (a
  small page completes in bounded time even while a multi-megabyte asset
  is mid-transfer) and *non-incremental* streams run to completion in
  enqueue order (§4.2: a response useless until complete should not be
  interleaved). Streams with no priority signal default to urgency 3,
  incremental — exactly the pre-priority writer's equal-share round
  robin, which ``priorities_enabled=False`` forces for every stream;
* **anti-starvation credit** — every frame served at urgency *u* accrues
  one debt unit to each hungrier-numbered non-empty bucket; at
  ``starvation_interval`` units the starved bucket claims one frame
  ahead of the strict scan, so urgency-7 bulk still drains under a
  steady stream of urgent work;
* **flow-control pausing** — a stream whose stream window (or the shared
  connection window) is empty is skipped, not failed; :meth:`pump`
  simply stops making progress and the caller waits for the peer;
* **resume on WINDOW_UPDATE** — the owner calls :meth:`pump` again after
  feeding WINDOW_UPDATE frames to the engine (the asyncio server wires
  this to a writer-task wakeup).

The writer never splits the engine's invariants: every byte it emits goes
through :meth:`H2Connection.send_data` with a chunk size pre-clamped to
the available windows, so the engine's own accounting remains the single
source of truth.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from repro.http2.connection import H2Connection
from repro.http2.priority import DEFAULT_URGENCY, URGENCY_LEVELS, clamp_urgency
from repro.obs import MetricsRegistry, get_registry


@dataclass
class _SendQueue:
    """One stream's pending response body."""

    stream_id: int
    data: memoryview
    end_stream: bool
    offset: int = 0
    #: True once the final frame (with END_STREAM when requested) went out.
    finished: bool = False
    #: Extra chunks appended while the stream was already queued.
    backlog: deque = field(default_factory=deque)
    #: Wide event this stream's response will close (see ``enqueue``).
    event: object | None = None
    enqueued_at: float = 0.0
    #: Per-stream scheduling stats, annotated onto the wide event.
    frames: int = 0
    stalls: int = 0
    #: True when the stream died (reset) under the queued response.
    reset: bool = False
    #: RFC 9218 scheduling parameters (bucket index / interleave mode).
    urgency: int = DEFAULT_URGENCY
    incremental: bool = True

    @property
    def remaining(self) -> int:
        return len(self.data) - self.offset

    def take(self, limit: int) -> memoryview:
        """Next chunk as a zero-copy view into the queued body.

        The view is consumed (serialized into the engine's outbound
        buffer) before the writer yields, so it never outlives ``data``.
        """
        chunk = self.data[self.offset : self.offset + limit]
        self.offset += len(chunk)
        return chunk


class ConnectionWriter:
    """Urgency-bucketed DATA scheduler over one connection's flow windows."""

    def __init__(
        self,
        conn: H2Connection,
        registry: MetricsRegistry | None = None,
        priorities_enabled: bool = True,
        starvation_interval: int = 8,
    ) -> None:
        self.conn = conn
        self.registry = registry if registry is not None else get_registry()
        #: False restores the flat equal-share round robin (every stream
        #: forced to the default bucket, incremental) — the ``--no-priorities``
        #: comparison path.
        self.priorities_enabled = priorities_enabled
        self.starvation_interval = max(1, starvation_interval)
        self._queues: dict[int, _SendQueue] = {}
        #: Strict-priority buckets of stream ids, index = urgency. Within
        #: a bucket the front stream is next up; incremental streams
        #: rotate to the back after each frame, non-incremental hold the
        #: front until finished (or window-stalled).
        self._buckets: list[deque[int]] = [deque() for _ in range(URGENCY_LEVELS)]
        #: Anti-starvation debt per bucket (see module docstring).
        self._starvation_debt: list[int] = [0] * URGENCY_LEVELS
        #: Streams whose final frame already went out (END_STREAM sent or
        #: the stream died under the queue); late enqueues are programming
        #: errors, not silent re-opens.
        self._finished: set[int] = set()
        #: Cumulative scheduling statistics (also exported as metrics).
        self.frames_sent = 0
        self.bytes_sent = 0
        self.stream_stalls = 0
        self.connection_stalls = 0
        self.completed_streams = 0
        self.starvation_credits = 0

    # ------------------------------------------------------------------ #
    # Queue management
    # ------------------------------------------------------------------ #

    def enqueue(
        self,
        stream_id: int,
        data: bytes,
        end_stream: bool = True,
        event=None,
        urgency: int | None = None,
        incremental: bool | None = None,
    ) -> None:
        """Queue a response body for flow-controlled transmission.

        Multiple calls for one stream append in order; ``end_stream`` on
        any call marks the stream finished after its last queued byte.
        Passing a wide ``event`` hands its completion to the writer: the
        event is annotated with the stream's frame/stall/queue-time stats
        and finished when the final frame goes out — or finished with
        ``error="stream-reset"`` if the stream dies under the queue — so
        a request's record covers its whole wire lifetime.

        Priority resolution: explicit ``urgency``/``incremental``
        arguments win, then the parameters the connection recorded on the
        stream (``priority`` header / PRIORITY_UPDATE), then the legacy
        defaults (urgency 3, incremental) that reproduce the flat round
        robin. With :attr:`priorities_enabled` off, every stream is
        forced to the legacy defaults.
        """
        if stream_id in self._finished:
            raise ValueError(f"stream {stream_id} already finished its response")
        urgency, incremental = self._resolve_priority(stream_id, urgency, incremental)
        queue = self._queues.get(stream_id)
        if queue is None:
            queue = _SendQueue(
                stream_id,
                # Zero-copy: the queue views the caller's body directly;
                # every frame is sliced out of it without duplicating the
                # payload (callers hand over immutable response bytes).
                memoryview(data),
                end_stream,
                event=event,
                enqueued_at=time.perf_counter(),
                urgency=urgency,
                incremental=incremental,
            )
            self._queues[stream_id] = queue
            self._buckets[urgency].append(stream_id)
        else:
            queue.backlog.append(data)
            queue.end_stream = queue.end_stream or end_stream
            if event is not None:
                queue.event = event
                if not queue.enqueued_at:
                    queue.enqueued_at = time.perf_counter()
            if (queue.urgency, queue.incremental) != (urgency, incremental):
                self._move_queue(queue, urgency, incremental)
        self._update_gauges()

    def reprioritize(self, stream_id: int, urgency: int, incremental: bool) -> bool:
        """Apply a mid-response priority change (PRIORITY_UPDATE).

        Returns True when the stream had a queue to move; the caller
        should pump afterwards, since a promotion may unblock sending
        order immediately.
        """
        if not self.priorities_enabled:
            return False
        queue = self._queues.get(stream_id)
        if queue is None:
            return False
        self._move_queue(queue, clamp_urgency(urgency), bool(incremental))
        self._update_gauges()
        return True

    def _resolve_priority(
        self, stream_id: int, urgency: int | None, incremental: bool | None
    ) -> tuple[int, bool]:
        if not self.priorities_enabled:
            return DEFAULT_URGENCY, True
        stream = self.conn.streams.get(stream_id)
        if urgency is None:
            urgency = stream.urgency if stream is not None else DEFAULT_URGENCY
        if incremental is None:
            incremental = stream.incremental if stream is not None else True
        return clamp_urgency(urgency), bool(incremental)

    def _move_queue(self, queue: _SendQueue, urgency: int, incremental: bool) -> None:
        if queue.urgency != urgency:
            bucket = self._buckets[queue.urgency]
            try:
                bucket.remove(queue.stream_id)
            except ValueError:
                pass
            self._buckets[urgency].append(queue.stream_id)
        queue.urgency = urgency
        queue.incremental = incremental

    @property
    def pending_streams(self) -> int:
        return len(self._queues)

    @property
    def pending_bytes(self) -> int:
        return sum(
            q.remaining + sum(len(extra) for extra in q.backlog)
            for q in self._queues.values()
        )

    @property
    def idle(self) -> bool:
        return not self._queues

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def pump(self) -> int:
        """Emit as many DATA frames as the windows allow; return the bytes
        written into the engine's outbound buffer.

        A return of 0 with :attr:`pending_streams` > 0 means every queued
        stream is blocked on flow control — the caller should wait for
        WINDOW_UPDATE (or a SETTINGS window resize) and pump again.
        """
        written = 0
        #: Streams that hit an empty window this pump; skipped until the
        #: next pump call (their credit can only return via the peer).
        stalled: set[int] = set()
        while True:
            queue = self._next_queue(stalled)
            if queue is None:
                break
            sent = self._send_one_frame(queue)
            if queue.finished:
                self._remove_queue(queue)
                self.completed_streams += 1
                if queue.end_stream:
                    self._finished.add(queue.stream_id)
                self._close_event(queue)
                if sent:
                    written += sent
                self._tick_starvation(queue.urgency)
                continue
            if sent is None:
                stalled.add(queue.stream_id)
                self._rotate(queue)
                continue
            written += sent
            if queue.incremental:
                self._rotate(queue)
            self._tick_starvation(queue.urgency)
        if self._any_payload_pending() and self.conn.outbound_window.available <= 0:
            # Pump ended with bytes still queued and the shared connection
            # window dry — everyone is parked on the peer.
            self.connection_stalls += 1
            self._count_stall("connection")
        self._update_gauges()
        return written

    def _next_queue(self, stalled: set[int]) -> _SendQueue | None:
        """Pick the next stream to serve: a starvation claim first, then
        the strict ascending-urgency scan, skipping stalled streams."""
        claim = self._starvation_claim(stalled)
        if claim is not None:
            return claim
        for bucket in self._buckets:
            for _ in range(len(bucket)):
                stream_id = bucket[0]
                queue = self._queues.get(stream_id)
                if queue is None:
                    bucket.popleft()  # finished stream left behind by a move
                    continue
                if stream_id in stalled:
                    bucket.rotate(-1)
                    continue
                return queue
        return None

    def _starvation_claim(self, stalled: set[int]) -> _SendQueue | None:
        """Give the hungriest over-debt bucket one frame ahead of the
        strict scan (scanned least-urgent first: deeper buckets starve
        soonest under a strict policy)."""
        for urgency in range(URGENCY_LEVELS - 1, 0, -1):
            if self._starvation_debt[urgency] < self.starvation_interval:
                continue
            bucket = self._buckets[urgency]
            for _ in range(len(bucket)):
                stream_id = bucket[0]
                queue = self._queues.get(stream_id)
                if queue is None:
                    bucket.popleft()
                    continue
                if stream_id in stalled:
                    bucket.rotate(-1)
                    continue
                self._starvation_debt[urgency] = 0
                self.starvation_credits += 1
                if self.registry.enabled:
                    self.registry.counter(
                        "http2_writer_starvation_credits_total",
                        "Frames granted to starved low-priority buckets",
                        layer="http2",
                        operation=f"u{urgency}",
                    ).inc()
                return queue
        return None

    def _tick_starvation(self, served_urgency: int) -> None:
        """A frame went to ``served_urgency``; every hungrier non-empty
        bucket moves one unit closer to a claim."""
        for urgency in range(served_urgency + 1, URGENCY_LEVELS):
            if self._buckets[urgency]:
                self._starvation_debt[urgency] += 1

    def _rotate(self, queue: _SendQueue) -> None:
        bucket = self._buckets[queue.urgency]
        try:
            bucket.remove(queue.stream_id)
        except ValueError:
            return
        bucket.append(queue.stream_id)

    def _remove_queue(self, queue: _SendQueue) -> None:
        self._queues.pop(queue.stream_id, None)
        try:
            self._buckets[queue.urgency].remove(queue.stream_id)
        except ValueError:
            pass

    def _any_payload_pending(self) -> bool:
        """True if any queued stream still has body bytes (not just a bare
        END_STREAM flag, which needs no window credit)."""
        return any(
            q.remaining > 0 or q.backlog for q in self._queues.values()
        )

    def _send_one_frame(self, queue: _SendQueue) -> int | None:
        """Send at most one DATA frame for this stream.

        Returns the payload size sent (0 for a bare END_STREAM frame), or
        None when the stream is parked on an exhausted window.
        """
        if queue.remaining == 0 and queue.backlog:
            queue.data = memoryview(queue.backlog.popleft())
            queue.offset = 0
        stream = self.conn.streams.get(queue.stream_id)
        if stream is None or not stream.can_send_data:
            # The stream died (reset) under the queued response: drop it.
            queue.finished = True
            queue.reset = True
            queue.offset = len(queue.data)
            queue.backlog.clear()
            return 0
        last_chunk = queue.remaining <= self._frame_limit() and not queue.backlog
        if queue.remaining == 0:
            # Body fully sent; emit the bare END_STREAM frame if owed.
            self.conn.send_data(queue.stream_id, b"", end_stream=queue.end_stream)
            queue.finished = True
            self.frames_sent += 1
            queue.frames += 1
            return 0
        allowance = min(
            self._frame_limit(),
            self.conn.outbound_window.available,
            stream.outbound_window.available,
            queue.remaining,
        )
        if allowance <= 0:
            if stream.outbound_window.available <= 0:
                self.stream_stalls += 1
                queue.stalls += 1
                self._count_stall("stream")
            return None
        final = queue.end_stream and last_chunk and allowance == queue.remaining
        chunk = queue.take(allowance)
        self.conn.send_data(queue.stream_id, chunk, end_stream=final)
        queue.finished = final or (
            queue.remaining == 0 and not queue.backlog and not queue.end_stream
        )
        self.frames_sent += 1
        queue.frames += 1
        self.bytes_sent += len(chunk)
        return len(chunk)

    def _frame_limit(self) -> int:
        return self.conn.peer_settings.max_frame_size

    # ------------------------------------------------------------------ #
    # Wide-event completion
    # ------------------------------------------------------------------ #

    def _close_event(self, queue: _SendQueue, error: str | None = None) -> None:
        event = queue.event
        if event is None:
            return
        queue.event = None
        event.set(
            writer_frames=queue.frames,
            writer_stalls=queue.stalls,
            writer_queue_s=time.perf_counter() - queue.enqueued_at,
            writer_urgency=queue.urgency,
        )
        if error is not None:
            event.finish(error=error)
        elif queue.reset:
            event.finish(error="stream-reset")
        else:
            event.finish()

    def abort_pending(self, error: str = "connection-closed") -> int:
        """Finish every queued stream's wide event with an error.

        Called when the connection dies with responses still queued —
        without this, events handed to the writer would stay open forever
        (a leaked ring entry). Returns the number of streams aborted.
        """
        aborted = 0
        for queue in list(self._queues.values()):
            self._close_event(queue, error=error)
            aborted += 1
        self._queues.clear()
        for bucket in self._buckets:
            bucket.clear()
        self._update_gauges()
        return aborted

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #

    def debug_state(self) -> dict:
        """Scheduler state for the admin plane's ``/debug/streams`` view:
        cumulative counters plus every queued stream's backlog and the
        flow-control windows it is waiting on."""
        streams = []
        for queue in self._queues.values():
            stream = self.conn.streams.get(queue.stream_id)
            streams.append(
                {
                    "stream_id": queue.stream_id,
                    "queued_bytes": queue.remaining
                    + sum(len(extra) for extra in queue.backlog),
                    "end_stream": queue.end_stream,
                    "urgency": queue.urgency,
                    "incremental": queue.incremental,
                    "stream_window": (
                        stream.outbound_window.available if stream is not None else None
                    ),
                }
            )
        return {
            "pending_streams": self.pending_streams,
            "pending_bytes": self.pending_bytes,
            "frames_sent": self.frames_sent,
            "bytes_sent": self.bytes_sent,
            "stream_stalls": self.stream_stalls,
            "connection_stalls": self.connection_stalls,
            "completed_streams": self.completed_streams,
            "starvation_credits": self.starvation_credits,
            "priorities_enabled": self.priorities_enabled,
            "connection_window": self.conn.outbound_window.available,
            "streams": streams,
        }

    def _count_stall(self, scope: str) -> None:
        if self.registry.enabled:
            self.registry.counter(
                "http2_writer_stalls_total",
                "Scheduler rounds that parked on an exhausted flow-control window",
                layer="http2",
                operation=scope,
            ).inc()

    def _update_gauges(self) -> None:
        if not self.registry.enabled:
            return
        self.registry.gauge(
            "http2_writer_queue_depth",
            "Streams with a response queued in the connection writer",
            layer="http2",
            operation="streams",
        ).set(float(self.pending_streams))
        self.registry.gauge(
            "http2_writer_buffered_bytes",
            "Response bytes waiting on flow-control credit in the writer",
            layer="http2",
            operation="bytes",
        ).set(float(self.pending_bytes))
        for urgency, bucket in enumerate(self._buckets):
            if bucket or self.priorities_enabled:
                self.registry.gauge(
                    "http2_writer_urgency_depth",
                    "Streams queued per RFC 9218 urgency bucket",
                    layer="http2",
                    operation=f"u{urgency}",
                ).set(float(len(bucket)))
