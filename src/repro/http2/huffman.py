"""The HPACK Huffman code (RFC 7541 §5.2 and Appendix B).

The code table below is transcribed from RFC 7541 Appendix B: entry ``i``
gives ``(code, bit_length)`` for symbol ``i`` (symbols 0-255 are octets,
symbol 256 is EOS). Encoded strings are padded to a byte boundary with the
most-significant bits of the EOS code, i.e. with ones; a decoder must treat
padding longer than 7 bits, or padding that is not all-ones, as a decoding
error (RFC 7541 §5.2).

Decoding runs on a flat nibble-at-a-time finite state machine built once
at import: each state is a node of the code trie, and one table row maps a
4-bit input chunk to ``(next_state, emitted_bytes, saw_eos)``. Two table
lookups per input byte replace up to 8 dict walks, and the RFC's padding
rule collapses to a set membership test on the final state (the states
whose root path is all-ones and at most 7 bits deep).
"""

from __future__ import annotations

from repro.http2.errors import CompressionError

# fmt: off
HUFFMAN_TABLE: tuple[tuple[int, int], ...] = (
    (0x1FF8, 13), (0x7FFFD8, 23), (0xFFFFFE2, 28), (0xFFFFFE3, 28),
    (0xFFFFFE4, 28), (0xFFFFFE5, 28), (0xFFFFFE6, 28), (0xFFFFFE7, 28),
    (0xFFFFFE8, 28), (0xFFFFEA, 24), (0x3FFFFFFC, 30), (0xFFFFFE9, 28),
    (0xFFFFFEA, 28), (0x3FFFFFFD, 30), (0xFFFFFEB, 28), (0xFFFFFEC, 28),
    (0xFFFFFED, 28), (0xFFFFFEE, 28), (0xFFFFFEF, 28), (0xFFFFFF0, 28),
    (0xFFFFFF1, 28), (0xFFFFFF2, 28), (0x3FFFFFFE, 30), (0xFFFFFF3, 28),
    (0xFFFFFF4, 28), (0xFFFFFF5, 28), (0xFFFFFF6, 28), (0xFFFFFF7, 28),
    (0xFFFFFF8, 28), (0xFFFFFF9, 28), (0xFFFFFFA, 28), (0xFFFFFFB, 28),
    (0x14, 6), (0x3F8, 10), (0x3F9, 10), (0xFFA, 12),
    (0x1FF9, 13), (0x15, 6), (0xF8, 8), (0x7FA, 11),
    (0x3FA, 10), (0x3FB, 10), (0xF9, 8), (0x7FB, 11),
    (0xFA, 8), (0x16, 6), (0x17, 6), (0x18, 6),
    (0x0, 5), (0x1, 5), (0x2, 5), (0x19, 6),
    (0x1A, 6), (0x1B, 6), (0x1C, 6), (0x1D, 6),
    (0x1E, 6), (0x1F, 6), (0x5C, 7), (0xFB, 8),
    (0x7FFC, 15), (0x20, 6), (0xFFB, 12), (0x3FC, 10),
    (0x1FFA, 13), (0x21, 6), (0x5D, 7), (0x5E, 7),
    (0x5F, 7), (0x60, 7), (0x61, 7), (0x62, 7),
    (0x63, 7), (0x64, 7), (0x65, 7), (0x66, 7),
    (0x67, 7), (0x68, 7), (0x69, 7), (0x6A, 7),
    (0x6B, 7), (0x6C, 7), (0x6D, 7), (0x6E, 7),
    (0x6F, 7), (0x70, 7), (0x71, 7), (0x72, 7),
    (0xFC, 8), (0x73, 7), (0xFD, 8), (0x1FFB, 13),
    (0x7FFF0, 19), (0x1FFC, 13), (0x3FFC, 14), (0x22, 6),
    (0x7FFD, 15), (0x3, 5), (0x23, 6), (0x4, 5),
    (0x24, 6), (0x5, 5), (0x25, 6), (0x26, 6),
    (0x27, 6), (0x6, 5), (0x74, 7), (0x75, 7),
    (0x28, 6), (0x29, 6), (0x2A, 6), (0x7, 5),
    (0x2B, 6), (0x76, 7), (0x2C, 6), (0x8, 5),
    (0x9, 5), (0x2D, 6), (0x77, 7), (0x78, 7),
    (0x79, 7), (0x7A, 7), (0x7B, 7), (0x7FFE, 15),
    (0x7FC, 11), (0x3FFD, 14), (0x1FFD, 13), (0xFFFFFFC, 28),
    (0xFFFE6, 20), (0x3FFFD2, 22), (0xFFFE7, 20), (0xFFFE8, 20),
    (0x3FFFD3, 22), (0x3FFFD4, 22), (0x3FFFD5, 22), (0x7FFFD9, 23),
    (0x3FFFD6, 22), (0x7FFFDA, 23), (0x7FFFDB, 23), (0x7FFFDC, 23),
    (0x7FFFDD, 23), (0x7FFFDE, 23), (0xFFFFEB, 24), (0x7FFFDF, 23),
    (0xFFFFEC, 24), (0xFFFFED, 24), (0x3FFFD7, 22), (0x7FFFE0, 23),
    (0xFFFFEE, 24), (0x7FFFE1, 23), (0x7FFFE2, 23), (0x7FFFE3, 23),
    (0x7FFFE4, 23), (0x1FFFDC, 21), (0x3FFFD8, 22), (0x7FFFE5, 23),
    (0x3FFFD9, 22), (0x7FFFE6, 23), (0x7FFFE7, 23), (0xFFFFEF, 24),
    (0x3FFFDA, 22), (0x1FFFDD, 21), (0xFFFE9, 20), (0x3FFFDB, 22),
    (0x3FFFDC, 22), (0x7FFFE8, 23), (0x7FFFE9, 23), (0x1FFFDE, 21),
    (0x7FFFEA, 23), (0x3FFFDD, 22), (0x3FFFDE, 22), (0xFFFFF0, 24),
    (0x1FFFDF, 21), (0x3FFFDF, 22), (0x7FFFEB, 23), (0x7FFFEC, 23),
    (0x1FFFE0, 21), (0x1FFFE1, 21), (0x3FFFE0, 22), (0x1FFFE2, 21),
    (0x7FFFED, 23), (0x3FFFE1, 22), (0x7FFFEE, 23), (0x7FFFEF, 23),
    (0xFFFEA, 20), (0x3FFFE2, 22), (0x3FFFE3, 22), (0x3FFFE4, 22),
    (0x7FFFF0, 23), (0x3FFFE5, 22), (0x3FFFE6, 22), (0x7FFFF1, 23),
    (0x3FFFFE0, 26), (0x3FFFFE1, 26), (0xFFFEB, 20), (0x7FFF1, 19),
    (0x3FFFE7, 22), (0x7FFFF2, 23), (0x3FFFE8, 22), (0x1FFFFEC, 25),
    (0x3FFFFE2, 26), (0x3FFFFE3, 26), (0x3FFFFE4, 26), (0x7FFFFDE, 27),
    (0x7FFFFDF, 27), (0x3FFFFE5, 26), (0xFFFFF1, 24), (0x1FFFFED, 25),
    (0x7FFF2, 19), (0x1FFFE3, 21), (0x3FFFFE6, 26), (0x7FFFFE0, 27),
    (0x7FFFFE1, 27), (0x3FFFFE7, 26), (0x7FFFFE2, 27), (0xFFFFF2, 24),
    (0x1FFFE4, 21), (0x1FFFE5, 21), (0x3FFFFE8, 26), (0x3FFFFE9, 26),
    (0xFFFFFFD, 28), (0x7FFFFE3, 27), (0x7FFFFE4, 27), (0x7FFFFE5, 27),
    (0xFFFEC, 20), (0xFFFFF3, 24), (0xFFFED, 20), (0x1FFFE6, 21),
    (0x3FFFE9, 22), (0x1FFFE7, 21), (0x1FFFE8, 21), (0x7FFFF3, 23),
    (0x3FFFEA, 22), (0x3FFFEB, 22), (0x1FFFFEE, 25), (0x1FFFFEF, 25),
    (0xFFFFF4, 24), (0xFFFFF5, 24), (0x3FFFFEA, 26), (0x7FFFF4, 23),
    (0x3FFFFEB, 26), (0x7FFFFE6, 27), (0x3FFFFEC, 26), (0x3FFFFED, 26),
    (0x7FFFFE7, 27), (0x7FFFFE8, 27), (0x7FFFFE9, 27), (0x7FFFFEA, 27),
    (0x7FFFFEB, 27), (0xFFFFFFE, 28), (0x7FFFFEC, 27), (0x7FFFFED, 27),
    (0x7FFFFEE, 27), (0x7FFFFEF, 27), (0x7FFFFF0, 27), (0x3FFFFEE, 26),
    (0x3FFFFFFF, 30),
)
# fmt: on

EOS_SYMBOL = 256


def _build_decode_tree() -> dict:
    """Build a binary trie: {0: subtree|symbol, 1: subtree|symbol}."""
    root: dict = {}
    for symbol, (code, length) in enumerate(HUFFMAN_TABLE):
        node = root
        for shift in range(length - 1, -1, -1):
            bit = (code >> shift) & 1
            if shift == 0:
                node[bit] = symbol
            else:
                node = node.setdefault(bit, {})
    return root


def _build_decode_fsm() -> tuple[tuple[tuple[tuple[int, bytes, bool], ...], ...], frozenset[int]]:
    """Flatten the code trie into a nibble-indexed transition table.

    Returns ``(transitions, accepting)``: ``transitions[state][nibble]``
    is ``(next_state, emitted, saw_eos)``, and ``accepting`` holds every
    state that is a legal end-of-input position (root, or a node whose
    root path is all-ones and at most 7 bits — a proper EOS prefix).
    The RFC 7541 code is a full binary tree, so every internal node has
    both children; a missing child here would be a table transcription
    error and fails loudly at import.
    """
    root = _build_decode_tree()
    nodes: list[dict] = [root]
    index: dict[int, int] = {id(root): 0}
    i = 0
    while i < len(nodes):
        for child in nodes[i].values():
            if isinstance(child, dict) and id(child) not in index:
                index[id(child)] = len(nodes)
                nodes.append(child)
        i += 1
    accepting = {0}
    node: dict | int = root
    for _ in range(7):
        node = node[1]
        if not isinstance(node, dict):
            break
        accepting.add(index[id(node)])
    transitions = []
    for node in nodes:
        row = []
        for nibble in range(16):
            cur: dict | int = node
            emitted = bytearray()
            saw_eos = False
            for shift in (3, 2, 1, 0):
                cur = cur[(nibble >> shift) & 1]
                if isinstance(cur, int):
                    if cur == EOS_SYMBOL:
                        saw_eos = True
                        cur = root
                        break
                    emitted.append(cur)
                    cur = root
            row.append((index[id(cur)], bytes(emitted), saw_eos))
        transitions.append(tuple(row))
    return tuple(transitions), frozenset(accepting)


_DECODE_FSM, _ACCEPTING_STATES = _build_decode_fsm()


def huffman_encode(data: bytes) -> bytes:
    """Huffman-encode a byte string per RFC 7541 §5.2.

    Codes are shifted into one big integer accumulator rather than a
    per-symbol bit writer; padding with EOS-prefix ones falls out of the
    final shift.
    """
    table = HUFFMAN_TABLE
    acc = 0
    bits = 0
    for byte in data:
        code, length = table[byte]
        acc = (acc << length) | code
        bits += length
    pad = -bits % 8
    if pad:
        acc = (acc << pad) | ((1 << pad) - 1)
        bits += pad
    return acc.to_bytes(bits // 8, "big")


def huffman_encoded_length(data: bytes) -> int:
    """Return the byte length the Huffman encoding of ``data`` would have.

    Used by the encoder to decide whether Huffman coding actually shrinks a
    literal (it can expand rare-byte-heavy strings).
    """
    bits = sum(HUFFMAN_TABLE[byte][1] for byte in data)
    return (bits + 7) // 8


def huffman_decode(data: bytes) -> bytes:
    """Decode a Huffman-encoded string, validating the EOS padding rules."""
    fsm = _DECODE_FSM
    state = 0
    out = bytearray()
    for byte in data:
        state, emitted, saw_eos = fsm[state][byte >> 4]
        if saw_eos:
            # RFC 7541 §5.2: an actual EOS symbol is a decoding error.
            raise CompressionError("EOS symbol in Huffman-encoded data")
        out += emitted
        state, emitted, saw_eos = fsm[state][byte & 0xF]
        if saw_eos:
            raise CompressionError("EOS symbol in Huffman-encoded data")
        out += emitted
    if state not in _ACCEPTING_STATES:
        # Trailing partial symbol must be a prefix of EOS: <= 7 all-one bits.
        raise CompressionError("invalid Huffman padding")
    return bytes(out)
