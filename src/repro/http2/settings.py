"""HTTP/2 SETTINGS parameters, including the paper's SWW extension.

RFC 9113 §6.5.2 defines six parameters; the paper adds a seventh,
``SETTINGS_GEN_ABILITY`` with identifier 0x07 ("the first unreserved value,
for prototyping purposes") and value 1 to advertise client-side content
generation. Recipients that do not recognise the identifier ignore it, which
is what makes the extension backward compatible: a naive peer simply keeps
speaking vanilla HTTP/2.

The paper notes the 32-bit value field can carry richer capability
descriptions than a boolean (e.g. "upscale-only"); :class:`GenAbility`
implements that negotiation space as a small bitfield codec that callers may
use while staying wire-compatible with the boolean prototype (value 1 ==
full generation support, value 0 / absent == no support).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.http2.errors import ErrorCode, ProtocolError


class Setting(enum.IntEnum):
    """Registered SETTINGS identifiers plus the SWW extension."""

    HEADER_TABLE_SIZE = 0x1
    ENABLE_PUSH = 0x2
    MAX_CONCURRENT_STREAMS = 0x3
    INITIAL_WINDOW_SIZE = 0x4
    MAX_FRAME_SIZE = 0x5
    MAX_HEADER_LIST_SIZE = 0x6
    #: SWW extension (paper §3): sender implements client-side generation.
    GEN_ABILITY = 0x7


#: Convenience alias mirroring the paper's name for the parameter.
SETTINGS_GEN_ABILITY = Setting.GEN_ABILITY

DEFAULT_SETTINGS: dict[int, int] = {
    Setting.HEADER_TABLE_SIZE: 4096,
    Setting.ENABLE_PUSH: 1,
    Setting.MAX_CONCURRENT_STREAMS: 2**31 - 1,  # "unlimited" by default
    Setting.INITIAL_WINDOW_SIZE: 65_535,
    Setting.MAX_FRAME_SIZE: 16_384,
    Setting.MAX_HEADER_LIST_SIZE: 2**31 - 1,
    Setting.GEN_ABILITY: 0,
}

MAX_WINDOW = 2**31 - 1
MAX_FRAME_SIZE_CEILING = 2**24 - 1


def validate_setting(identifier: int, value: int) -> None:
    """Enforce the per-parameter value constraints of RFC 9113 §6.5.2."""
    if identifier == Setting.ENABLE_PUSH and value not in (0, 1):
        raise ProtocolError(f"ENABLE_PUSH must be 0 or 1, got {value}")
    if identifier == Setting.INITIAL_WINDOW_SIZE and value > MAX_WINDOW:
        raise ProtocolError(
            f"INITIAL_WINDOW_SIZE {value} exceeds 2^31-1",
            ErrorCode.FLOW_CONTROL_ERROR,
        )
    if identifier == Setting.MAX_FRAME_SIZE and not 16_384 <= value <= MAX_FRAME_SIZE_CEILING:
        raise ProtocolError(f"MAX_FRAME_SIZE {value} outside [2^14, 2^24-1]")


class Settings:
    """The settings a peer has advertised (one instance per direction).

    Each endpoint stores the latest settings received from its peer and uses
    them to structure messages on *all* streams (RFC 9113 §6.5). Unknown
    identifiers are stored but otherwise ignored, matching §6.5.2.
    """

    def __init__(self, initial: dict[int, int] | None = None) -> None:
        self._values = dict(DEFAULT_SETTINGS)
        if initial:
            self.update(initial)

    def update(self, changes: dict[int, int]) -> dict[int, int]:
        """Apply a received SETTINGS payload; returns the applied changes."""
        applied: dict[int, int] = {}
        for identifier, value in changes.items():
            validate_setting(identifier, value)
            self._values[identifier] = value
            applied[identifier] = value
        return applied

    def __getitem__(self, identifier: int) -> int:
        return self._values.get(identifier, 0)

    def get(self, identifier: int, default: int = 0) -> int:
        return self._values.get(identifier, default)

    def as_dict(self) -> dict[int, int]:
        return dict(self._values)

    @property
    def header_table_size(self) -> int:
        return self._values[Setting.HEADER_TABLE_SIZE]

    @property
    def initial_window_size(self) -> int:
        return self._values[Setting.INITIAL_WINDOW_SIZE]

    @property
    def max_frame_size(self) -> int:
        return self._values[Setting.MAX_FRAME_SIZE]

    @property
    def max_concurrent_streams(self) -> int:
        return self._values[Setting.MAX_CONCURRENT_STREAMS]

    @property
    def enable_push(self) -> bool:
        return bool(self._values[Setting.ENABLE_PUSH])

    @property
    def gen_ability(self) -> bool:
        """True when the peer advertised SWW generation support."""
        return bool(self._values.get(Setting.GEN_ABILITY, 0))


class GenCapability(enum.IntFlag):
    """Bit layout for a richer GEN_ABILITY value (paper §3, last paragraph).

    Bit 0 is kept as the prototype's boolean so that value ``1`` still means
    "full client-side generation". Higher bits refine the claim; a receiver
    that only understands the boolean sees bit 0 and behaves correctly.
    """

    NONE = 0
    GENERATE = 1 << 0  # full prompt-to-content generation
    UPSCALE_ONLY = 1 << 1  # §2.2: content upscaling without generation
    TEXT = 1 << 2  # text-to-text expansion supported
    IMAGE = 1 << 3  # text-to-image supported
    VIDEO_FRAMERATE = 1 << 4  # §3.2: client-side frame-rate boosting
    VIDEO_RESOLUTION = 1 << 5  # §3.2: client-side resolution upscaling


@dataclass(frozen=True)
class GenAbility:
    """Decoded view of a peer's GEN_ABILITY setting value."""

    value: int

    @classmethod
    def full(cls) -> "GenAbility":
        """The prototype's advertisement: plain value 1."""
        return cls(int(GenCapability.GENERATE | GenCapability.TEXT | GenCapability.IMAGE))

    @classmethod
    def boolean(cls, supported: bool) -> "GenAbility":
        return cls(1 if supported else 0)

    @property
    def supported(self) -> bool:
        return bool(self.value & GenCapability.GENERATE)

    @property
    def upscale_only(self) -> bool:
        return bool(self.value & GenCapability.UPSCALE_ONLY) and not self.supported

    def capabilities(self) -> GenCapability:
        return GenCapability(self.value & int(max(GenCapability) * 2 - 1))

    def supports(self, capability: GenCapability) -> bool:
        if capability == GenCapability.NONE:
            return True
        # Value 1 (bare boolean) implies full generation of text and images,
        # matching the prototype's interpretation.
        if self.value == 1 and capability in (GenCapability.TEXT, GenCapability.IMAGE, GenCapability.GENERATE):
            return True
        return bool(self.value & capability)
