"""Transports for the sans-io HTTP/2 engine.

Two flavours:

* :class:`InMemoryTransportPair` — a zero-copy duplex pipe for tests and
  benchmarks. Deterministic, no event loop required: calling ``pump()``
  shuttles pending bytes between the two endpoints until quiescent.
* :func:`open_tcp_pair` / :class:`AsyncH2Transport` — asyncio TCP, used by
  the generative server/client in :mod:`repro.sww` to demonstrate the full
  stack over a real socket.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.http2.connection import Event, H2Connection


@dataclass
class Endpoint:
    """One side of an in-memory connection: engine plus its event log."""

    conn: H2Connection
    events: list[Event] = field(default_factory=list)

    def take_events(self, event_type: type | None = None) -> list[Event]:
        """Remove and return buffered events (optionally filtered by type)."""
        if event_type is None:
            out, self.events = self.events, []
            return out
        out = [e for e in self.events if isinstance(e, event_type)]
        self.events = [e for e in self.events if not isinstance(e, event_type)]
        return out


class InMemoryTransportPair:
    """Connects two H2Connection engines through in-memory byte queues."""

    def __init__(self, client: H2Connection, server: H2Connection) -> None:
        self.client = Endpoint(client)
        self.server = Endpoint(server)

    def pump(self, max_rounds: int = 100) -> None:
        """Shuttle bytes both ways until neither side has output pending.

        ``max_rounds`` bounds pathological ping-pong (e.g. a bug that makes
        both sides ACK each other forever).
        """
        rounds = 0
        try:
            for _ in range(max_rounds):
                moved = False
                out = self.client.conn.data_to_send()
                if out:
                    self.server.events.extend(self.server.conn.receive_data(out))
                    moved = True
                back = self.server.conn.data_to_send()
                if back:
                    self.client.events.extend(self.client.conn.receive_data(back))
                    moved = True
                if not moved:
                    return
                rounds += 1
            raise RuntimeError("transport did not quiesce; possible ACK loop")
        finally:
            registry = getattr(self.client.conn, "registry", None)
            if registry is not None and registry.enabled and rounds:
                registry.counter(
                    "http2_transport_pump_rounds_total",
                    "In-memory transport shuttle rounds",
                    layer="http2",
                    operation="pump",
                ).inc(rounds)

    def handshake(self) -> None:
        """Run both endpoints' connection setup and settle the exchange."""
        self.client.conn.initiate_connection()
        self.server.conn.initiate_connection()
        self.pump()


class AsyncH2Transport:
    """Binds an H2Connection to an asyncio stream pair.

    The transport owns the read loop: :meth:`run` reads from the socket,
    feeds the engine and dispatches events to the ``handler`` coroutine
    (one call per event). Writers call engine methods then :meth:`flush`.

    For concurrent response streaming the transport also carries a
    writer-wakeup signal: producers (stream tasks enqueueing bodies, the
    read loop surfacing WINDOW_UPDATE credit) call :meth:`wake_writer`,
    and a dedicated writer task parks in :meth:`wait_writable` between
    scheduling rounds. Socket backpressure is the asyncio native kind —
    :meth:`flush` awaits ``drain()``, so a slow peer suspends the writer
    task instead of ballooning the outbound buffer.
    """

    def __init__(
        self,
        conn: H2Connection,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.conn = conn
        self.reader = reader
        self.writer = writer
        self.closed = asyncio.Event()
        self._write_wakeup = asyncio.Event()

    def wake_writer(self) -> None:
        """Signal the writer task that there may be work (new body bytes
        queued, or fresh flow-control credit)."""
        self._write_wakeup.set()

    async def wait_writable(self) -> None:
        """Park until the next :meth:`wake_writer` (level-triggered: a wake
        that arrives mid-pump is not lost, the next wait returns at once)."""
        await self._write_wakeup.wait()
        self._write_wakeup.clear()

    async def flush(self) -> None:
        data = self.conn.data_to_send()
        if data:
            registry = self.conn.registry
            if registry.enabled:
                registry.counter(
                    "http2_transport_io_total",
                    "Socket-level writes/reads performed by the async transport",
                    layer="http2",
                    operation="write",
                ).inc()
            self.writer.write(data)
            await self.writer.drain()

    async def run(self, handler, close_on_exit: bool = True) -> None:
        """Read loop: feed bytes to the engine, dispatch events to handler.

        With ``close_on_exit=False`` the socket is left open when the peer
        half-closes or the loop stops, so the owner can drain in-flight
        responses first and call :meth:`close` itself.
        """
        registry = self.conn.registry
        try:
            while not self.closed.is_set():
                data = await self.reader.read(65536)
                if not data:
                    break
                if registry.enabled:
                    registry.counter(
                        "http2_transport_io_total",
                        "Socket-level writes/reads performed by the async transport",
                        layer="http2",
                        operation="read",
                    ).inc()
                for event in self.conn.receive_data(data):
                    await handler(event)
                await self.flush()
        finally:
            self.wake_writer()  # unblock a parked writer task so it can exit
            if close_on_exit:
                self.closed.set()
                self.writer.close()
                try:
                    await self.writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def close(self) -> None:
        self.closed.set()
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def open_tcp_pair(host: str, port: int, conn: H2Connection) -> AsyncH2Transport:
    """Dial a TCP connection and wrap it with the given engine."""
    reader, writer = await asyncio.open_connection(host, port)
    transport = AsyncH2Transport(conn, reader, writer)
    conn.initiate_connection()
    await transport.flush()
    return transport
