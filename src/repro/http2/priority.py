"""RFC 9218 Extensible Priorities for HTTP.

The scheme replaces RFC 7540 §5.3's dependency tree (deprecated by
RFC 9113 §5.3.1) with two parameters carried as a Structured Fields
dictionary (RFC 8941):

* ``urgency`` (``u``) — an integer between 0 (most urgent) and 7 (least),
  default 3;
* ``incremental`` (``i``) — a boolean; an incremental response is useful
  as it arrives and may be interleaved with others of equal urgency,
  while a non-incremental one should be sent to completion.

Endpoints signal priorities two ways, both implemented here and in
:mod:`repro.http2.connection`:

* the ``priority`` request header field (end-to-end, set at request time);
* the ``PRIORITY_UPDATE`` frame (hop-by-hop, reprioritises a stream
  mid-response) — see :class:`repro.http2.frames.PriorityUpdateFrame`.

The legacy RFC 7540 weight scheme (1–256, bigger = more important) is
mapped onto the urgency scale logarithmically so that the default weight
16 lands on the default urgency 3 and the extremes meet (weight 256 →
urgency 0, weight 1 → urgency 7); see :func:`urgency_from_weight`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: RFC 9218 §4.1: urgency is an integer in [0, 7]; 3 when absent.
URGENCY_LEVELS = 8
DEFAULT_URGENCY = 3
HIGHEST_URGENCY = 0
LOWEST_URGENCY = URGENCY_LEVELS - 1

#: The request header field name (lowercase, as HPACK carries it).
PRIORITY_HEADER = b"priority"


def clamp_urgency(value: int) -> int:
    return max(HIGHEST_URGENCY, min(LOWEST_URGENCY, int(value)))


@dataclass(frozen=True)
class Priority:
    """One stream's RFC 9218 priority parameters."""

    urgency: int = DEFAULT_URGENCY
    incremental: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "urgency", clamp_urgency(self.urgency))

    def serialize(self) -> bytes:
        """Render the Structured Fields dictionary (``u=N`` / ``u=N, i``).

        Default-valued parameters are omitted, per RFC 9218 §4: an empty
        field value carries the defaults.
        """
        parts = []
        if self.urgency != DEFAULT_URGENCY:
            parts.append(f"u={self.urgency}")
        if self.incremental:
            parts.append("i")
        return ", ".join(parts).encode("ascii")


def parse_priority_field(value: bytes | str | None) -> Priority:
    """Parse a ``priority`` header / PRIORITY_UPDATE field value.

    Implements the subset of RFC 8941 dictionary parsing the priority
    field uses: comma-separated ``key`` or ``key=value`` members. Unknown
    keys are ignored (§4); malformed members fall back to the defaults
    rather than failing the request (robustness per RFC 9218 §5: "failure
    to parse SHOULD be treated as if the field were absent").
    """
    if not value:
        return Priority()
    if isinstance(value, (bytes, bytearray, memoryview)):
        text = bytes(value).decode("ascii", "replace")
    else:
        text = value
    urgency = DEFAULT_URGENCY
    incremental = False
    for member in text.split(","):
        member = member.strip()
        if not member:
            continue
        key, _, raw = member.partition("=")
        key = key.strip()
        raw = raw.strip()
        if key == "u":
            try:
                urgency = clamp_urgency(int(raw))
            except ValueError:
                urgency = DEFAULT_URGENCY
        elif key == "i":
            # A bare ``i`` means true (RFC 8941 boolean); ``i=?0`` false.
            incremental = raw in ("", "?1", "1")
    return Priority(urgency=urgency, incremental=incremental)


def urgency_from_weight(weight: int) -> int:
    """Approximate a legacy RFC 7540 weight (1–256) as an urgency.

    Logarithmic so that the perceptually even weight doublings map to
    even urgency steps: weight 256 → 0, 16 → 3, 1 → 7. Out-of-range
    weights are clamped first.
    """
    weight = max(1, min(256, int(weight)))
    # log2 spans [0, 8]; scale onto the 7-step urgency ladder, inverted
    # (bigger weight = more important = smaller urgency).
    return clamp_urgency(7 - round(math.log2(weight) * 7 / 8))
