"""A frame-level wire tracer for HTTP/2 byte streams.

Feed it raw connection bytes (either direction) and it renders a readable
frame log — the tool you want when a negotiation test fails and you need
to see exactly which SETTINGS crossed the wire. Used by tests and handy
in a REPL:

    >>> from repro.http2.debug import trace_wire
    >>> print(trace_wire(client_bytes, label="client->server"))
    client->server  SETTINGS            stream=0  len=24   HEADER_TABLE_SIZE=4096 ... GEN_ABILITY=1
    client->server  WINDOW_UPDATE       stream=0  len=4    increment=16711681
    ...
"""

from __future__ import annotations

from repro.http2.connection import CONNECTION_PREFACE
from repro.http2.frames import (
    ContinuationFrame,
    DataFrame,
    Frame,
    GoAwayFrame,
    HeadersFrame,
    PingFrame,
    PriorityFrame,
    PriorityUpdateFrame,
    PushPromiseFrame,
    RstStreamFrame,
    SettingsFrame,
    WindowUpdateFrame,
    parse_frames,
)
from repro.http2.settings import Setting

_SETTING_NAMES = {int(s): s.name for s in Setting}


def _describe_settings(frame: SettingsFrame) -> str:
    if frame.ack:
        return "ACK"
    parts = []
    for identifier, value in sorted(frame.settings.items()):
        name = _SETTING_NAMES.get(identifier, f"0x{identifier:04x}")
        parts.append(f"{name}={value}")
    return " ".join(parts) if parts else "(empty)"


def describe_frame(frame: Frame) -> str:
    """One-line human description of a frame."""
    if isinstance(frame, SettingsFrame):
        kind, detail = "SETTINGS", _describe_settings(frame)
    elif isinstance(frame, DataFrame):
        flags = " END_STREAM" if frame.end_stream else ""
        preview = frame.data[:24]
        kind, detail = "DATA", f"{len(frame.data)} bytes{flags} {preview!r}"
    elif isinstance(frame, HeadersFrame):
        flags = []
        if frame.end_stream:
            flags.append("END_STREAM")
        if frame.end_headers:
            flags.append("END_HEADERS")
        kind, detail = "HEADERS", f"block={len(frame.header_block)}B {' '.join(flags)}"
    elif isinstance(frame, ContinuationFrame):
        flags = " END_HEADERS" if frame.end_headers else ""
        kind, detail = "CONTINUATION", f"block={len(frame.header_block)}B{flags}"
    elif isinstance(frame, WindowUpdateFrame):
        kind, detail = "WINDOW_UPDATE", f"increment={frame.increment}"
    elif isinstance(frame, PingFrame):
        kind, detail = "PING", ("ACK " if frame.ack else "") + frame.data.hex()
    elif isinstance(frame, RstStreamFrame):
        kind, detail = "RST_STREAM", frame.error_code.name
    elif isinstance(frame, GoAwayFrame):
        kind, detail = "GOAWAY", f"last={frame.last_stream_id} {frame.error_code.name} {frame.debug_data!r}"
    elif isinstance(frame, PushPromiseFrame):
        flags = " END_HEADERS" if frame.end_headers else ""
        kind, detail = (
            "PUSH_PROMISE",
            f"promised={frame.promised_stream_id} block={len(frame.header_block)}B{flags}",
        )
    elif isinstance(frame, PriorityFrame):
        from repro.http2.priority import urgency_from_weight

        kind, detail = "PRIORITY", (
            f"dep={frame.dependency} weight={frame.weight}"
            f" (~u={urgency_from_weight(frame.weight)})"
        )
    elif isinstance(frame, PriorityUpdateFrame):
        kind, detail = (
            "PRIORITY_UPDATE",
            f"prioritized={frame.prioritized_stream_id} {frame.field_value.decode('ascii', 'replace') or '(defaults)'}",
        )
    else:
        kind, detail = type(frame).__name__, ""
    return f"{kind:<14} stream={frame.stream_id:<4} {detail}"


def trace_wire(data: bytes, label: str = "", decode_headers: bool = False) -> str:
    """Render a byte stream as a frame log.

    ``decode_headers=True`` additionally decodes HPACK blocks with a fresh
    decoder — only valid for the *first* header block of a connection
    (HPACK is stateful); later blocks print raw sizes.
    """
    lines: list[str] = []
    prefix = f"{label}  " if label else ""
    if data.startswith(CONNECTION_PREFACE):
        lines.append(f"{prefix}PREFACE        {CONNECTION_PREFACE!r}")
        data = data[len(CONNECTION_PREFACE) :]
    try:
        frames, rest = parse_frames(data)
    except Exception as exc:  # noqa: BLE001 — tracing must never raise
        lines.append(f"{prefix}UNPARSEABLE    {len(data)} bytes ({type(exc).__name__}: {exc})")
        return "\n".join(lines)
    decoder = None
    if decode_headers:
        from repro.http2.hpack import HpackDecoder

        decoder = HpackDecoder()
    for frame in frames:
        lines.append(prefix + describe_frame(frame))
        if decoder is not None and isinstance(frame, HeadersFrame):
            try:
                headers = decoder.decode(frame.header_block)
                for name, value in headers:
                    lines.append(f"{prefix}    {name.decode()}: {value.decode('utf-8', 'replace')}")
            except Exception:  # noqa: BLE001 — tracing must never raise
                lines.append(f"{prefix}    <undecodable header block>")
            decoder = None  # stateful: only the first block is safe
    if rest:
        lines.append(f"{prefix}TRAILING       {len(rest)} undecoded bytes")
    return "\n".join(lines)


def frame_census(data: bytes) -> dict[str, int]:
    """Count frames by type name in a byte stream (preface tolerated)."""
    if data.startswith(CONNECTION_PREFACE):
        data = data[len(CONNECTION_PREFACE) :]
    frames, _rest = parse_frames(data)
    census: dict[str, int] = {}
    for frame in frames:
        name = type(frame).__name__.replace("Frame", "").upper()
        census[name] = census.get(name, 0) + 1
    return census
