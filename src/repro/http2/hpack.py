"""HPACK header compression (RFC 7541).

Implements primitive integer coding (§5.1), string literals with optional
Huffman coding (§5.2), the full static table (Appendix A), an evicting
dynamic table (§2.3.2, §4), and all six binary representations (§6):
indexed, literal with incremental indexing, literal without indexing,
literal never-indexed, and dynamic table size update.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.http2.errors import CompressionError
from repro.http2.huffman import huffman_decode, huffman_encode, huffman_encoded_length

#: RFC 7541 Appendix A static table, 1-indexed.
STATIC_TABLE: tuple[tuple[bytes, bytes], ...] = (
    (b":authority", b""),
    (b":method", b"GET"),
    (b":method", b"POST"),
    (b":path", b"/"),
    (b":path", b"/index.html"),
    (b":scheme", b"http"),
    (b":scheme", b"https"),
    (b":status", b"200"),
    (b":status", b"204"),
    (b":status", b"206"),
    (b":status", b"304"),
    (b":status", b"400"),
    (b":status", b"404"),
    (b":status", b"500"),
    (b"accept-charset", b""),
    (b"accept-encoding", b"gzip, deflate"),
    (b"accept-language", b""),
    (b"accept-ranges", b""),
    (b"accept", b""),
    (b"access-control-allow-origin", b""),
    (b"age", b""),
    (b"allow", b""),
    (b"authorization", b""),
    (b"cache-control", b""),
    (b"content-disposition", b""),
    (b"content-encoding", b""),
    (b"content-language", b""),
    (b"content-length", b""),
    (b"content-location", b""),
    (b"content-range", b""),
    (b"content-type", b""),
    (b"cookie", b""),
    (b"date", b""),
    (b"etag", b""),
    (b"expect", b""),
    (b"expires", b""),
    (b"from", b""),
    (b"host", b""),
    (b"if-match", b""),
    (b"if-modified-since", b""),
    (b"if-none-match", b""),
    (b"if-range", b""),
    (b"if-unmodified-since", b""),
    (b"last-modified", b""),
    (b"link", b""),
    (b"location", b""),
    (b"max-forwards", b""),
    (b"proxy-authenticate", b""),
    (b"proxy-authorization", b""),
    (b"range", b""),
    (b"referer", b""),
    (b"refresh", b""),
    (b"retry-after", b""),
    (b"server", b""),
    (b"set-cookie", b""),
    (b"strict-transport-security", b""),
    (b"transfer-encoding", b""),
    (b"user-agent", b""),
    (b"vary", b""),
    (b"via", b""),
    (b"www-authenticate", b""),
)

_STATIC_FULL_INDEX = {entry: i + 1 for i, entry in enumerate(STATIC_TABLE)}
_STATIC_NAME_INDEX: dict[bytes, int] = {}
for _i, (_name, _value) in enumerate(STATIC_TABLE):
    _STATIC_NAME_INDEX.setdefault(_name, _i + 1)

#: Per-entry accounting overhead (RFC 7541 §4.1).
ENTRY_OVERHEAD = 32

DEFAULT_TABLE_SIZE = 4096


def encode_integer(value: int, prefix_bits: int, flags: int = 0) -> bytes:
    """Encode an integer with an N-bit prefix (RFC 7541 §5.1).

    ``flags`` holds the representation's pattern bits, already shifted into
    the high bits of the first octet.
    """
    if value < 0:
        raise ValueError("HPACK integers are unsigned")
    limit = (1 << prefix_bits) - 1
    if value < limit:
        return bytes([flags | value])
    out = bytearray([flags | limit])
    value -= limit
    while value >= 128:
        out.append((value % 128) | 0x80)
        value //= 128
    out.append(value)
    return bytes(out)


def decode_integer(data: bytes, offset: int, prefix_bits: int) -> tuple[int, int]:
    """Decode an N-bit-prefix integer; returns (value, new_offset)."""
    if offset >= len(data):
        raise CompressionError("truncated integer")
    limit = (1 << prefix_bits) - 1
    value = data[offset] & limit
    offset += 1
    if value < limit:
        return value, offset
    shift = 0
    while True:
        if offset >= len(data):
            raise CompressionError("truncated varint continuation")
        byte = data[offset]
        offset += 1
        value += (byte & 0x7F) << shift
        shift += 7
        if shift > 62:
            raise CompressionError("HPACK integer too large")
        if not byte & 0x80:
            return value, offset


def encode_string(data: bytes, huffman: bool = True) -> bytes:
    """Encode a string literal, using Huffman only when it shrinks."""
    if huffman and huffman_encoded_length(data) < len(data):
        encoded = huffman_encode(data)
        return encode_integer(len(encoded), 7, 0x80) + encoded
    return encode_integer(len(data), 7, 0x00) + data


def decode_string(data: bytes, offset: int) -> tuple[bytes, int]:
    """Decode a string literal; returns (value, new_offset)."""
    if offset >= len(data):
        raise CompressionError("truncated string header")
    is_huffman = bool(data[offset] & 0x80)
    length, offset = decode_integer(data, offset, 7)
    if offset + length > len(data):
        raise CompressionError("truncated string body")
    raw = data[offset : offset + length]
    offset += length
    if is_huffman:
        raw = huffman_decode(raw)
    return raw, offset


@dataclass
class DynamicTable:
    """The HPACK dynamic table with size-based eviction (RFC 7541 §4).

    ``find`` is on the encoder's per-header hot path, so exact and
    name-only matches are answered from dicts instead of scanning
    ``_entries``: every stored entry carries a monotonically increasing
    sequence number, ``_by_pair``/``_by_name`` remember the highest
    (most recent) sequence for each pair/name, and a relative index is
    recovered as ``newest_seq - seq``. Evictions pop the lowest live
    sequence, so a dict slot is deleted only when it still points at the
    evicted entry (a newer duplicate keeps the slot alive).
    """

    max_size: int = DEFAULT_TABLE_SIZE
    _entries: list[tuple[bytes, bytes]] = field(default_factory=list)
    _size: int = 0
    #: Lifetime count of evicted entries (read by the obs layer).
    evictions: int = 0
    #: Sequence number the next stored entry will receive.
    _next_seq: int = 0
    _by_pair: dict = field(default_factory=dict)
    _by_name: dict = field(default_factory=dict)

    @staticmethod
    def entry_size(name: bytes, value: bytes) -> int:
        return len(name) + len(value) + ENTRY_OVERHEAD

    @property
    def size(self) -> int:
        return self._size

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, name: bytes, value: bytes) -> None:
        """Insert at the head, evicting from the tail as needed."""
        needed = self.entry_size(name, value)
        self._evict_to(self.max_size - needed)
        if needed <= self.max_size:
            self._entries.insert(0, (name, value))
            self._size += needed
            self._by_pair[name, value] = self._next_seq
            self._by_name[name] = self._next_seq
            self._next_seq += 1
        # An entry larger than the table empties it (already done) and is
        # simply not stored (RFC 7541 §4.4).

    def resize(self, new_max: int) -> None:
        self.max_size = new_max
        self._evict_to(new_max)

    def _evict_to(self, budget: int) -> None:
        while self._entries and self._size > max(budget, 0):
            evicted_seq = self._next_seq - len(self._entries)
            name, value = self._entries.pop()
            self._size -= self.entry_size(name, value)
            self.evictions += 1
            if self._by_pair.get((name, value)) == evicted_seq:
                del self._by_pair[name, value]
            if self._by_name.get(name) == evicted_seq:
                del self._by_name[name]

    def lookup(self, relative_index: int) -> tuple[bytes, bytes]:
        """0-based index into the dynamic table (0 = most recent)."""
        try:
            return self._entries[relative_index]
        except IndexError:
            raise CompressionError(f"dynamic table index {relative_index} out of range") from None

    def find(self, name: bytes, value: bytes) -> tuple[int | None, int | None]:
        """Return (full_match_index, name_match_index), both 0-based.

        Each index is the *most recent* (smallest) match, exactly what a
        head-to-tail scan of ``_entries`` would return.
        """
        newest = self._next_seq - 1
        pair_seq = self._by_pair.get((name, value))
        name_seq = self._by_name.get(name)
        full = newest - pair_seq if pair_seq is not None else None
        name_match = newest - name_seq if name_seq is not None else None
        return full, name_match


class HpackEncoder:
    """Stateful HPACK encoder.

    ``use_huffman`` and ``use_indexing`` exist so the A1 ablation benchmark
    can quantify what each compression mechanism contributes to the
    SETTINGS/headers overhead of the SWW handshake.

    Repeated header sets are answered from an **encoded-block cache**: a
    server sends the same response header tuple for every page it serves,
    and in HPACK steady state (all entries resident in the dynamic table)
    re-encoding such a set neither reads anything the table could change
    nor mutates the table. The cache key is therefore the header tuple
    *plus a fingerprint of the table state* — a cached block is replayed
    only when the table is in exactly the state it was in when the block
    was produced, and a block is only stored when encoding it left the
    table untouched. Both conditions together make replay byte-identical
    to re-encoding by construction (pinned by the differential tests in
    ``tests/http2/test_hpack.py``). Encodes that mutate the table (first
    sightings, evictions) and blocks carrying a pending table-size update
    bypass the cache entirely.
    """

    #: Header names that must never enter a compression context.
    NEVER_INDEXED = frozenset({b"authorization", b"cookie", b"set-cookie"})

    #: Encoded-block cache capacity; a distinct-header-set churn beyond
    #: this simply clears the cache (steady-state servers use a handful).
    BLOCK_CACHE_LIMIT = 256

    def __init__(
        self,
        max_table_size: int = DEFAULT_TABLE_SIZE,
        use_huffman: bool = True,
        use_indexing: bool = True,
        cache_blocks: bool = True,
    ) -> None:
        self.table = DynamicTable(max_table_size)
        self.use_huffman = use_huffman
        self.use_indexing = use_indexing
        self._pending_resize: int | None = None
        self.cache_blocks = cache_blocks
        self._block_cache: dict[tuple, bytes] = {}
        self.block_cache_hits = 0
        self.block_cache_misses = 0

    def set_max_table_size(self, size: int) -> None:
        """Schedule a dynamic table size update (emitted in the next block)."""
        self.table.resize(size)
        self._pending_resize = size
        self._block_cache.clear()

    def _table_fingerprint(self) -> tuple[int, int, int]:
        """Identity of the dynamic-table state a cached block depends on."""
        table = self.table
        return (table._next_seq, table.evictions, table.max_size)

    def encode(self, headers: list[tuple[bytes, bytes]]) -> bytes:
        """Encode a header list into an HPACK header block fragment."""
        cache_key = None
        if self.cache_blocks and self._pending_resize is None:
            cache_key = (self._table_fingerprint(), tuple(headers))
            cached = self._block_cache.get(cache_key)
            if cached is not None:
                self.block_cache_hits += 1
                return cached
            self.block_cache_misses += 1
        out = bytearray()
        if self._pending_resize is not None:
            out += encode_integer(self._pending_resize, 5, 0x20)
            self._pending_resize = None
        for name, value in headers:
            name = bytes(name).lower()
            value = bytes(value)
            out += self._encode_one(name, value)
        block = bytes(out)
        if cache_key is not None and self._table_fingerprint() == cache_key[0]:
            # Encoding was a pure read of the table: replaying the block
            # later (from this same state) is indistinguishable from
            # re-encoding, on the wire and in the decoder.
            if len(self._block_cache) >= self.BLOCK_CACHE_LIMIT:
                self._block_cache.clear()
            self._block_cache[cache_key] = block
        return block

    def _encode_one(self, name: bytes, value: bytes) -> bytes:
        if name in self.NEVER_INDEXED:
            return self._literal(name, value, pattern=0x10, prefix=4, index_name=False)
        static_full = _STATIC_FULL_INDEX.get((name, value))
        if static_full is not None:
            return encode_integer(static_full, 7, 0x80)
        dyn_full, dyn_name = self.table.find(name, value)
        if dyn_full is not None:
            return encode_integer(len(STATIC_TABLE) + 1 + dyn_full, 7, 0x80)
        if not self.use_indexing:
            return self._literal(name, value, pattern=0x00, prefix=4, index_name=True)
        name_index = _STATIC_NAME_INDEX.get(name)
        if name_index is None and dyn_name is not None:
            name_index = len(STATIC_TABLE) + 1 + dyn_name
        self.table.add(name, value)
        out = bytearray()
        if name_index is not None:
            out += encode_integer(name_index, 6, 0x40)
        else:
            out += encode_integer(0, 6, 0x40)
            out += encode_string(name, self.use_huffman)
        out += encode_string(value, self.use_huffman)
        return bytes(out)

    def _literal(self, name: bytes, value: bytes, pattern: int, prefix: int, index_name: bool) -> bytes:
        out = bytearray()
        name_index = _STATIC_NAME_INDEX.get(name) if index_name else None
        if name_index is None:
            dyn_full, dyn_name = self.table.find(name, value) if index_name else (None, None)
            if dyn_name is not None:
                name_index = len(STATIC_TABLE) + 1 + dyn_name
        if name_index is not None:
            out += encode_integer(name_index, prefix, pattern)
        else:
            out += encode_integer(0, prefix, pattern)
            out += encode_string(name, self.use_huffman)
        out += encode_string(value, self.use_huffman)
        return bytes(out)


class HpackDecoder:
    """Stateful HPACK decoder."""

    def __init__(self, max_table_size: int = DEFAULT_TABLE_SIZE) -> None:
        self.table = DynamicTable(max_table_size)
        #: Upper bound the decoder allows via size updates (SETTINGS value).
        self.max_allowed_table_size = max_table_size

    def decode(self, data: bytes) -> list[tuple[bytes, bytes]]:
        """Decode a header block fragment into a header list."""
        headers: list[tuple[bytes, bytes]] = []
        offset = 0
        seen_header = False
        while offset < len(data):
            byte = data[offset]
            if byte & 0x80:  # indexed header field
                index, offset = decode_integer(data, offset, 7)
                headers.append(self._lookup(index))
                seen_header = True
            elif byte & 0x40:  # literal with incremental indexing
                name, value, offset = self._read_literal(data, offset, prefix=6)
                self.table.add(name, value)
                headers.append((name, value))
                seen_header = True
            elif byte & 0x20:  # dynamic table size update
                if seen_header:
                    raise CompressionError("table size update after header fields")
                new_size, offset = decode_integer(data, offset, 5)
                if new_size > self.max_allowed_table_size:
                    raise CompressionError("table size update exceeds SETTINGS bound")
                self.table.resize(new_size)
            else:  # literal without indexing (0x00) or never indexed (0x10)
                name, value, offset = self._read_literal(data, offset, prefix=4)
                headers.append((name, value))
                seen_header = True
        return headers

    def _lookup(self, index: int) -> tuple[bytes, bytes]:
        if index == 0:
            raise CompressionError("HPACK index 0 is invalid")
        if index <= len(STATIC_TABLE):
            return STATIC_TABLE[index - 1]
        return self.table.lookup(index - len(STATIC_TABLE) - 1)

    def _read_literal(self, data: bytes, offset: int, prefix: int) -> tuple[bytes, bytes, int]:
        name_index, offset = decode_integer(data, offset, prefix)
        if name_index:
            name = self._lookup(name_index)[0]
        else:
            name, offset = decode_string(data, offset)
        value, offset = decode_string(data, offset)
        return name, value, offset
