"""A from-scratch HTTP/2 (RFC 9113) implementation.

This subpackage is the transport substrate for the SWW prototype. The paper
modifies HTTP/2's SETTINGS exchange to advertise generative capability
(``SETTINGS_GEN_ABILITY``, identifier 0x07); to make that modification a
first-class, testable artifact we implement the surrounding protocol
ourselves rather than depending on the ``h2`` package:

* frame codec for all ten RFC 9113 frame types (:mod:`repro.http2.frames`),
* HPACK header compression with static & dynamic tables and the RFC 7541
  Huffman code (:mod:`repro.http2.hpack`, :mod:`repro.http2.huffman`),
* stream state machine (:mod:`repro.http2.streams`),
* connection & stream flow control (:mod:`repro.http2.flow_control`),
* a sans-io connection engine usable for both client and server roles
  (:mod:`repro.http2.connection`), and
* asyncio TCP / in-memory transports (:mod:`repro.http2.transport`).
"""

from repro.http2.errors import ErrorCode, H2Error, ProtocolError, FrameError
from repro.http2.frames import (
    Frame,
    DataFrame,
    HeadersFrame,
    PriorityFrame,
    RstStreamFrame,
    SettingsFrame,
    PushPromiseFrame,
    PingFrame,
    GoAwayFrame,
    WindowUpdateFrame,
    ContinuationFrame,
    parse_frames,
)
from repro.http2.settings import Setting, Settings, SETTINGS_GEN_ABILITY
from repro.http2.connection import H2Connection, Event
from repro.http2.transport import InMemoryTransportPair, open_tcp_pair
from repro.http2.writer import ConnectionWriter

__all__ = [
    "ErrorCode",
    "H2Error",
    "ProtocolError",
    "FrameError",
    "Frame",
    "DataFrame",
    "HeadersFrame",
    "PriorityFrame",
    "RstStreamFrame",
    "SettingsFrame",
    "PushPromiseFrame",
    "PingFrame",
    "GoAwayFrame",
    "WindowUpdateFrame",
    "ContinuationFrame",
    "parse_frames",
    "Setting",
    "Settings",
    "SETTINGS_GEN_ABILITY",
    "H2Connection",
    "Event",
    "InMemoryTransportPair",
    "open_tcp_pair",
    "ConnectionWriter",
]
