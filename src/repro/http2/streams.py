"""HTTP/2 stream state machine (RFC 9113 §5.1).

States::

                             +--------+
                     send PP |        | recv PP
                    ,--------+  idle  +--------.
                   /         |        |         \\
                  v          +--------+          v
           +----------+          |           +----------+
           |          |          | send H /  |          |
    ,------+ reserved |          | recv H    | reserved +------.
    |      | (local)  |          |           | (remote) |      |
    |      +---+------+          v           +------+---+      |
    |          |             +--------+             |          |
    |          |     recv ES |        | send ES     |          |
    |   send H |     ,-------+  open  +-------.     | recv H   |
    |          |    /        |        |        \\    |          |
    |          v   v         +---+----+         v   v          |
    |      +----------+          |           +----------+      |
    |      |   half   |          |           |   half   |      |
    |      |  closed  |          | send R /  |  closed  |      |
    |      | (remote) |          | recv R    | (local)  |      |
    |      +----+-----+          |           +-----+----+      |
    |           |                |                 |           |
    |           | send ES /      |        recv ES /|           |
    |           | send R /       v        send R / |           |
    |           | recv R     +--------+   recv R   |           |
    | send R /  `----------->|        |<-----------'  send R / |
    | recv R                 | closed |               recv R   |
    `------------------------+        +------------------------'
                             +--------+
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.http2.errors import ErrorCode, ProtocolError, StreamError
from repro.http2.flow_control import DEFAULT_WINDOW, FlowControlWindow


class StreamState(enum.Enum):
    IDLE = "idle"
    RESERVED_LOCAL = "reserved-local"
    RESERVED_REMOTE = "reserved-remote"
    OPEN = "open"
    HALF_CLOSED_LOCAL = "half-closed-local"
    HALF_CLOSED_REMOTE = "half-closed-remote"
    CLOSED = "closed"


class StreamEvent(enum.Enum):
    """Inputs to the state machine, from either direction."""

    SEND_HEADERS = "send-headers"
    RECV_HEADERS = "recv-headers"
    SEND_END_STREAM = "send-end-stream"
    RECV_END_STREAM = "recv-end-stream"
    SEND_RST = "send-rst"
    RECV_RST = "recv-rst"
    SEND_PUSH_PROMISE = "send-push-promise"
    RECV_PUSH_PROMISE = "recv-push-promise"


_S = StreamState
_E = StreamEvent

#: (state, event) -> new state. Missing entries are protocol violations.
_TRANSITIONS: dict[tuple[StreamState, StreamEvent], StreamState] = {
    (_S.IDLE, _E.SEND_HEADERS): _S.OPEN,
    (_S.IDLE, _E.RECV_HEADERS): _S.OPEN,
    (_S.IDLE, _E.SEND_PUSH_PROMISE): _S.RESERVED_LOCAL,
    (_S.IDLE, _E.RECV_PUSH_PROMISE): _S.RESERVED_REMOTE,
    (_S.RESERVED_LOCAL, _E.SEND_HEADERS): _S.HALF_CLOSED_REMOTE,
    (_S.RESERVED_LOCAL, _E.SEND_RST): _S.CLOSED,
    (_S.RESERVED_LOCAL, _E.RECV_RST): _S.CLOSED,
    (_S.RESERVED_REMOTE, _E.RECV_HEADERS): _S.HALF_CLOSED_LOCAL,
    (_S.RESERVED_REMOTE, _E.SEND_RST): _S.CLOSED,
    (_S.RESERVED_REMOTE, _E.RECV_RST): _S.CLOSED,
    (_S.OPEN, _E.SEND_END_STREAM): _S.HALF_CLOSED_LOCAL,
    (_S.OPEN, _E.RECV_END_STREAM): _S.HALF_CLOSED_REMOTE,
    (_S.OPEN, _E.SEND_RST): _S.CLOSED,
    (_S.OPEN, _E.RECV_RST): _S.CLOSED,
    # Trailers and repeated HEADERS while open are legal.
    (_S.OPEN, _E.SEND_HEADERS): _S.OPEN,
    (_S.OPEN, _E.RECV_HEADERS): _S.OPEN,
    (_S.HALF_CLOSED_LOCAL, _E.RECV_HEADERS): _S.HALF_CLOSED_LOCAL,
    (_S.HALF_CLOSED_LOCAL, _E.RECV_END_STREAM): _S.CLOSED,
    (_S.HALF_CLOSED_LOCAL, _E.SEND_RST): _S.CLOSED,
    (_S.HALF_CLOSED_LOCAL, _E.RECV_RST): _S.CLOSED,
    (_S.HALF_CLOSED_REMOTE, _E.SEND_HEADERS): _S.HALF_CLOSED_REMOTE,
    (_S.HALF_CLOSED_REMOTE, _E.SEND_END_STREAM): _S.CLOSED,
    (_S.HALF_CLOSED_REMOTE, _E.SEND_RST): _S.CLOSED,
    (_S.HALF_CLOSED_REMOTE, _E.RECV_RST): _S.CLOSED,
}

#: Events that are connection errors when applied to a closed stream.
_CLOSED_CONNECTION_ERRORS = {
    _E.RECV_HEADERS,
    _E.RECV_END_STREAM,
    _E.RECV_PUSH_PROMISE,
}


@dataclass
class H2Stream:
    """A single HTTP/2 stream: state plus per-stream flow-control windows."""

    stream_id: int
    state: StreamState = StreamState.IDLE
    outbound_window: FlowControlWindow = field(default_factory=lambda: FlowControlWindow(DEFAULT_WINDOW))
    inbound_window: FlowControlWindow = field(default_factory=lambda: FlowControlWindow(DEFAULT_WINDOW))
    #: Received request/response header lists, in arrival order.
    received_headers: list[list[tuple[bytes, bytes]]] = field(default_factory=list)
    received_data: bytearray = field(default_factory=bytearray)
    #: RFC 9218 urgency (0 most urgent … 7 least); 3 when unsignalled.
    urgency: int = 3
    #: RFC 9218 incremental flag. Defaults True (not the RFC's False):
    #: with no explicit priority signal the scheduler keeps the legacy
    #: interleave-everything behaviour; an explicit ``priority`` field or
    #: PRIORITY_UPDATE overwrites both parameters with RFC semantics.
    incremental: bool = True
    #: True once an explicit priority signal (header, PRIORITY_UPDATE, or
    #: legacy PRIORITY frame) set the parameters above.
    priority_signalled: bool = False

    def set_priority(self, urgency: int, incremental: bool) -> None:
        """Apply an explicit RFC 9218 (or mapped legacy) priority signal."""
        self.urgency = max(0, min(7, int(urgency)))
        self.incremental = bool(incremental)
        self.priority_signalled = True

    def process(self, event: StreamEvent) -> StreamState:
        """Apply an event, returning the new state or raising on violation."""
        key = (self.state, event)
        new_state = _TRANSITIONS.get(key)
        if new_state is None:
            if self.state == StreamState.CLOSED:
                if event in (_E.RECV_RST, _E.SEND_RST):
                    return self.state  # RST on closed streams is tolerated (§5.1)
                if event in _CLOSED_CONNECTION_ERRORS:
                    raise StreamError(
                        f"received frame for closed stream {self.stream_id}",
                        self.stream_id,
                        ErrorCode.STREAM_CLOSED,
                    )
            raise ProtocolError(f"stream {self.stream_id}: event {event.value} illegal in state {self.state.value}")
        self.state = new_state
        return new_state

    @property
    def can_send_data(self) -> bool:
        return self.state in (StreamState.OPEN, StreamState.HALF_CLOSED_REMOTE)

    @property
    def can_receive_data(self) -> bool:
        return self.state in (StreamState.OPEN, StreamState.HALF_CLOSED_LOCAL)

    @property
    def closed(self) -> bool:
        return self.state == StreamState.CLOSED
