"""HTTP/2 error codes and exceptions (RFC 9113 §7)."""

from __future__ import annotations

import enum


class ErrorCode(enum.IntEnum):
    """The error codes registered by RFC 9113 §7."""

    NO_ERROR = 0x0
    PROTOCOL_ERROR = 0x1
    INTERNAL_ERROR = 0x2
    FLOW_CONTROL_ERROR = 0x3
    SETTINGS_TIMEOUT = 0x4
    STREAM_CLOSED = 0x5
    FRAME_SIZE_ERROR = 0x6
    REFUSED_STREAM = 0x7
    CANCEL = 0x8
    COMPRESSION_ERROR = 0x9
    CONNECT_ERROR = 0xA
    ENHANCE_YOUR_CALM = 0xB
    INADEQUATE_SECURITY = 0xC
    HTTP_1_1_REQUIRED = 0xD


class H2Error(Exception):
    """Base class for HTTP/2 protocol failures.

    ``code`` carries the RFC 9113 error code that should be reported to the
    peer (in a GOAWAY or RST_STREAM frame).
    """

    def __init__(self, message: str, code: ErrorCode = ErrorCode.PROTOCOL_ERROR) -> None:
        super().__init__(message)
        self.code = code


class ProtocolError(H2Error):
    """A connection-level violation; the connection must be torn down."""


class StreamError(H2Error):
    """A stream-level violation; only the stream is reset."""

    def __init__(self, message: str, stream_id: int, code: ErrorCode = ErrorCode.PROTOCOL_ERROR) -> None:
        super().__init__(message, code)
        self.stream_id = stream_id


class FrameError(H2Error):
    """A malformed frame (bad length, bad padding, reserved bits misuse)."""

    def __init__(self, message: str, code: ErrorCode = ErrorCode.FRAME_SIZE_ERROR) -> None:
        super().__init__(message, code)


class FlowControlError(H2Error):
    """A flow-control window violation (RFC 9113 §5.2)."""

    def __init__(self, message: str) -> None:
        super().__init__(message, ErrorCode.FLOW_CONTROL_ERROR)


class CompressionError(H2Error):
    """An HPACK decoding failure; fatal for the whole connection."""

    def __init__(self, message: str) -> None:
        super().__init__(message, ErrorCode.COMPRESSION_ERROR)
