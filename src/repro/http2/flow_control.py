"""Connection and stream flow-control windows (RFC 9113 §5.2, §6.9)."""

from __future__ import annotations

from repro.http2.errors import FlowControlError
from repro.http2.settings import MAX_WINDOW

DEFAULT_WINDOW = 65_535


class FlowControlWindow:
    """One direction of a flow-control window.

    A sender consumes credit when emitting DATA; a receiver consumes its own
    receive window when accepting DATA and replenishes the peer by sending
    WINDOW_UPDATE. Both connection-level and stream-level windows use this
    class. The window may go negative only through a SETTINGS-initiated
    resize (RFC 9113 §6.9.2), never through consumption.
    """

    def __init__(self, initial: int = DEFAULT_WINDOW) -> None:
        if initial > MAX_WINDOW:
            raise FlowControlError(f"initial window {initial} exceeds 2^31-1")
        self._available = initial

    @property
    def available(self) -> int:
        return self._available

    def consume(self, amount: int) -> None:
        """Spend credit; raises if the frame overruns the window."""
        if amount < 0:
            raise ValueError("cannot consume a negative amount")
        if amount > self._available:
            raise FlowControlError(f"flow-control violation: need {amount}, window has {self._available}")
        self._available -= amount

    def replenish(self, amount: int) -> None:
        """Apply a WINDOW_UPDATE increment."""
        if not 1 <= amount <= MAX_WINDOW:
            raise FlowControlError(f"window increment {amount} outside [1, 2^31-1]")
        if self._available + amount > MAX_WINDOW:
            raise FlowControlError("window overflow beyond 2^31-1")
        self._available += amount

    def adjust(self, delta: int) -> None:
        """Resize due to a SETTINGS_INITIAL_WINDOW_SIZE change (§6.9.2).

        The result may legitimately be negative; it must still not exceed
        the maximum.
        """
        new_value = self._available + delta
        if new_value > MAX_WINDOW:
            raise FlowControlError("SETTINGS window adjustment overflows")
        self._available = new_value

    def deficit(self, target: int) -> int:
        """Credit needed to bring the window up to ``target`` (≥ 0).

        Used by the adaptive tuner to compute WINDOW_UPDATE catch-up
        grants after a SETTINGS resize; clamped so the grant can never
        push the window past 2^31-1.
        """
        return max(0, min(target, MAX_WINDOW) - self._available)
