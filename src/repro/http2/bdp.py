"""BDP-adaptive receive-window tuning (receiver-driven autotuning).

A fixed flow-control window couples throughput to round-trip time: a
sender can have at most ``window`` bytes in flight, so goodput tops out
at ``window / RTT``. The 64 KiB default that is fine on a 1 ms LAN path
caps a 100 ms cross-region fleet path (PR 9's ``LatencyModel`` shield →
origin leg) at ~640 KB/s regardless of link speed.

The cure — what Linux does for TCP receive buffers and Chromium/gRPC do
for HTTP/2 — is to estimate the path's bandwidth-delay product and grow
the advertised window to cover it:

* :class:`BdpEstimator` watches the receiver's two observables: DATA
  arrival (bytes per interval → delivery-rate estimate, max-filtered so
  a momentarily idle sender does not collapse the estimate) and RTT
  samples (smoothed EWMA, seeded from the transport's hint). While the
  transfer is window-limited the observed rate *is* ``window / RTT``, so
  a target of ``gain × rate × RTT`` with ``gain`` = 2 doubles the window
  each estimation interval — the same multiplicative probe DRS uses —
  until the sender stops filling it (line rate reached).
* :class:`AdaptiveReceiveWindow` applies the estimate to a connection:
  stream windows are resized via ``SETTINGS_INITIAL_WINDOW_SIZE`` (which
  re-bases every open stream per RFC 9113 §6.9.2) and the connection
  window — not covered by SETTINGS — gets an explicit WINDOW_UPDATE
  catch-up grant. Resizes are hysteresis-gated (target must beat the
  current window by 25%) so a steady path settles instead of oscillating.

Everything takes an injected ``clock`` so the estimator runs identically
on the simulated RTT clock in tests/benchmarks and on wall time in the
live client (``--no-bdp`` falls back to the fixed default windows).
"""

from __future__ import annotations

from typing import Callable

from repro.http2.connection import H2Connection
from repro.http2.flow_control import DEFAULT_WINDOW
from repro.http2.settings import MAX_WINDOW, Setting

#: Smoothing factor for RTT samples (RFC 6298's alpha).
RTT_EWMA_WEIGHT = 0.125
#: A new rate sample must beat this fraction of the decayed old maximum
#: to matter — keeps one slow interval from halving the estimate.
RATE_DECAY = 0.9
#: Grow only when the target beats the current window by this factor.
RESIZE_HYSTERESIS = 1.25
#: Ceiling for the tuned per-stream window; half the protocol max so a
#: SETTINGS re-base (§6.9.2 delta on every stream) can never overflow.
WINDOW_CEILING = MAX_WINDOW // 2


class BdpEstimator:
    """Delivery-rate × RTT estimator fed by receive-side observations."""

    def __init__(
        self,
        clock: Callable[[], float],
        rtt_s: float = 0.05,
        min_window: int = DEFAULT_WINDOW,
        max_window: int = WINDOW_CEILING,
        gain: float = 2.0,
    ) -> None:
        self.clock = clock
        self.srtt_s = max(1e-6, rtt_s)
        self.min_window = min_window
        self.max_window = min(max_window, WINDOW_CEILING)
        self.gain = gain
        self._rate_bps = 0.0  # bytes per second, max-filtered
        self._interval_bytes = 0
        self._interval_start: float | None = None
        self.samples = 0

    def on_rtt_sample(self, rtt_s: float) -> None:
        """Fold in an RTT observation (e.g. PING or WINDOW_UPDATE echo)."""
        if rtt_s <= 0:
            return
        self.srtt_s = (1 - RTT_EWMA_WEIGHT) * self.srtt_s + RTT_EWMA_WEIGHT * rtt_s

    def on_data(self, nbytes: int) -> None:
        """Record DATA arrival; closes a rate interval once per SRTT."""
        now = self.clock()
        if self._interval_start is None:
            self._interval_start = now
            self._interval_bytes = nbytes
            return
        self._interval_bytes += nbytes
        elapsed = now - self._interval_start
        if elapsed < self.srtt_s:
            return
        rate = self._interval_bytes / elapsed
        # Max filter with decay: the estimate tracks the best recently
        # observed delivery rate, not the latest (possibly app-limited) one.
        self._rate_bps = max(rate, RATE_DECAY * self._rate_bps)
        self._interval_start = now
        self._interval_bytes = 0
        self.samples += 1

    @property
    def rate_bps(self) -> float:
        return self._rate_bps

    def bdp_bytes(self) -> int:
        return int(self._rate_bps * self.srtt_s)

    def target_window(self) -> int:
        """The window that would keep the observed path busy: gain × BDP,
        clamped to the configured range."""
        target = int(self.gain * self._rate_bps * self.srtt_s)
        return max(self.min_window, min(self.max_window, target))


class AdaptiveReceiveWindow:
    """Applies a :class:`BdpEstimator` to one connection's receive side.

    The owner calls :meth:`on_data` for every DataReceived event instead
    of hand-rolling ``increment_flow_control_window`` calls; the tuner
    replenishes the consumed credit (stream + connection) and, when the
    estimator says the path deserves more, raises the advertised windows.
    """

    def __init__(self, conn: H2Connection, estimator: BdpEstimator) -> None:
        self.conn = conn
        self.estimator = estimator
        self.resizes = 0

    @property
    def current_window(self) -> int:
        return self.conn.local_settings.initial_window_size

    def on_data(self, stream_id: int, flow_controlled_length: int) -> int:
        """Account received DATA; returns the window size after tuning."""
        if flow_controlled_length > 0:
            self.estimator.on_data(flow_controlled_length)
            self.conn.increment_flow_control_window(flow_controlled_length)
            stream = self.conn.streams.get(stream_id)
            if stream is not None and not stream.closed:
                self.conn.increment_flow_control_window(flow_controlled_length, stream_id)
        return self._maybe_resize()

    def _maybe_resize(self) -> int:
        current = self.current_window
        target = self.estimator.target_window()
        if target < current * RESIZE_HYSTERESIS:
            return current
        # Stream windows: SETTINGS re-bases every open stream by the delta
        # (the engine mirrors the adjustment locally — §6.9.2). Connection
        # window: explicit catch-up grant, since SETTINGS does not touch it.
        self.conn.update_settings({Setting.INITIAL_WINDOW_SIZE: target})
        deficit = self.conn.inbound_window.deficit(target)
        if deficit > 0:
            self.conn.increment_flow_control_window(deficit)
        self.resizes += 1
        if self.conn.registry.enabled:
            self.conn.registry.counter(
                "http2_window_resizes_total",
                "BDP-driven receive-window grows (SETTINGS + catch-up grant)",
                layer="http2",
                operation="grow",
            ).inc()
            self.conn.registry.gauge(
                "http2_adaptive_window_bytes",
                "Current BDP-tuned per-stream receive window",
                layer="http2",
                operation="stream",
            ).set(float(target))
        return target
