"""DOM → HTML text."""

from __future__ import annotations

from repro.html.dom import Comment, Document, Element, Node, Text
from repro.html.tokenizer import RAW_TEXT_ELEMENTS, VOID_ELEMENTS

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {"&": "&amp;", '"': "&quot;", "<": "&lt;"}


def _escape(text: str, table: dict[str, str]) -> str:
    for char, entity in table.items():
        text = text.replace(char, entity)
    return text


def serialize(node: Node | Document) -> str:
    """Serialize a node (or whole document) back to HTML text.

    Round-trips everything the parser understands; text is entity-escaped
    except inside raw-text elements (``script``/``style``).
    """
    parts: list[str] = []
    _serialize_into(node, parts, raw_text=False)
    return "".join(parts)


def _serialize_into(node: Node | Document, parts: list[str], raw_text: bool) -> None:
    if isinstance(node, Document):
        if node.doctype is not None:
            parts.append(f"<!{node.doctype}>")
        for child in node.children:
            _serialize_into(child, parts, raw_text=False)
        return
    if isinstance(node, Text):
        parts.append(node.text if raw_text else _escape(node.text, _TEXT_ESCAPES))
        return
    if isinstance(node, Comment):
        parts.append(f"<!--{node.text}-->")
        return
    if isinstance(node, Element):
        attrs = "".join(f' {name}="{_escape(value, _ATTR_ESCAPES)}"' for name, value in node.attributes.items())
        parts.append(f"<{node.tag}{attrs}>")
        if node.tag in VOID_ELEMENTS:
            return
        inner_raw = node.tag in RAW_TEXT_ELEMENTS
        for child in node.children:
            _serialize_into(child, parts, raw_text=inner_raw)
        parts.append(f"</{node.tag}>")
        return
    raise TypeError(f"cannot serialize {type(node).__name__}")
