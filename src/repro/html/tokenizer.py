"""HTML tokenizer.

Produces a flat stream of tokens: tags (with parsed attributes), text,
comments and doctypes. Attribute values may be double-quoted, single-quoted
or unquoted; bare attributes get an empty value. The content of raw-text
elements (``script``, ``style``) is emitted as a single text token without
entity processing, matching browser behaviour closely enough for page
rewriting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

RAW_TEXT_ELEMENTS = frozenset({"script", "style"})

#: Elements that never have closing tags (HTML void elements).
VOID_ELEMENTS = frozenset(
    {
        "area",
        "base",
        "br",
        "col",
        "embed",
        "hr",
        "img",
        "input",
        "link",
        "meta",
        "source",
        "track",
        "wbr",
    }
)

_ENTITY_MAP = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
    "nbsp": " ",
}


@dataclass
class Token:
    pass


@dataclass
class TagToken(Token):
    name: str = ""
    attributes: dict[str, str] = field(default_factory=dict)
    closing: bool = False
    self_closing: bool = False


@dataclass
class TextToken(Token):
    text: str = ""


@dataclass
class CommentToken(Token):
    text: str = ""


@dataclass
class DoctypeToken(Token):
    text: str = "html"


def decode_entities(text: str) -> str:
    """Decode the common named entities and numeric character references."""
    if "&" not in text:
        return text
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end == -1 or end - i > 12:
            out.append(ch)
            i += 1
            continue
        body = text[i + 1 : end]
        if body.startswith("#"):
            try:
                code = int(body[2:], 16) if body[1:2] in ("x", "X") else int(body[1:])
                out.append(chr(code))
                i = end + 1
                continue
            except (ValueError, OverflowError):
                pass
        elif body in _ENTITY_MAP:
            out.append(_ENTITY_MAP[body])
            i = end + 1
            continue
        out.append(ch)
        i += 1
    return "".join(out)


class _Cursor:
    """Character cursor over the source with small lookahead helpers."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.position = 0

    @property
    def done(self) -> bool:
        return self.position >= len(self.source)

    def peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.source[index] if index < len(self.source) else ""

    def advance(self, count: int = 1) -> None:
        self.position += count

    def starts_with(self, prefix: str) -> bool:
        return self.source.startswith(prefix, self.position)

    def take_until(self, needle: str) -> str:
        """Consume up to (not including) ``needle``, or everything left."""
        index = self.source.find(needle, self.position)
        if index == -1:
            chunk = self.source[self.position :]
            self.position = len(self.source)
            return chunk
        chunk = self.source[self.position : index]
        self.position = index
        return chunk

    def skip_whitespace(self) -> None:
        while not self.done and self.peek().isspace():
            self.advance()


def _read_tag_name(cursor: _Cursor) -> str:
    start = cursor.position
    while not cursor.done and (cursor.peek().isalnum() or cursor.peek() in "-_:"):
        cursor.advance()
    return cursor.source[start : cursor.position].lower()


def _read_attribute_value(cursor: _Cursor) -> str:
    quote = cursor.peek()
    if quote in ("'", '"'):
        cursor.advance()
        value = cursor.take_until(quote)
        cursor.advance()  # closing quote (no-op at EOF)
        return decode_entities(value)
    start = cursor.position
    while not cursor.done and not cursor.peek().isspace() and cursor.peek() not in (">", "/"):
        cursor.advance()
    return decode_entities(cursor.source[start : cursor.position])


def _read_attributes(cursor: _Cursor) -> tuple[dict[str, str], bool]:
    attributes: dict[str, str] = {}
    self_closing = False
    while True:
        cursor.skip_whitespace()
        if cursor.done:
            break
        ch = cursor.peek()
        if ch == ">":
            cursor.advance()
            break
        if ch == "/" and cursor.peek(1) == ">":
            cursor.advance(2)
            self_closing = True
            break
        start = cursor.position
        while not cursor.done and not cursor.peek().isspace() and cursor.peek() not in ("=", ">", "/"):
            cursor.advance()
        name = cursor.source[start : cursor.position].lower()
        if not name:
            cursor.advance()
            continue
        cursor.skip_whitespace()
        if cursor.peek() == "=":
            cursor.advance()
            cursor.skip_whitespace()
            value = _read_attribute_value(cursor)
        else:
            value = ""
        attributes.setdefault(name, value)
    return attributes, self_closing


def tokenize(source: str) -> list[Token]:
    """Tokenize an HTML document into a flat token list."""
    cursor = _Cursor(source)
    tokens: list[Token] = []
    raw_text_element: str | None = None

    while not cursor.done:
        if raw_text_element is not None:
            closer = f"</{raw_text_element}"
            index = cursor.source.lower().find(closer, cursor.position)
            if index == -1:
                tokens.append(TextToken(cursor.source[cursor.position :]))
                cursor.position = len(cursor.source)
                raw_text_element = None
                continue
            if index > cursor.position:
                tokens.append(TextToken(cursor.source[cursor.position : index]))
            cursor.position = index
            raw_text_element = None
            continue

        if cursor.peek() != "<":
            text = cursor.take_until("<")
            decoded = decode_entities(text)
            if decoded:
                tokens.append(TextToken(decoded))
            continue

        if cursor.starts_with("<!--"):
            cursor.advance(4)
            body = cursor.take_until("-->")
            cursor.advance(3)
            tokens.append(CommentToken(body))
            continue

        if cursor.starts_with("<!"):
            cursor.advance(2)
            body = cursor.take_until(">")
            cursor.advance(1)
            tokens.append(DoctypeToken(body.strip()))
            continue

        if cursor.starts_with("</"):
            cursor.advance(2)
            name = _read_tag_name(cursor)
            cursor.take_until(">")
            cursor.advance(1)
            if name:
                tokens.append(TagToken(name=name, closing=True))
            continue

        nxt = cursor.peek(1)
        if not (nxt.isalpha() or nxt in "_"):
            # A bare '<' that does not start a tag is literal text.
            tokens.append(TextToken("<"))
            cursor.advance()
            continue

        cursor.advance(1)
        name = _read_tag_name(cursor)
        attributes, self_closing = _read_attributes(cursor)
        tokens.append(TagToken(name=name, attributes=attributes, self_closing=self_closing))
        if name in RAW_TEXT_ELEMENTS and not self_closing:
            raw_text_element = name
    return tokens
