"""A small from-scratch HTML engine.

The SWW prototype needs to parse received pages, find ``generated-content``
divisions, and rewrite them with generated media (paper §4.1). This
subpackage provides the pieces: a tokenizer, a DOM, a tree-building parser
and a serializer. It is not a full WHATWG implementation — it covers the
constructs that appear in real page markup (elements, attributes, text,
comments, doctype, void elements, raw-text elements like ``<script>``)
with well-defined recovery for mismatched tags.
"""

from repro.html.dom import Element, Text, Comment, Document, Node
from repro.html.parser import parse_html
from repro.html.serializer import serialize
from repro.html.tokenizer import tokenize, Token, TagToken, TextToken, CommentToken, DoctypeToken

__all__ = [
    "Element",
    "Text",
    "Comment",
    "Document",
    "Node",
    "parse_html",
    "serialize",
    "tokenize",
    "Token",
    "TagToken",
    "TextToken",
    "CommentToken",
    "DoctypeToken",
]
