"""Tree construction: token stream → DOM.

Implements a pragmatic subset of the WHATWG tree-building rules:

* void elements never push onto the open-element stack;
* a closing tag pops to the nearest matching open element (implicitly
  closing anything above it) and is ignored when no match exists;
* ``<p>`` auto-closes a preceding unclosed ``<p>``; ``<li>`` likewise;
* unclosed elements at end of input are closed implicitly.
"""

from __future__ import annotations

from repro.html.dom import Comment, Document, Element, Text
from repro.html.tokenizer import (
    CommentToken,
    DoctypeToken,
    TagToken,
    TextToken,
    VOID_ELEMENTS,
    tokenize,
)

#: Opening one of these implicitly closes a same-tag ancestor.
_AUTO_CLOSE_SAME = frozenset({"p", "li", "option", "tr", "td", "th", "dt", "dd"})

#: Block-level elements that implicitly close an open <p> (WHATWG §13.2.6).
_CLOSES_P = frozenset(
    {
        "address", "article", "aside", "blockquote", "div", "dl", "fieldset",
        "figure", "footer", "form", "h1", "h2", "h3", "h4", "h5", "h6",
        "header", "hr", "main", "nav", "ol", "pre", "section", "table", "ul",
    }
)


def parse_html(source: str) -> Document:
    """Parse HTML text into a :class:`~repro.html.dom.Document`."""
    document = Document()
    stack: list = [document]

    def open_elements() -> list[Element]:
        return [node for node in stack[1:] if isinstance(node, Element)]

    for token in tokenize(source):
        top = stack[-1]
        if isinstance(token, DoctypeToken):
            if document.doctype is None:
                document.doctype = token.text
        elif isinstance(token, TextToken):
            top.append(Text(token.text))
        elif isinstance(token, CommentToken):
            top.append(Comment(token.text))
        elif isinstance(token, TagToken):
            if token.closing:
                _handle_close(stack, token.name)
            else:
                if token.name in _AUTO_CLOSE_SAME:
                    _auto_close(stack, token.name)
                elif token.name in _CLOSES_P:
                    _auto_close(stack, "p")
                element = Element(token.name, token.attributes)
                stack[-1].append(element)
                if token.name not in VOID_ELEMENTS and not token.self_closing:
                    stack.append(element)
    return document


def _handle_close(stack: list, name: str) -> None:
    """Pop to the matching open element, or ignore an unmatched closer."""
    for index in range(len(stack) - 1, 0, -1):
        node = stack[index]
        if isinstance(node, Element) and node.tag == name:
            del stack[index:]
            return
    # No matching open element: the closing tag is parse garbage; skip it.


def _auto_close(stack: list, name: str) -> None:
    """Implicitly close an open same-tag element that would nest illegally.

    Only closes within the nearest block: a ``<li>`` inside a nested
    ``<ul>`` must not close the outer ``<li>``.
    """
    barrier = frozenset({"ul", "ol", "table", "div", "section", "article", "body", "html"})
    for index in range(len(stack) - 1, 0, -1):
        node = stack[index]
        if not isinstance(node, Element):
            break
        if node.tag == name:
            del stack[index:]
            return
        if node.tag in barrier:
            return
