"""A minimal DOM: documents, elements, text and comments.

Supports the operations the SWW page processor needs: tree traversal,
class/attribute queries, node replacement and cloning.
"""

from __future__ import annotations

from typing import Callable, Iterator


class Node:
    """Base tree node."""

    def __init__(self) -> None:
        self.parent: Element | Document | None = None

    def detach(self) -> None:
        """Remove this node from its parent."""
        if self.parent is not None:
            self.parent.children.remove(self)
            self.parent = None

    def replace_with(self, *replacements: "Node") -> None:
        """Swap this node for one or more replacement nodes in-place."""
        parent = self.parent
        if parent is None:
            raise ValueError("cannot replace a detached node")
        index = parent.children.index(self)
        for replacement in replacements:
            replacement.detach()
        parent.children[index : index + 1] = list(replacements)
        for replacement in replacements:
            replacement.parent = parent
        self.parent = None

    def clone(self) -> "Node":
        raise NotImplementedError


class Text(Node):
    """A run of character data."""

    def __init__(self, text: str) -> None:
        super().__init__()
        self.text = text

    def clone(self) -> "Text":
        return Text(self.text)

    def __repr__(self) -> str:
        preview = self.text if len(self.text) <= 30 else self.text[:27] + "..."
        return f"Text({preview!r})"


class Comment(Node):
    """An HTML comment."""

    def __init__(self, text: str) -> None:
        super().__init__()
        self.text = text

    def clone(self) -> "Comment":
        return Comment(self.text)

    def __repr__(self) -> str:
        return f"Comment({self.text!r})"


class _Container(Node):
    """Shared child-management behaviour for Document and Element."""

    def __init__(self) -> None:
        super().__init__()
        self.children: list[Node] = []

    def append(self, node: Node) -> Node:
        node.detach()
        node.parent = self
        self.children.append(node)
        return node

    def insert(self, index: int, node: Node) -> Node:
        node.detach()
        node.parent = self
        self.children.insert(index, node)
        return node

    def iter(self) -> Iterator[Node]:
        """Depth-first pre-order traversal of the subtree (excluding self)."""
        for child in list(self.children):
            yield child
            if isinstance(child, _Container):
                yield from child.iter()

    def find_all(self, predicate: Callable[["Element"], bool]) -> list["Element"]:
        return [node for node in self.iter() if isinstance(node, Element) and predicate(node)]

    def find_by_tag(self, tag: str) -> list["Element"]:
        tag = tag.lower()
        return self.find_all(lambda el: el.tag == tag)

    def find_by_class(self, class_name: str) -> list["Element"]:
        return self.find_all(lambda el: class_name in el.classes)

    def find_first(self, predicate: Callable[["Element"], bool]) -> "Element | None":
        for node in self.iter():
            if isinstance(node, Element) and predicate(node):
                return node
        return None

    def text_content(self) -> str:
        """Concatenated text of all descendants."""
        parts = [node.text for node in self.iter() if isinstance(node, Text)]
        return "".join(parts)


class Element(_Container):
    """An HTML element with a tag name and attributes."""

    def __init__(self, tag: str, attributes: dict[str, str] | None = None) -> None:
        super().__init__()
        self.tag = tag.lower()
        self.attributes: dict[str, str] = dict(attributes or {})

    @property
    def classes(self) -> list[str]:
        return self.attributes.get("class", "").split()

    def has_class(self, name: str) -> bool:
        return name in self.classes

    def get(self, name: str, default: str = "") -> str:
        return self.attributes.get(name.lower(), default)

    def set(self, name: str, value: str) -> None:
        self.attributes[name.lower()] = value

    @property
    def id(self) -> str:
        return self.attributes.get("id", "")

    def clone(self) -> "Element":
        copy = Element(self.tag, dict(self.attributes))
        for child in self.children:
            copy.append(child.clone())
        return copy

    def __repr__(self) -> str:
        attrs = " ".join(f'{k}="{v}"' for k, v in self.attributes.items())
        return f"<{self.tag}{' ' + attrs if attrs else ''}> ({len(self.children)} children)"


class Document(_Container):
    """The document root; may carry a doctype."""

    def __init__(self) -> None:
        super().__init__()
        self.doctype: str | None = None

    @property
    def html(self) -> Element | None:
        for child in self.children:
            if isinstance(child, Element) and child.tag == "html":
                return child
        return None

    @property
    def body(self) -> Element | None:
        html = self.html
        root: _Container = html if html is not None else self
        for node in root.iter():
            if isinstance(node, Element) and node.tag == "body":
                return node
        return None

    @property
    def head(self) -> Element | None:
        html = self.html
        root: _Container = html if html is not None else self
        for node in root.iter():
            if isinstance(node, Element) and node.tag == "head":
                return node
        return None

    def clone(self) -> "Document":
        copy = Document()
        copy.doctype = self.doctype
        for child in self.children:
            copy.append(child.clone())
        return copy

    def __repr__(self) -> str:
        return f"Document({len(self.children)} top-level nodes)"
