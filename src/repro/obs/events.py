"""Wide events: one canonical log line per request, assembled across layers.

Aggregated metrics answer "how is the system doing"; they cannot answer
"what happened to *that* request". A wide event is the per-request
complement: a single structured record that every layer annotates as the
request traverses it — negotiation outcome in the server, model/device/
steps and simulated cost in the generation path, gencache hit/coalesce in
the media generator, batch id and share in the batching engine, queue and
stall time in the connection writer — and that is emitted exactly once
when the request finishes, success or failure.

Design points:

* **One ring, bounded.** :class:`EventLog` holds finished events in a
  ``deque(maxlen=capacity)``; overflow evicts oldest and counts
  ``obs_events_dropped_total`` rather than growing memory.
* **Strict schema.** Field names must come from :data:`EVENT_FIELDS`
  (snake_case, documented in OBSERVABILITY.md — the catalog lint enforces
  both). Unknown fields raise immediately, so drift is a test failure,
  not silent divergence between emitters.
* **Idempotent finish.** :meth:`WideEvent.finish` records the event on
  its first call only; layered error handling (server handler, writer,
  ``finally`` blocks) may all call it without double-emitting.
* **Cross-layer annotation without plumbing.** The layer that *owns* a
  request binds its event to the current thread (``with event.bind():``);
  inner layers (gencache, batching metadata, the materialise path) call
  :func:`annotate_current`, which is a no-op when no event is bound.
* **Export.** ``to_jsonl`` (one JSON object per line) and
  ``to_columnar`` (same shape as the timeseries plane: a field-major
  document a future multi-worker arbiter can merge cheaply).

The :data:`NULL_EVENT_LOG` default makes every emitter a no-op, same as
the metrics/tracing null singletons.
"""

from __future__ import annotations

import json
import re
import threading
import time
from collections import deque
from typing import Iterable

#: Format tag stamped on columnar exports.
EVENTS_FORMAT = "sww-events/1"

#: snake_case: the lint in :mod:`repro.obs.catalog` enforces this shape
#: and that every field is documented in OBSERVABILITY.md.
FIELD_RE = re.compile(r"^[a-z][a-z0-9]*(?:_[a-z0-9]+)*$")

#: The canonical wide-event schema: field name -> one-line meaning.
#: Every annotation site must use these names; ``WideEvent.set`` rejects
#: anything else. Keep the table in OBSERVABILITY.md in sync (linted).
EVENT_FIELDS: dict[str, str] = {
    # -- identity / envelope -------------------------------------------- #
    "event": "event type: server.request, client.fetch, cdn.serve, batch.execute",
    "seq": "monotonic per-log sequence number, stamped at begin()",
    "worker": "pid of the serving worker that recorded the event (multi-worker mode)",
    "trace_id": "W3C trace id joining the event to its distributed trace",
    "status": "final HTTP status (or 0 when the request never got one)",
    "error": "exception class or failure kind when the request failed",
    "duration_s": "begin-to-finish wall time in seconds",
    "transport": "memory | tcp",
    "stream_id": "HTTP/2 stream id the request rode",
    "path": "request path (or page path for client fetches)",
    "authority": "request :authority pseudo-header",
    # -- negotiation ---------------------------------------------------- #
    "serve_mode": "negotiated serve mode: sww | fallback",
    "fallback_reason": "why fallback was chosen: negotiation | no-prompts | policy | models",
    "client_gen_ability": "whether the peer advertised SETTINGS_GEN_ABILITY",
    # -- generation ----------------------------------------------------- #
    "model": "generation model that materialised the content",
    "device": "device profile the generation cost model used",
    "steps": "diffusion/sampling steps for the generation",
    "sim_time_s": "simulated generation seconds attributed to this request",
    "energy_wh": "simulated generation energy (watt-hours) for this request",
    # -- gencache ------------------------------------------------------- #
    "gencache_outcome": "hit | miss | coalesced for the request's generation key(s)",
    "gencache_hits": "number of generation-cache hits within the request",
    "gencache_coalesced": "number of in-flight coalesced generations joined",
    # -- batching ------------------------------------------------------- #
    "batch_id": "sequence id of the engine batch the generation rode",
    "batch_size": "number of requests in that batch",
    "batch_share": "amortised per-item step share for the batch",
    # -- writer / wire -------------------------------------------------- #
    "writer_frames": "DATA frames the connection writer sent for the stream",
    "writer_stalls": "times the stream parked on an exhausted flow-control window",
    "writer_queue_s": "enqueue-to-last-frame seconds spent in the writer",
    "writer_urgency": "RFC 9218 urgency bucket (0-7) the response was scheduled in",
    "body_bytes": "response body bytes before framing",
    "wire_bytes": "bytes that actually crossed the wire",
    # -- client-side ---------------------------------------------------- #
    "sww_mode": "client saw an SWW (prompt) response rather than literal content",
    "generated_images": "images the client generated locally",
    "generated_texts": "text blocks the client generated locally",
    # -- cdn ------------------------------------------------------------ #
    "cache_key": "edge/generation cache key for cdn.serve events",
    "cache_hit": "edge cache hit (cdn.serve)",
    "backbone_bytes": "origin-to-edge bytes for the serve",
    "egress_bytes": "edge-to-client bytes for the serve",
}

_EVENT_TYPES = ("server.request", "client.fetch", "cdn.serve", "batch.execute")

#: Module-level binding stack: the innermost event bound on *this thread*.
#: Module-level (not per-log) so inner layers need no handle on the log.
_ACTIVE = threading.local()


def _active_stack() -> list["WideEvent"]:
    stack = getattr(_ACTIVE, "stack", None)
    if stack is None:
        stack = []
        _ACTIVE.stack = stack
    return stack


def current_event() -> "WideEvent | None":
    """The innermost wide event bound on this thread, if any."""
    stack = _active_stack()
    return stack[-1] if stack else None


def annotate_current(**fields) -> None:
    """Annotate the current thread's bound event; no-op when none."""
    event = current_event()
    if event is not None:
        event.set(**fields)


def add_current(**fields) -> None:
    """Numerically accumulate onto the bound event; no-op when none."""
    event = current_event()
    if event is not None:
        event.add(**fields)


class _Binding:
    """``with event.bind():`` — pushes the event as the thread's current."""

    __slots__ = ("_event",)

    def __init__(self, event: "WideEvent") -> None:
        self._event = event

    def __enter__(self) -> "WideEvent":
        _active_stack().append(self._event)
        return self._event

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = _active_stack()
        if stack and stack[-1] is self._event:
            stack.pop()


class WideEvent:
    """One request's canonical record; annotated across layers, emitted once."""

    __slots__ = ("fields", "_log", "_start", "_finished")

    def __init__(self, log: "EventLog | None", event: str, fields: dict) -> None:
        self._log = log
        self._start = time.perf_counter()
        self._finished = False
        self.fields = fields
        self.fields["event"] = event

    def set(self, **fields) -> "WideEvent":
        """Annotate; field names must exist in :data:`EVENT_FIELDS`."""
        for name in fields:
            if name not in EVENT_FIELDS:
                raise ValueError(
                    f"unknown wide-event field {name!r}; add it to "
                    "repro.obs.events.EVENT_FIELDS (and OBSERVABILITY.md)"
                )
        self.fields.update(fields)
        return self

    def add(self, **fields) -> "WideEvent":
        """Numeric accumulate (``add(gencache_hits=1)``) — schema-checked."""
        for name, value in fields.items():
            if name not in EVENT_FIELDS:
                raise ValueError(f"unknown wide-event field {name!r}")
            self.fields[name] = self.fields.get(name, 0) + value
        return self

    def bind(self) -> _Binding:
        """Bind as the current thread's event for the ``with`` body."""
        return _Binding(self)

    @property
    def finished(self) -> bool:
        return self._finished

    def finish(
        self, status: int | None = None, error: str | None = None
    ) -> "WideEvent":
        """Close and record the event; idempotent (first call wins)."""
        if self._finished:
            return self
        self._finished = True
        if status is not None:
            self.fields["status"] = status
        self.fields.setdefault("status", 0)
        if error is not None:
            self.fields["error"] = error
        self.fields["duration_s"] = time.perf_counter() - self._start
        if self._log is not None:
            self._log._emit(self)
        return self

    def to_dict(self) -> dict:
        return dict(self.fields)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "finished" if self._finished else "open"
        return f"<WideEvent {self.fields.get('event')} seq={self.fields.get('seq')} {state}>"


class EventLog:
    """Bounded ring of finished wide events."""

    enabled = True

    def __init__(
        self, capacity: int = 2048, registry=None, worker_id: int | None = None
    ) -> None:
        if capacity <= 0:
            raise ValueError("event ring capacity must be positive")
        self._ring: deque[WideEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._open = 0
        #: Finished events evicted by ring overflow (never reset by reads).
        self.dropped = 0
        self._registry = registry
        #: When set (multi-worker serving), every event carries a ``worker``
        #: field so merged jsonl streams sort deterministically by
        #: ``(worker, seq)`` and never collide across workers.
        self.worker_id = worker_id

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    @property
    def open_count(self) -> int:
        """Events begun but not yet finished (leak detector for tests)."""
        return self._open

    def begin(self, event: str, **fields) -> WideEvent:
        """Start a wide event; stamps ``seq`` and validates field names."""
        if event not in _EVENT_TYPES:
            raise ValueError(f"unknown event type {event!r}; one of {_EVENT_TYPES}")
        with self._lock:
            self._seq += 1
            seq = self._seq
            self._open += 1
        record = WideEvent(self, event, {"seq": seq})
        if self.worker_id is not None:
            record.fields["worker"] = self.worker_id
        record.set(**fields)
        return record

    def _emit(self, event: WideEvent) -> None:
        with self._lock:
            self._open -= 1
            if self._ring.maxlen is not None and len(self._ring) == self._ring.maxlen:
                self.dropped += 1
                if self._registry is not None and self._registry.enabled:
                    self._registry.counter(
                        "obs_events_dropped_total",
                        "Finished wide events evicted from the bounded ring",
                        layer="obs",
                        operation="evicted",
                    ).inc()
            self._ring.append(event)
        if self._registry is not None and self._registry.enabled:
            self._registry.counter(
                "obs_events_total",
                "Wide events recorded, by event type",
                layer="obs",
                operation=event.fields.get("event", "unknown"),
            ).inc()

    def events(self, last: int | None = None) -> list[WideEvent]:
        """Finished events, oldest first (``last`` trims to the newest N)."""
        with self._lock:
            items = list(self._ring)
        if last is not None and last >= 0:
            items = items[len(items) - min(last, len(items)):]
        return items

    def reset(self) -> None:
        with self._lock:
            self._ring.clear()

    def to_jsonl(self, last: int | None = None) -> str:
        return events_to_jsonl(self.events(last=last))

    def to_columnar(self, last: int | None = None) -> dict:
        return events_to_columnar(self.events(last=last))


def events_to_jsonl(events: Iterable[WideEvent]) -> str:
    """One JSON object per line, keys sorted — join-friendly with logs."""
    lines = [
        json.dumps(event.to_dict(), sort_keys=True, default=str)
        for event in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def events_to_columnar(events: Iterable[WideEvent]) -> dict:
    """Field-major export: ``{format, count, columns: {field: [values]}}``.

    Missing fields become ``None`` so every column has equal length —
    the same merge-friendly shape as the sww-timeseries/1 snapshots.
    """
    records = [event.to_dict() for event in events]
    names = sorted({name for record in records for name in record})
    columns = {
        name: [record.get(name) for record in records] for name in names
    }
    return {"format": EVENTS_FORMAT, "count": len(records), "columns": columns}


class _NullEvent(WideEvent):
    """Shared no-op event: annotations discarded, never recorded."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(None, "server.request", {})

    def set(self, **fields) -> "WideEvent":
        return self

    def add(self, **fields) -> "WideEvent":
        return self

    def bind(self) -> _Binding:
        return _NULL_BINDING

    def finish(self, status=None, error=None) -> "WideEvent":
        return self

    def to_dict(self) -> dict:
        return {}


class _NullBinding:
    __slots__ = ()

    def __enter__(self):
        return _NULL_EVENT

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_BINDING = _NullBinding()
_NULL_EVENT = _NullEvent()


class NullEventLog(EventLog):
    """Default event log: begin() hands out the shared no-op event."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def begin(self, event: str, **fields) -> WideEvent:  # type: ignore[override]
        return _NULL_EVENT

    def events(self, last: int | None = None) -> list[WideEvent]:
        return []


#: Process-wide no-op singleton (same pattern as NULL_REGISTRY/NULL_TRACER).
NULL_EVENT_LOG = NullEventLog()
