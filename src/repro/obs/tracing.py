"""Span-based tracing with parent/child nesting and a ring buffer.

A :class:`Tracer` hands out context-manager :class:`Span` objects::

    with tracer.span("server.materialise", page=path) as sp:
        ...
        sp.annotate(assets=len(report.assets))

Timing uses ``time.perf_counter``. Spans nest through a per-thread stack,
so a span opened while another is active becomes its child; completed
*root* spans land in a bounded ring buffer (old traces fall off rather
than growing memory — the tracer can be left attached to a long-running
server, and evictions are counted rather than silent). The
:data:`NULL_TRACER` default makes every ``with`` a no-op.

Every recorded span carries W3C-shaped identifiers (a 16-byte trace-id
shared by the whole trace, an 8-byte span-id of its own) minted by an
injectable :class:`~repro.obs.propagation.IdSource`. A span opened with a
``remote=`` :class:`~repro.obs.propagation.TraceContext` — extracted from
a ``traceparent`` header — joins the sender's trace as a *remote child*:
it keeps the sender's trace-id, records the sender's span-id as
``remote_parent``, and honours the sender's head-sampling decision.
:func:`stitch_spans` reassembles the per-process fragments into one tree.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import deque
from typing import Iterable

from repro.obs.propagation import IdSource, TraceContext

#: Tail-retention classes, in keep-priority order (error never evicted
#: before slow, slow never before baseline).
KEEP_ERROR = "error"
KEEP_SLOW = "slow"
KEEP_BASELINE = "baseline"


class TailSampler:
    """Tail-based retention: the keep/drop decision at root completion.

    Head sampling (``Tracer(sample_rate=...)``) flips its coin when a
    trace *starts*, so at any budget below 1.0 it discards errors and
    tail-latency outliers with exactly the same probability as boring
    traces — the traces you keep are, by construction, the ones you did
    not need. Tail sampling inverts that: every root completes, and only
    then is classified:

    * **error** — any span in the tree recorded an ``error`` attribute:
      always kept;
    * **slow** — a reservoir of the ``slow_k`` slowest non-error roots
      seen so far (a min-heap; a new root displaces the reservoir's
      fastest member, which is then evicted);
    * **baseline** — everything else passes a deterministic coin
      (:meth:`IdSource.sample`) at ``baseline_rate``, keeping an
      unbiased sample of normal traffic for comparison.

    Total retention is bounded by ``capacity``; overflow evicts in
    reverse priority (oldest baseline, then oldest slow, then oldest
    error) so the interesting classes survive longest. Kept / dropped /
    evicted counts go to ``obs_traces_kept_total`` and
    ``obs_traces_dropped_total``.
    """

    def __init__(
        self,
        capacity: int = 256,
        slow_k: int = 16,
        baseline_rate: float = 0.05,
        ids: IdSource | None = None,
        registry=None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("retention capacity must be positive")
        if slow_k < 0:
            raise ValueError("slow_k must be >= 0")
        if not 0.0 <= baseline_rate <= 1.0:
            raise ValueError("baseline_rate must be in [0, 1]")
        self.capacity = capacity
        self.slow_k = slow_k
        self.baseline_rate = baseline_rate
        self._ids = ids if ids is not None else IdSource()
        self._registry = registry
        self._lock = threading.Lock()
        #: seq -> (class, span); dict order is arrival order.
        self._retained: dict[int, tuple[str, Span]] = {}
        #: min-heap of (duration_s, seq) for the slow reservoir.
        self._slow_heap: list[tuple[float, int]] = []
        self._stale: set[int] = set()
        self._seq = 0
        self.kept: dict[str, int] = {KEEP_ERROR: 0, KEEP_SLOW: 0, KEEP_BASELINE: 0}
        self.dropped = 0
        self.evicted = 0

    @staticmethod
    def has_error(span: "Span") -> bool:
        """True when any span in the tree carries an ``error`` attribute."""
        for _, node in span.walk():
            if "error" in node.attributes:
                return True
        return False

    def record(self, span: "Span") -> str | None:
        """Classify one completed root; returns the class kept, or None."""
        with self._lock:
            self._seq += 1
            seq = self._seq
            kind = self._classify(span, seq)
            if kind is None:
                self.dropped += 1
                self._count("obs_traces_dropped_total", "tail")
                return None
            self._retained[seq] = (kind, span)
            self.kept[kind] += 1
            self._count("obs_traces_kept_total", kind)
            while len(self._retained) > self.capacity:
                self._evict_one()
            return kind

    def _classify(self, span: "Span", seq: int) -> str | None:
        if self.has_error(span):
            return KEEP_ERROR
        duration = span.duration_s
        if self.slow_k > 0:
            self._prune_heap()
            if len(self._slow_heap) < self.slow_k:
                heapq.heappush(self._slow_heap, (duration, seq))
                return KEEP_SLOW
            if duration > self._slow_heap[0][0]:
                # Displace the reservoir's fastest member; it no longer
                # earns its slot (unless capacity kept it as baseline,
                # it is gone — that is the point of a top-k reservoir).
                _, demoted_seq = heapq.heapreplace(self._slow_heap, (duration, seq))
                self._stale.discard(demoted_seq)
                if demoted_seq in self._retained:
                    del self._retained[demoted_seq]
                    self.evicted += 1
                    self._count("obs_traces_dropped_total", "tail-evicted")
                return KEEP_SLOW
        if self._ids.sample(self.baseline_rate):
            return KEEP_BASELINE
        return None

    def _prune_heap(self) -> None:
        while self._slow_heap and self._slow_heap[0][1] in self._stale:
            self._stale.discard(self._slow_heap[0][1])
            heapq.heappop(self._slow_heap)

    def _evict_one(self) -> None:
        victim = None
        for priority in (KEEP_BASELINE, KEEP_SLOW, KEEP_ERROR):
            for seq, (kind, _span) in self._retained.items():
                if kind == priority:
                    victim = (seq, kind)
                    break
            if victim is not None:
                break
        if victim is None:  # pragma: no cover - retained is non-empty here
            return
        seq, kind = victim
        del self._retained[seq]
        if kind == KEEP_SLOW:
            self._stale.add(seq)
        self.evicted += 1
        self._count("obs_traces_dropped_total", "tail-evicted")

    def _count(self, name: str, operation: str) -> None:
        if self._registry is None or not self._registry.enabled:
            return
        help_text = (
            "Completed roots kept by tail sampling, by retention class"
            if name == "obs_traces_kept_total"
            else "Completed root spans evicted from the tracer ring buffer"
        )
        self._registry.counter(
            name, help_text, layer="obs", operation=operation
        ).inc()

    def spans(self) -> list["Span"]:
        """Retained roots, oldest first."""
        with self._lock:
            return [span for _kind, span in self._retained.values()]

    def retained(self) -> list[tuple[str, "Span"]]:
        """``(class, span)`` pairs, oldest first (for tests/inspection)."""
        with self._lock:
            return list(self._retained.values())

    def reset(self) -> None:
        with self._lock:
            self._retained.clear()
            self._slow_heap.clear()
            self._stale.clear()


class Span:
    """One timed operation; context manager, may carry child spans."""

    __slots__ = (
        "name",
        "attributes",
        "start",
        "end",
        "children",
        "trace_id",
        "span_id",
        "sampled",
        "remote_parent",
        "_tracer",
        "_parent",
        "_remote",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attributes: dict,
        remote: TraceContext | None = None,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self.start: float = 0.0
        self.end: float | None = None
        self.children: list[Span] = []
        self._parent: Span | None = None
        self._remote = remote
        #: Identity, assigned on __enter__ (inherited from the local parent,
        #: the remote context, or freshly minted for a new root).
        self.trace_id: str = ""
        self.span_id: str = ""
        self.sampled: bool = True
        #: The extracted cross-process parent, when this span was opened as
        #: a remote child (None for purely local spans).
        self.remote_parent: TraceContext | None = None

    @property
    def duration_s(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def context(self) -> TraceContext:
        """This span's identity in propagation form (inject into headers)."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id, sampled=self.sampled)

    def annotate(self, **attributes) -> "Span":
        """Attach extra attributes mid-span."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        local_parent = stack[-1] if stack else None
        remote = self._remote
        if remote is not None and (local_parent is None or local_parent.trace_id != remote.trace_id):
            # True cross-process hop: detach from any unrelated local span
            # and root this process's fragment of the sender's trace.
            self._parent = None
            self.trace_id = remote.trace_id
            self.sampled = remote.sampled
            self.remote_parent = remote
        else:
            # Purely local, or a remote context that is really the local
            # parent seen through a same-process loopback (the in-memory
            # transport): plain nesting keeps the tree whole.
            self._parent = local_parent
            if local_parent is not None:
                self.trace_id = local_parent.trace_id
                self.sampled = local_parent.sampled
            else:
                self.trace_id = self._tracer._ids.trace_id()
                self.sampled = self._tracer._ids.sample(self._tracer.sample_rate)
        self.span_id = self._tracer._ids.span_id()
        if self._parent is not None and self.sampled:
            self._parent.children.append(self)
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        if self._parent is None and self.sampled:
            self._tracer._record(self)

    def walk(self, depth: int = 0):
        """Yield ``(depth, span)`` pairs, pre-order."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def to_dict(self) -> dict:
        """JSON-friendly form (relative times only, keeps runs comparable)."""
        data = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }
        if self.remote_parent is not None:
            data["remote_parent"] = self.remote_parent.span_id
        return data


class Tracer:
    """Factory for spans; owns the completed-root ring buffer."""

    enabled = True

    def __init__(
        self,
        capacity: int = 1024,
        ids: IdSource | None = None,
        sample_rate: float = 1.0,
        registry=None,
        tail: TailSampler | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        self._ring: deque[Span] = deque(maxlen=capacity)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._ids = ids if ids is not None else IdSource()
        #: Head-based sampling probability for locally started roots;
        #: remote children always inherit the sender's decision instead.
        self.sample_rate = sample_rate
        #: Completed roots evicted by ring overflow (never reset by reads).
        self.dropped_roots = 0
        #: Optional metrics sink for the eviction counter.
        self._registry = registry
        #: Tail-based retention policy: when set, completed roots route
        #: through it instead of the oldest-first ring (leave
        #: ``sample_rate`` at 1.0 so the tail sees every root).
        self.tail = tail

    def span(self, name: str, remote: TraceContext | None = None, **attributes) -> Span:
        """Open a span; pass ``remote=`` to join a propagated trace."""
        return Span(self, name, attributes, remote=remote)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record(self, span: Span) -> None:
        if self.tail is not None:
            if self.tail.record(span) is None:
                self.dropped_roots += 1
            return
        with self._lock:
            if self._ring.maxlen is not None and len(self._ring) == self._ring.maxlen:
                self.dropped_roots += 1
                if self._registry is not None and self._registry.enabled:
                    self._registry.counter(
                        "obs_traces_dropped_total",
                        "Completed root spans evicted from the tracer ring buffer",
                        layer="obs",
                        operation="evicted",
                    ).inc()
            self._ring.append(span)

    def roots(self) -> list[Span]:
        """Completed root spans, oldest first (tail-retained when enabled)."""
        if self.tail is not None:
            return self.tail.spans()
        with self._lock:
            return list(self._ring)

    def find_trace(self, trace_id: str) -> list[Span]:
        """Completed roots belonging to one trace, oldest first."""
        return [span for span in self.roots() if span.trace_id == trace_id]

    def reset(self) -> None:
        with self._lock:
            self._ring.clear()
        if self.tail is not None:
            self.tail.reset()
        self._local = threading.local()

    @property
    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def current_context(self) -> TraceContext | None:
        """The active span's propagation context (None when idle)."""
        span = self.current
        if span is None or not span.trace_id:
            return None
        return span.context

    def current_trace_id(self) -> str | None:
        """The active *sampled* trace's id — exemplar-friendly: unsampled
        traces are never recorded, so they yield None rather than an id
        that resolves to nothing."""
        span = self.current
        if span is None or not span.sampled or not span.trace_id:
            return None
        return span.trace_id


def stitch_spans(roots: Iterable[Span]) -> list[Span]:
    """Reassemble per-process trace fragments into whole trees.

    Takes completed roots from any number of tracers (one per simulated
    process). Every root carrying a ``remote_parent`` is attached as a
    child of the span it names — matched on ``(trace_id, span_id)`` —
    and drops out of the returned root list; roots whose remote parent is
    not present (or that never had one) come back as stitched tree roots.

    Attachment mutates ``parent.children`` in place (idempotently), so the
    usual :meth:`Span.walk` / renderers see one tree per trace.
    """
    roots = list(roots)
    index: dict[tuple[str, str], Span] = {}
    for root in roots:
        for _, span in root.walk():
            index[(span.trace_id, span.span_id)] = span
    stitched: list[Span] = []
    for root in roots:
        ctx = root.remote_parent
        parent = index.get((ctx.trace_id, ctx.span_id)) if ctx is not None else None
        if parent is None or parent is root:
            stitched.append(root)
            continue
        if not any(child is root for child in parent.children):
            parent.children.append(root)
            parent.children.sort(key=lambda span: span.start)
    return stitched


class _NullSpan:
    """Shared no-op span; supports the full Span surface.

    This is a process-wide singleton, so nothing on it may be shared
    mutable state: ``attributes`` and ``children`` are properties minting
    a fresh object per access, and :meth:`annotate` discards its input —
    a caller mutating ``span.attributes`` cannot poison later spans.
    """

    name = ""
    duration_s = 0.0
    trace_id = ""
    span_id = ""
    sampled = False
    remote_parent = None

    @property
    def attributes(self) -> dict:
        return {}

    @property
    def children(self) -> list:
        return []

    @property
    def context(self) -> TraceContext | None:
        return None

    def annotate(self, **attributes) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def walk(self, depth: int = 0):
        return iter(())

    def to_dict(self) -> dict:
        return {}


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """Default tracer: every span is the shared no-op instance."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def span(self, name: str, remote: TraceContext | None = None, **attributes):  # type: ignore[override]
        return _NULL_SPAN

    def roots(self) -> list[Span]:
        return []


#: Process-wide no-op singleton.
NULL_TRACER = NullTracer()
