"""Span-based tracing with parent/child nesting and a ring buffer.

A :class:`Tracer` hands out context-manager :class:`Span` objects::

    with tracer.span("server.materialise", page=path) as sp:
        ...
        sp.annotate(assets=len(report.assets))

Timing uses ``time.perf_counter``. Spans nest through a per-thread stack,
so a span opened while another is active becomes its child; completed
*root* spans land in a bounded ring buffer (old traces fall off rather
than growing memory — the tracer can be left attached to a long-running
server). The :data:`NULL_TRACER` default makes every ``with`` a no-op.
"""

from __future__ import annotations

import threading
import time
from collections import deque


class Span:
    """One timed operation; context manager, may carry child spans."""

    __slots__ = ("name", "attributes", "start", "end", "children", "_tracer", "_parent")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self.start: float = 0.0
        self.end: float | None = None
        self.children: list[Span] = []
        self._parent: Span | None = None

    @property
    def duration_s(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def annotate(self, **attributes) -> "Span":
        """Attach extra attributes mid-span."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        self._parent = stack[-1] if stack else None
        if self._parent is not None:
            self._parent.children.append(self)
        stack.append(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        if self._parent is None:
            self._tracer._record(self)

    def walk(self, depth: int = 0):
        """Yield ``(depth, span)`` pairs, pre-order."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def to_dict(self) -> dict:
        """JSON-friendly form (relative times only, keeps runs comparable)."""
        return {
            "name": self.name,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }


class Tracer:
    """Factory for spans; owns the completed-root ring buffer."""

    enabled = True

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self._ring: deque[Span] = deque(maxlen=capacity)
        self._local = threading.local()
        self._lock = threading.Lock()

    def span(self, name: str, **attributes) -> Span:
        return Span(self, name, attributes)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            self._ring.append(span)

    def roots(self) -> list[Span]:
        """Completed root spans, oldest first."""
        with self._lock:
            return list(self._ring)

    def reset(self) -> None:
        with self._lock:
            self._ring.clear()
        self._local = threading.local()

    @property
    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None


class _NullSpan:
    """Shared no-op span; supports the full Span surface."""

    name = ""
    attributes: dict = {}
    children: list = []
    duration_s = 0.0

    def annotate(self, **attributes) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def walk(self, depth: int = 0):
        return iter(())

    def to_dict(self) -> dict:
        return {}


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """Default tracer: every span is the shared no-op instance."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def span(self, name: str, **attributes):  # type: ignore[override]
        return _NULL_SPAN

    def roots(self) -> list[Span]:
        return []


#: Process-wide no-op singleton.
NULL_TRACER = NullTracer()
