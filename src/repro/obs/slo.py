"""Declarative latency objectives with multi-window burn rates.

An :class:`SLObjective` states "``objective`` of observations in
``histogram`` must land at or under ``threshold_s``" — e.g. 99.9 % of
event-loop stall samples under 50 ms. Because the repo's histograms have
fixed deterministic buckets, "good" is the cumulative count of the
largest bucket bound at or under the threshold — conservative: an
observation the buckets cannot prove fast counts as bad.

:class:`SLOTracker` evaluates objectives against the
:class:`~repro.obs.timeseries.TimeSeriesSampler` ring (it registers as a
tick listener), Google-SRE style: for each configured window it takes
the bucket deltas between the window's edges and computes the **burn
rate** — the fraction of the error budget consumed per unit of budget,

    burn = bad_fraction / (1 - objective)

so burn 1.0 spends the budget exactly at the sustainable pace, and the
SRE-workbook alert pair fires on a *fast* burn (default ≥ 14.4 over the
short window — a 30-day budget gone in 2 days) or a *slow* burn
(default ≥ 6 over the long window). Burn rates surface three ways:

* gauges — ``slo_burn_rate_ratio{slo=..., window=...}`` and
  ``slo_error_budget_remaining_ratio{slo=...}``;
* the tracker's :meth:`report`, embedded in the admin ``/healthz`` body;
* ``sww top``'s SLO row.

Windows shorter than the sampler's ring clamp to the data available, so
a freshly started server reports meaningful (if tentative) burn rates
immediately instead of NaNs.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesSampler


@dataclass(frozen=True)
class SLObjective:
    """One latency objective over an existing histogram family."""

    name: str
    histogram: str
    threshold_s: float
    objective: float
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be within (0, 1)")
        if self.threshold_s <= 0:
            raise ValueError("threshold_s must be positive")


@dataclass(frozen=True)
class BurnWindow:
    """One evaluation window: a label and its length in seconds."""

    label: str
    seconds: float
    #: Burn rate at or above which this window raises an alert.
    alert_burn: float


#: The SRE-workbook "2 % of a 30-day budget in an hour" fast/slow pair.
DEFAULT_WINDOWS: tuple[BurnWindow, ...] = (
    BurnWindow("fast", 60.0, 14.4),
    BurnWindow("slow", 600.0, 6.0),
)

#: Objectives every served process tracks out of the box. Thresholds sit
#: on exact bucket bounds of the histograms they cover.
DEFAULT_OBJECTIVES: tuple[SLObjective, ...] = (
    SLObjective(
        "request-latency",
        "sww_request_seconds",
        threshold_s=5.0,
        objective=0.95,
        description="95% of requests answered within 5 s wall-clock",
    ),
    SLObjective(
        "loop-responsiveness",
        "sww_server_loop_stall_seconds",
        threshold_s=0.05,
        objective=0.999,
        description="99.9% of heartbeat probes see the event loop within 50 ms",
    ),
)


class SLOTracker:
    """Evaluates objectives on every sampler tick; exposes burn gauges."""

    def __init__(
        self,
        registry: MetricsRegistry,
        objectives: tuple[SLObjective, ...] = DEFAULT_OBJECTIVES,
        windows: tuple[BurnWindow, ...] = DEFAULT_WINDOWS,
    ) -> None:
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise ValueError("objective names must be unique")
        self.registry = registry
        self.objectives = tuple(objectives)
        self.windows = tuple(windows)
        self._lock = threading.Lock()
        self._last_report: dict = {}

    def attach(self, sampler: TimeSeriesSampler) -> None:
        """Register as a tick listener so evaluation tracks sampling."""
        sampler.listeners.append(self.evaluate)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def evaluate(self, sampler: TimeSeriesSampler) -> dict:
        """Recompute burn rates from the sampler ring; returns the report."""
        report: dict = {}
        for objective in self.objectives:
            bounds, rows = sampler.histogram_family(objective.histogram)
            entry: dict = {
                "objective": objective.objective,
                "threshold_s": objective.threshold_s,
                "description": objective.description,
                "windows": {},
                "healthy": True,
            }
            if rows:
                # The largest bound at or under the threshold: observations
                # landing between it and the threshold count as *bad*
                # (conservative — never credits latency it cannot prove).
                good_index = bisect.bisect_right(bounds, objective.threshold_s) - 1
                budget = 1.0 - objective.objective
                newest = rows[-1]
                for window in self.windows:
                    ticks_back = max(1, round(window.seconds / sampler.interval_s))
                    if ticks_back < len(rows):
                        base_row = rows[len(rows) - 1 - ticks_back]
                    else:
                        # Window reaches past recorded history: baseline at
                        # process start so a fresh server still reports.
                        base_row = (-1, 0, 0.0, [0] * len(newest[3]))
                    burn = self._burn(newest, base_row, good_index, budget)
                    entry["windows"][window.label] = round(burn, 4)
                    self._set_gauge(
                        "slo_burn_rate_ratio",
                        "Error-budget burn rate per objective and window "
                        "(1.0 = spending exactly the sustainable pace)",
                        burn,
                        slo=objective.name,
                        window=window.label,
                    )
                    if burn >= window.alert_burn:
                        entry["healthy"] = False
                remaining = self._budget_remaining(newest, good_index, budget)
                entry["budget_remaining"] = round(remaining, 4)
                self._set_gauge(
                    "slo_error_budget_remaining_ratio",
                    "Fraction of the cumulative error budget still unspent",
                    remaining,
                    slo=objective.name,
                )
            report[objective.name] = entry
        with self._lock:
            self._last_report = report
        return report

    @staticmethod
    def _burn(newest, base, good_index: int, budget: float) -> float:
        """Burn rate over the window [base, newest]."""
        _i1, count1, _s1, cums1 = newest
        _i0, count0, _s0, cums0 = base
        total = count1 - count0
        if total <= 0:
            return 0.0
        good = cums1[good_index] - cums0[good_index] if good_index >= 0 else 0
        bad_fraction = max(0.0, total - good) / total
        return bad_fraction / budget

    @staticmethod
    def _budget_remaining(newest, good_index: int, budget: float) -> float:
        """1 - (cumulative bad fraction / budget), clamped to [0, 1]."""
        _index, count, _sum, cums = newest
        if count <= 0:
            return 1.0
        good = cums[good_index] if good_index >= 0 else 0
        bad_fraction = max(0, count - good) / count
        return min(1.0, max(0.0, 1.0 - bad_fraction / budget))

    def _set_gauge(self, name: str, help: str, value: float, **labels: str) -> None:
        if self.registry.enabled:
            self.registry.gauge(name, help, layer="slo", **labels).set(value)

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #

    def report(self) -> dict:
        """The most recent evaluation (objective name -> windows/burns)."""
        with self._lock:
            return dict(self._last_report)

    @property
    def healthy(self) -> bool:
        """False when any objective's latest evaluation raised an alert."""
        return all(entry.get("healthy", True) for entry in self.report().values())
