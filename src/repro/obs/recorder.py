"""Incident flight recorder: armed triggers snapshot a debugging bundle.

The live plane (metrics, timeseries, SLO burn) tells you *that* the
system degraded; by the time a human attaches, the interesting state is
gone. The flight recorder closes that gap: it rides along armed, and the
moment a trigger fires it snapshots everything a post-mortem needs into
one **incident bundle** — the recent wide events, the tail-retained
traces, a timeseries delta covering the incident window, the concurrent
scheduler's live debug state, the SLO report and optionally a short
profile — then disarms that trigger so one sustained failure produces
one bundle, not a bundle per tick.

Triggers come in two kinds:

* **polled** — evaluated on every sampler tick (:meth:`check`, wired via
  :meth:`attach`): ``slo-fast-burn`` (any objective's fast-window burn at
  or over the alert threshold) and ``loop-stall`` (the event-loop
  heartbeat gauge over ``stall_threshold_s``);
* **pushed** — reported by the layer that saw the failure via
  :meth:`note`: ``protocol-error`` (connection terminated with a non-zero
  GOAWAY error code, or an H2 protocol violation) and
  ``generation-failure`` (an exception out of request materialisation).

Bundles are **deterministic** modulo wall-clock: :func:`bundle_signature`
projects a bundle onto its order- and identity-relevant content (trigger,
event fields minus durations, trace names, SLO objective names) and
hashes it — the telemetry benchmark asserts the same injected incident
yields the same signature across runs at a fixed seed.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path

#: Trigger kinds a recorder can arm.
TRIGGER_SLO_FAST_BURN = "slo-fast-burn"
TRIGGER_LOOP_STALL = "loop-stall"
TRIGGER_PROTOCOL_ERROR = "protocol-error"
TRIGGER_GENERATION_FAILURE = "generation-failure"

DEFAULT_TRIGGERS = (
    TRIGGER_SLO_FAST_BURN,
    TRIGGER_LOOP_STALL,
    TRIGGER_PROTOCOL_ERROR,
    TRIGGER_GENERATION_FAILURE,
)

#: Fields stripped from events/traces when computing a bundle signature —
#: everything wall-clock- or run-dependent.
_VOLATILE_FIELDS = frozenset(
    {"duration_s", "writer_queue_s", "trace_id", "seq", "stream_id"}
)

BUNDLE_FORMAT = "sww-incident/1"


class FlightRecorder:
    """Armed incident capture over the observability plane."""

    def __init__(
        self,
        registry=None,
        events=None,
        tracer=None,
        sampler=None,
        slo=None,
        server=None,
        triggers=DEFAULT_TRIGGERS,
        capacity: int = 8,
        recent_events: int = 256,
        stall_threshold_s: float = 0.05,
        timeseries_window_ticks: int = 64,
    ) -> None:
        if capacity <= 0:
            raise ValueError("incident capacity must be positive")
        self.registry = registry
        self.events = events
        self.tracer = tracer
        self.sampler = sampler
        self.slo = slo
        self.server = server
        self.capacity = capacity
        self.recent_events = recent_events
        self.stall_threshold_s = stall_threshold_s
        self.timeseries_window_ticks = timeseries_window_ticks
        self._lock = threading.Lock()
        self._armed: set[str] = set(triggers)
        self._incidents: list[dict] = []
        self._seq = 0

    # ------------------------------------------------------------------ #
    # Arming
    # ------------------------------------------------------------------ #

    def armed(self) -> set[str]:
        with self._lock:
            return set(self._armed)

    def rearm(self, kind: str | None = None) -> None:
        """Re-arm one trigger (or all) after a capture disarmed it."""
        with self._lock:
            if kind is None:
                self._armed.update(DEFAULT_TRIGGERS)
            elif kind not in DEFAULT_TRIGGERS:
                raise ValueError(f"unknown trigger {kind!r}")
            else:
                self._armed.add(kind)

    def _take(self, kind: str) -> bool:
        """Atomically consume an armed trigger; False when not armed."""
        with self._lock:
            if kind not in self._armed:
                return False
            self._armed.discard(kind)
            return True

    # ------------------------------------------------------------------ #
    # Triggers
    # ------------------------------------------------------------------ #

    def attach(self, sampler) -> "FlightRecorder":
        """Poll the tick-driven triggers on every sampler tick."""
        self.sampler = sampler
        sampler.listeners.append(lambda _s: self.check())
        return self

    def note(self, kind: str, detail: str = "") -> dict | None:
        """Pushed trigger from a layer that saw a failure first-hand."""
        if kind not in DEFAULT_TRIGGERS:
            raise ValueError(f"unknown trigger {kind!r}")
        if not self._take(kind):
            return None
        return self._capture(kind, detail)

    def check(self) -> list[dict]:
        """Evaluate the polled triggers; returns any captured incidents."""
        captured: list[dict] = []
        burn = self._fast_burn_detail()
        if burn is not None and self._take(TRIGGER_SLO_FAST_BURN):
            captured.append(self._capture(TRIGGER_SLO_FAST_BURN, burn))
        stall = self._stall_detail()
        if stall is not None and self._take(TRIGGER_LOOP_STALL):
            captured.append(self._capture(TRIGGER_LOOP_STALL, stall))
        return captured

    def _fast_burn_detail(self) -> str | None:
        if self.slo is None:
            return None
        fast_alert = next(
            (w.alert_burn for w in self.slo.windows if w.label == "fast"), None
        )
        if fast_alert is None:
            return None
        burning = []
        for name, entry in sorted(self.slo.report().items()):
            burn = entry.get("windows", {}).get("fast")
            if burn is not None and burn >= fast_alert:
                burning.append(f"{name} fast-burn {burn:.1f}x")
        return "; ".join(burning) if burning else None

    def _stall_detail(self) -> str | None:
        if self.registry is None:
            return None
        worst = self.registry.value(
            "sww_server_loop_stall_max_seconds", layer="sww", operation="loop"
        )
        if worst > self.stall_threshold_s:
            return f"event-loop stall {worst * 1000:.0f}ms (threshold {self.stall_threshold_s * 1000:.0f}ms)"
        return None

    # ------------------------------------------------------------------ #
    # Capture
    # ------------------------------------------------------------------ #

    def _capture(self, kind: str, detail: str) -> dict:
        with self._lock:
            self._seq += 1
            incident_id = f"incident-{self._seq}"
        bundle = {
            "format": BUNDLE_FORMAT,
            "incident": incident_id,
            "trigger": {"kind": kind, "detail": detail},
            "events": [
                event.to_dict()
                for event in (
                    self.events.events(last=self.recent_events)
                    if self.events is not None
                    else []
                )
            ],
            "traces": [
                span.to_dict()
                for span in (self.tracer.roots() if self.tracer is not None else [])
            ],
            "timeseries": self._timeseries_delta(),
            "scheduler": self._scheduler_state(),
            "slo": self.slo.report() if self.slo is not None else {},
        }
        with self._lock:
            self._incidents.append(bundle)
            while len(self._incidents) > self.capacity:
                self._incidents.pop(0)
        if self.registry is not None and self.registry.enabled:
            self.registry.counter(
                "obs_incidents_total",
                "Incident bundles captured, by trigger kind",
                layer="obs",
                operation=kind,
            ).inc()
        return bundle

    def _timeseries_delta(self) -> dict | None:
        if self.sampler is None:
            return None
        since = max(0, self.sampler.last_tick - self.timeseries_window_ticks)
        return self.sampler.snapshot(since=since if since > 0 else None)

    def _scheduler_state(self) -> dict | None:
        if self.server is None:
            return None
        return {
            "connections": [session.debug_state() for session in self.server.sessions()]
        }

    # ------------------------------------------------------------------ #
    # Access / export
    # ------------------------------------------------------------------ #

    def incidents(self) -> list[dict]:
        """Captured bundles, oldest first."""
        with self._lock:
            return list(self._incidents)

    def summaries(self) -> list[dict]:
        """One row per incident for listings."""
        return [
            {
                "incident": bundle["incident"],
                "trigger": bundle["trigger"],
                "events": len(bundle["events"]),
                "traces": len(bundle["traces"]),
            }
            for bundle in self.incidents()
        ]

    def get(self, incident_id: str) -> dict | None:
        for bundle in self.incidents():
            if bundle["incident"] == incident_id:
                return bundle
        return None

    def dump(self, directory: str | Path) -> list[Path]:
        """Write each bundle to ``<dir>/<incident-id>.json``."""
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        written = []
        for bundle in self.incidents():
            path = target / f"{bundle['incident']}.json"
            path.write_text(json.dumps(bundle, sort_keys=True, indent=2) + "\n")
            written.append(path)
        return written


def _signature_projection(bundle: dict) -> dict:
    """The deterministic slice of a bundle: drop wall-clock/id fields."""

    def clean_event(fields: dict) -> dict:
        return {
            key: value
            for key, value in sorted(fields.items())
            if key not in _VOLATILE_FIELDS
        }

    def clean_span(span: dict) -> dict:
        return {
            "name": span.get("name"),
            "attributes": {
                key: value
                for key, value in sorted(span.get("attributes", {}).items())
                if key not in _VOLATILE_FIELDS
            },
            "children": [clean_span(child) for child in span.get("children", [])],
        }

    return {
        "format": bundle.get("format"),
        "trigger_kind": bundle.get("trigger", {}).get("kind"),
        "events": [clean_event(event) for event in bundle.get("events", [])],
        "traces": [clean_span(span) for span in bundle.get("traces", [])],
        "slo_objectives": sorted(bundle.get("slo", {})),
    }


def bundle_signature(bundle: dict) -> str:
    """Stable hash of a bundle's deterministic content.

    Two captures of the same injected incident at the same seed must
    produce the same signature; wall-clock durations, minted ids and
    stream numbering are excluded.
    """
    canonical = json.dumps(
        _signature_projection(bundle), sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
