"""Metric-name convention checker (the observability lint).

Every metric the codebase emits must be discoverable and predictable:
``<subsystem>_<name>_<unit>`` with a known subsystem prefix, a known
unit suffix, counters ending in ``_total``, and a mention in
``docs/OBSERVABILITY.md``. This module scans ``src/`` for instrument
registrations (``registry.counter("...")`` etc.), checks each name
against the convention, and reports drift; ``tests/obs/
test_metric_catalog.py`` turns any violation into a suite failure, so a
new metric cannot land half-documented.

The scanner is intentionally a source-level regex, not an import-time
hook: it catches names on code paths no test exercises, which is exactly
where drift hides.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

#: First name token must be one of these layer prefixes.
SUBSYSTEMS: frozenset[str] = frozenset(
    {"http2", "sww", "genai", "cdn", "gencache", "batching", "obs", "slo", "serving"}
)

#: Last name token must be one of these units/quantities.
UNITS: frozenset[str] = frozenset(
    {
        "seconds",
        "bytes",
        "total",
        "wh",
        "ratio",
        "streams",
        "depth",
        "inflight",
        "evictions",
        "efficiency",
        "size",
        "rate",
    }
)

#: Matches counter/gauge/histogram registration calls with a literal
#: name string, including multi-line calls where the name sits on the
#: next line, and the SLO tracker's ``_set_gauge`` wrapper.
_REGISTRATION_RE = re.compile(
    r"\.(?:_set_)?(counter|gauge|histogram)\(\s*\n?\s*\"([A-Za-z0-9_]+)\"",
    re.MULTILINE,
)

_NAME_RE = re.compile(r"^[a-z][a-z0-9]*(_[a-z0-9]+)+$")

#: Wide-event field names: snake_case, single tokens allowed (``event``).
_EVENT_FIELD_RE = re.compile(r"^[a-z][a-z0-9]*(_[a-z0-9]+)*$")


@dataclass(frozen=True)
class MetricSite:
    """One instrument registration found in source."""

    name: str
    kind: str
    path: str
    line: int


def scan_sources(src_root: Path) -> list[MetricSite]:
    """Every instrument registration in ``src_root``, sorted by name."""
    sites: list[MetricSite] = []
    for path in sorted(src_root.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        for match in _REGISTRATION_RE.finditer(text):
            kind, name = match.group(1), match.group(2)
            line = text.count("\n", 0, match.start()) + 1
            sites.append(MetricSite(name, kind, str(path.relative_to(src_root)), line))
    return sorted(sites, key=lambda s: (s.name, s.path, s.line))


def check_name(name: str, kind: str) -> list[str]:
    """Violation messages for one metric name (empty = conforming)."""
    problems: list[str] = []
    if not _NAME_RE.match(name):
        problems.append(
            f"{name}: not of the form <subsystem>_<name>_<unit> "
            "(lower-case tokens joined by underscores)"
        )
        return problems
    tokens = name.split("_")
    if tokens[0] not in SUBSYSTEMS:
        problems.append(
            f"{name}: unknown subsystem prefix {tokens[0]!r} "
            f"(expected one of {', '.join(sorted(SUBSYSTEMS))})"
        )
    if tokens[-1] not in UNITS:
        problems.append(
            f"{name}: unknown unit suffix {tokens[-1]!r} "
            f"(expected one of {', '.join(sorted(UNITS))})"
        )
    if kind == "counter" and tokens[-1] != "total":
        problems.append(f"{name}: counters must end in _total")
    if kind != "counter" and tokens[-1] == "total":
        problems.append(f"{name}: _total names are reserved for counters, not {kind}s")
    return problems


def check_documented(names: set[str], doc_path: Path) -> list[str]:
    """Names missing from the observability reference document."""
    text = doc_path.read_text(encoding="utf-8") if doc_path.exists() else ""
    return sorted(
        f"{name}: not documented in {doc_path.name}"
        for name in names
        if name not in text
    )


def check_event_field(name: str) -> list[str]:
    """Violation messages for one wide-event field name (empty = ok)."""
    if not _EVENT_FIELD_RE.match(name):
        return [
            f"{name}: wide-event fields must be snake_case "
            "(lower-case tokens joined by underscores)"
        ]
    return []


def lint_event_fields(doc_path: Path, fields: dict[str, str] | None = None) -> list[str]:
    """Lint the wide-event schema: snake_case names, documented, described.

    ``fields`` defaults to the live :data:`repro.obs.events.EVENT_FIELDS`
    schema — the same enforce-at-the-source approach as the metric scan:
    every field an emitter can set comes from that dict, so linting the
    dict lints every annotation site.
    """
    if fields is None:
        from repro.obs.events import EVENT_FIELDS

        fields = EVENT_FIELDS
    problems: list[str] = []
    for name, description in fields.items():
        problems.extend(
            f"event field {problem}" for problem in check_event_field(name)
        )
        if not description or not description.strip():
            problems.append(f"event field {name}: missing a schema description")
    problems.extend(
        f"event field {problem}"
        for problem in check_documented(set(fields), doc_path)
    )
    return problems


def lint(src_root: Path, doc_path: Path) -> list[str]:
    """All violations across the tree: naming drift, undocumented metric
    names, and wide-event schema drift."""
    sites = scan_sources(src_root)
    problems: list[str] = []
    seen: set[tuple[str, str]] = set()
    for site in sites:
        if (site.name, site.kind) in seen:
            continue
        seen.add((site.name, site.kind))
        for problem in check_name(site.name, site.kind):
            problems.append(f"{site.path}:{site.line}: {problem}")
    problems.extend(check_documented({site.name for site in sites}, doc_path))
    problems.extend(lint_event_fields(doc_path))
    return problems
