"""Counters, gauges and fixed-bucket histograms (the SWW metrics core).

Design constraints (DESIGN.md-grade, enforced by tests):

* **deterministic** — no wall-clock timestamps; histograms use fixed,
  explicit bucket bounds so two identical runs export identical text;
* **thread-safe** — every mutation takes the instrument's lock (the
  asyncio server and the benchmark harness share registries across
  threads);
* **labeled** — instruments are keyed by ``(name, labels)``; the repo
  convention is the ``{layer, operation, model}`` label set (see
  docs/OBSERVABILITY.md), but arbitrary labels are accepted;
* **near-zero overhead when disabled** — :data:`NULL_REGISTRY` returns
  shared no-op instruments and accumulates nothing, so instrumented hot
  paths cost one attribute check when observability is off.
"""

from __future__ import annotations

import bisect
import threading
from typing import Iterator

#: Default histogram bucket upper bounds, in (simulated) seconds. Spans
#: HPACK micro-operations through laptop-scale page generation (~310 s).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    30.0,
    60.0,
    300.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value."""

    kind = "counter"

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> "Counter":
        """A detached point-in-time copy (taken under the instrument lock)."""
        copy = Counter(self.name, self.labels)
        with self._lock:
            copy._value = self._value
        return copy


class Gauge:
    """A value that can go up and down (or be set outright)."""

    kind = "gauge"

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> "Gauge":
        """A detached point-in-time copy (taken under the instrument lock)."""
        copy = Gauge(self.name, self.labels)
        with self._lock:
            copy._value = self._value
        return copy


class Histogram:
    """Fixed-bucket histogram with cumulative export semantics.

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket always
    exists. Export follows the Prometheus convention: each ``le`` bucket
    reports the count of observations less than or equal to its bound.
    """

    kind = "histogram"

    __slots__ = ("name", "labels", "buckets", "_counts", "_sum", "_count", "_exemplars", "_lock")

    def __init__(self, name: str, labels: LabelKey, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted ascending")
        self.name = name
        self.labels = labels
        self.buckets = tuple(buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0
        #: Per-bucket exemplar: the (trace_id, value) of the latest traced
        #: observation that landed in that bucket (OpenMetrics semantics).
        self._exemplars: list[tuple[str, float] | None] = [None] * (len(self.buckets) + 1)
        self._lock = threading.Lock()

    def observe(self, value: float, trace_id: str | None = None) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if trace_id:
                self._exemplars[index] = (trace_id, value)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    @property
    def value(self) -> float:
        """For uniform registry arithmetic, a histogram's value is its sum."""
        return self._sum

    def cumulative_counts(self) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        with self._lock:
            counts = list(self._counts)
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def snapshot(self) -> "Histogram":
        """A detached point-in-time copy: counts, sum, count and exemplars
        are mutually consistent because they are copied under the same lock
        :meth:`observe` mutates them under."""
        copy = Histogram(self.name, self.labels, self.buckets)
        with self._lock:
            copy._counts = list(self._counts)
            copy._sum = self._sum
            copy._count = self._count
            copy._exemplars = list(self._exemplars)
        return copy

    def exemplars(self) -> list[tuple[float, str, float]]:
        """(upper_bound, trace_id, observed_value) for buckets holding one."""
        bounds = (*self.buckets, float("inf"))
        with self._lock:
            return [
                (bound, exemplar[0], exemplar[1])
                for bound, exemplar in zip(bounds, self._exemplars)
                if exemplar is not None
            ]


Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create store of labeled instruments.

    A metric *family* (one name) has a fixed kind and help text; the first
    caller wins and later mismatching kinds raise — mixing a counter and a
    gauge under one name is always a bug.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, tuple[str, str]] = {}  # name -> (kind, help)
        self._instruments: dict[tuple[str, LabelKey], Instrument] = {}

    # ------------------------------------------------------------------ #
    # Instrument accessors
    # ------------------------------------------------------------------ #

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            self._register_family(name, "histogram", help)
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = Histogram(name, key[1], buckets)
                self._instruments[key] = instrument
            return instrument  # type: ignore[return-value]

    def _get(self, cls: type, name: str, help: str, labels: dict[str, str]) -> Instrument:
        key = (name, _label_key(labels))
        with self._lock:
            self._register_family(name, cls.kind, help)
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[1])
                self._instruments[key] = instrument
            return instrument

    def _register_family(self, name: str, kind: str, help: str) -> None:
        existing = self._families.get(name)
        if existing is None:
            self._families[name] = (kind, help)
        elif existing[0] != kind:
            raise ValueError(f"metric {name!r} already registered as {existing[0]}, not {kind}")
        elif help and not existing[1]:
            self._families[name] = (kind, help)

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #

    def collect(self) -> Iterator[tuple[str, str, str, list[Instrument]]]:
        """Yield ``(name, kind, help, instruments)`` sorted by name/labels."""
        with self._lock:
            families = sorted(self._families.items())
            instruments = dict(self._instruments)
        for name, (kind, help) in families:
            members = [inst for (n, _), inst in sorted(instruments.items()) if n == name]
            yield name, kind, help, members

    def snapshot(self) -> "MetricsRegistry":
        """A detached point-in-time copy of the whole registry.

        The family/instrument maps are copied under the registry lock and
        every instrument is copied under its own lock, so a snapshot taken
        while writer tasks and executor threads mutate instruments never
        shows a torn histogram (``+Inf`` cumulative always equals
        ``count``). Exporters and the time-series sampler read snapshots,
        never live instruments.
        """
        snap = MetricsRegistry()
        with self._lock:
            snap._families = dict(self._families)
            items = list(self._instruments.items())
        snap._instruments = {key: inst.snapshot() for key, inst in items}
        return snap

    def value(self, name: str, **labels: str) -> float:
        """One instrument's value (histograms report their sum); 0 if absent."""
        instrument = self._instruments.get((name, _label_key(labels)))
        return instrument.value if instrument is not None else 0.0

    def total(self, name: str) -> float:
        """Sum a family's value across every label combination."""
        return sum(inst.value for (n, _), inst in self._instruments.items() if n == name)

    def count(self, name: str) -> int:
        """Total histogram observation count across a family's label sets."""
        return sum(
            inst.count
            for (n, _), inst in self._instruments.items()
            if n == name and isinstance(inst, Histogram)
        )

    def __len__(self) -> int:
        return len(self._instruments)

    def reset(self) -> None:
        with self._lock:
            self._families.clear()
            self._instruments.clear()


class _NullInstrument:
    """Shared do-nothing instrument handed out by :class:`NullRegistry`."""

    kind = "null"
    name = ""
    labels: LabelKey = ()
    value = 0.0
    sum = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float, trace_id: str | None = None) -> None:
        pass

    def cumulative_counts(self) -> list[tuple[float, int]]:
        return []

    def exemplars(self) -> list[tuple[float, str, float]]:
        return []

    def snapshot(self) -> "_NullInstrument":
        return self


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The default registry: accepts every call, accumulates nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, help: str = "", **labels: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", **labels: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS, **labels: str):  # type: ignore[override]
        return _NULL_INSTRUMENT


#: Process-wide no-op singleton; safe to share between every component.
NULL_REGISTRY = NullRegistry()
