"""W3C-style trace-context propagation (the ``traceparent`` header).

One fetch in the SWW stack can cross three processes — generative client,
edge node, origin server — and the paper's claims are about where time and
bytes go *across* those hops. This module carries the causal link over the
HTTP/2 wire the same way the W3C Trace Context spec does:

    traceparent: 00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>

* the **trace-id** (16 bytes) names the whole distributed trace and is
  minted once, by whichever process starts the root span;
* the **span-id** (8 bytes) names the sender's active span, which the
  receiver records as its ``remote_parent``;
* bit 0 of **flags** is the sampled flag; head-based sampling decided at
  the root is honoured on every later hop.

IDs come from a seeded :class:`IdSource` so traces stay deterministic —
two identical runs produce byte-identical trace exports.

Parsing is deliberately tolerant: anything malformed (wrong field widths,
non-hex, all-zero ids, truncation) yields ``None`` and the receiver simply
starts its own trace, per the spec's "restart the trace" guidance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Request header carrying the context (lowercase, HTTP/2 style).
TRACEPARENT_HEADER = b"traceparent"

#: The version prefix this implementation emits.
SUPPORTED_VERSION = "00"

TRACE_ID_HEX_LEN = 32  # 16 bytes
SPAN_ID_HEX_LEN = 16  # 8 bytes

_SAMPLED_FLAG = 0x01


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one in-flight trace."""

    trace_id: str  # 32 lowercase hex chars, not all zero
    span_id: str  # 16 lowercase hex chars, not all zero
    sampled: bool = True


def _is_hex(value: str) -> bool:
    try:
        int(value, 16)
    except ValueError:
        return False
    return value == value.lower()


def format_traceparent(ctx: TraceContext) -> str:
    """Render a context in the ``00-…-…-…`` wire form."""
    flags = _SAMPLED_FLAG if ctx.sampled else 0
    return f"{SUPPORTED_VERSION}-{ctx.trace_id}-{ctx.span_id}-{flags:02x}"


def encode_traceparent(ctx: TraceContext) -> bytes:
    """The header value as bytes, ready for an HPACK header list."""
    return format_traceparent(ctx).encode("ascii")


def parse_traceparent(value: str | bytes | None) -> TraceContext | None:
    """Decode a ``traceparent`` header value; ``None`` on anything malformed.

    Accepts future versions (any two-hex-digit version except ``ff``) as
    long as the first four fields parse, per W3C §4 forward compatibility.
    """
    if value is None:
        return None
    if isinstance(value, (bytes, bytearray)):
        try:
            value = bytes(value).decode("ascii")
        except UnicodeDecodeError:
            return None
    parts = value.strip().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, span_id, flags = parts[0], parts[1], parts[2], parts[3]
    if len(version) != 2 or not _is_hex(version) or version == "ff":
        return None
    if version == SUPPORTED_VERSION and len(parts) != 4:
        return None
    if len(trace_id) != TRACE_ID_HEX_LEN or not _is_hex(trace_id):
        return None
    if len(span_id) != SPAN_ID_HEX_LEN or not _is_hex(span_id):
        return None
    if len(flags) != 2 or not _is_hex(flags):
        return None
    if set(trace_id) == {"0"} or set(span_id) == {"0"}:
        return None
    return TraceContext(
        trace_id=trace_id,
        span_id=span_id,
        sampled=bool(int(flags, 16) & _SAMPLED_FLAG),
    )


class IdSource:
    """Deterministic, injectable trace/span id generator.

    Seeded with an integer it becomes fully reproducible (tests, the
    ``sww trace`` CLI); unseeded it draws from the OS like any tracer.
    The head-based sampling coin also lives here so a seed pins the whole
    trace shape, ids and sampling decisions alike.

    ``namespace`` (multi-worker serving: the worker pid) is mixed into the
    seed so N workers forked from one configuration draw from N disjoint
    deterministic streams instead of minting colliding ids. The mix is
    pure integer arithmetic — never ``hash(str)`` — so it is stable across
    processes regardless of ``PYTHONHASHSEED``.
    """

    def __init__(self, seed: int | None = None, namespace: int | None = None) -> None:
        if seed is not None and namespace is not None:
            # Weyl-sequence style mixing (golden-ratio multiplier); +1 keeps
            # namespace 0 distinct from "no namespace". Unseeded sources
            # ignore the namespace — OS entropy is already collision-free.
            seed = (seed * 0x9E3779B97F4A7C15 + namespace + 1) & (2**64 - 1)
        self._rng = random.Random(seed)

    def trace_id(self) -> str:
        while True:
            value = self._rng.getrandbits(TRACE_ID_HEX_LEN * 4)
            if value:
                return f"{value:0{TRACE_ID_HEX_LEN}x}"

    def span_id(self) -> str:
        while True:
            value = self._rng.getrandbits(SPAN_ID_HEX_LEN * 4)
            if value:
                return f"{value:0{SPAN_ID_HEX_LEN}x}"

    def sample(self, rate: float) -> bool:
        """One head-sampling coin flip at ``rate`` (0 → never, 1 → always)."""
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        return self._rng.random() < rate
