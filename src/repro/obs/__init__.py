"""repro.obs — metrics, tracing and logging for the SWW reproduction.

The paper's evaluation is a measurement story; this package makes those
measurements first-class instead of ad hoc per benchmark:

* :class:`MetricsRegistry` — thread-safe counters / gauges / fixed-bucket
  histograms, labeled by the ``{layer, operation, model}`` convention;
* :class:`Tracer` — nested ``perf_counter`` spans with a ring buffer;
* exporters — Prometheus text, JSON-lines, and terminal renderers;
* :func:`logging_setup` — the unified ``repro.*`` logger hierarchy.

Everything defaults to the no-op implementations (:data:`NULL_REGISTRY`,
:data:`NULL_TRACER`), so instrumented hot paths cost one attribute check
when observability is off. Components take ``registry=`` / ``tracer=``
constructor arguments; when omitted they fall back to the process-wide
defaults set with :func:`configure` (which the CLI uses).
"""

from __future__ import annotations

import json
import logging
import sys

from repro.obs.catalog import (
    SUBSYSTEMS,
    UNITS,
    MetricSite,
    check_documented,
    check_event_field,
    check_name,
    lint,
    lint_event_fields,
    scan_sources,
)
from repro.obs.events import (
    EVENT_FIELDS,
    EVENTS_FORMAT,
    NULL_EVENT_LOG,
    EventLog,
    NullEventLog,
    WideEvent,
    add_current,
    annotate_current,
    current_event,
    events_to_columnar,
    events_to_jsonl,
)
from repro.obs.export import (
    METRICS_DUMP_FORMAT,
    dump_registry,
    load_registry,
    merge_registry_dumps,
    render_metrics_table,
    render_span_tree,
    spans_to_jsonl,
    to_chrome_trace,
    to_jsonl,
    to_openmetrics,
    to_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.propagation import (
    TRACEPARENT_HEADER,
    IdSource,
    TraceContext,
    encode_traceparent,
    format_traceparent,
    parse_traceparent,
)
from repro.obs.profiler import Profile, WallClockProfiler
from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    DEFAULT_WINDOWS,
    BurnWindow,
    SLObjective,
    SLOTracker,
)
from repro.obs.timeseries import (
    SNAPSHOT_FORMAT,
    TimeSeriesSampler,
    family_of,
    merge_snapshots,
    quantile_from_cumulative,
    series_key,
    snapshot_last,
    snapshot_quantile,
    snapshot_rate,
)
from repro.obs.recorder import (
    BUNDLE_FORMAT,
    DEFAULT_TRIGGERS,
    FlightRecorder,
    bundle_signature,
)
from repro.obs.tracing import (
    KEEP_BASELINE,
    KEEP_ERROR,
    KEEP_SLOW,
    NULL_TRACER,
    NullTracer,
    Span,
    TailSampler,
    Tracer,
    stitch_spans,
)

#: Process-wide defaults, swapped by :func:`configure`.
_default_registry: MetricsRegistry = NULL_REGISTRY
_default_tracer: Tracer = NULL_TRACER
_default_events: EventLog = NULL_EVENT_LOG


def configure(
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    events: EventLog | None = None,
) -> None:
    """Install process-wide default observability sinks.

    Passing ``None`` for any sink resets it to the no-op singleton.
    Explicit constructor injection always wins over these defaults.
    """
    global _default_registry, _default_tracer, _default_events
    _default_registry = registry if registry is not None else NULL_REGISTRY
    _default_tracer = tracer if tracer is not None else NULL_TRACER
    _default_events = events if events is not None else NULL_EVENT_LOG


def get_registry() -> MetricsRegistry:
    return _default_registry


def get_tracer() -> Tracer:
    return _default_tracer


def get_event_log() -> EventLog:
    return _default_events


_HANDLER_MARK = "_repro_obs_handler"
DEFAULT_LOG_FORMAT = "%(levelname)-7s %(name)s: %(message)s"
#: Sentinel for :func:`logging_setup`: one JSON object per line.
JSON_LOG_FORMAT = "json"


class _JsonLogFormatter(logging.Formatter):
    """One JSON object per line, field names shared with wide events.

    ``level``/``logger``/``message`` are the log-specific keys; when the
    record fires inside a bound wide event the line also carries that
    event's ``trace_id`` and ``seq``, so log lines join against the
    event stream (and ``error`` carries the exception class, same key as
    the wide-event schema).
    """

    def format(self, record: logging.LogRecord) -> str:
        doc: dict = {
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info and record.exc_info[0] is not None:
            doc["error"] = record.exc_info[0].__name__
        event = current_event()
        if event is not None and event.fields:
            if "trace_id" in event.fields:
                doc["trace_id"] = event.fields["trace_id"]
            if "seq" in event.fields:
                doc["seq"] = event.fields["seq"]
        return json.dumps(doc, sort_keys=True, default=str)


def logging_setup(
    level: int | str = logging.INFO,
    fmt: str = DEFAULT_LOG_FORMAT,
    stream=None,
) -> logging.Logger:
    """Configure the unified ``repro`` logger hierarchy.

    Idempotent: repeat calls replace the handler this function installed
    rather than stacking duplicates. Module loggers obtained with
    ``logging.getLogger("repro.<module>")`` inherit the level/handler.
    Pass ``fmt="json"`` for structured output (one JSON object per
    line); any other ``fmt`` is a classic percent-style format string.
    """
    logger = logging.getLogger("repro")
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
        if not isinstance(level, int):
            raise ValueError(f"unknown log level {level!r}")
    logger.setLevel(level)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    if fmt == JSON_LOG_FORMAT:
        handler.setFormatter(_JsonLogFormatter())
    else:
        handler.setFormatter(logging.Formatter(fmt))
    setattr(handler, _HANDLER_MARK, True)
    logger.addHandler(handler)
    logger.propagate = False
    return logger


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "DEFAULT_BUCKETS",
    "DEFAULT_LOG_FORMAT",
    "JSON_LOG_FORMAT",
    "configure",
    "get_registry",
    "get_tracer",
    "get_event_log",
    "logging_setup",
    "EventLog",
    "NullEventLog",
    "NULL_EVENT_LOG",
    "WideEvent",
    "EVENT_FIELDS",
    "EVENTS_FORMAT",
    "add_current",
    "annotate_current",
    "current_event",
    "events_to_jsonl",
    "events_to_columnar",
    "TailSampler",
    "KEEP_ERROR",
    "KEEP_SLOW",
    "KEEP_BASELINE",
    "FlightRecorder",
    "DEFAULT_TRIGGERS",
    "BUNDLE_FORMAT",
    "bundle_signature",
    "to_prometheus",
    "to_openmetrics",
    "to_jsonl",
    "to_chrome_trace",
    "METRICS_DUMP_FORMAT",
    "dump_registry",
    "load_registry",
    "merge_registry_dumps",
    "render_metrics_table",
    "render_span_tree",
    "spans_to_jsonl",
    "stitch_spans",
    "IdSource",
    "TraceContext",
    "TRACEPARENT_HEADER",
    "format_traceparent",
    "encode_traceparent",
    "parse_traceparent",
    "TimeSeriesSampler",
    "SNAPSHOT_FORMAT",
    "series_key",
    "family_of",
    "merge_snapshots",
    "snapshot_last",
    "snapshot_rate",
    "snapshot_quantile",
    "quantile_from_cumulative",
    "Profile",
    "WallClockProfiler",
    "SLObjective",
    "SLOTracker",
    "BurnWindow",
    "DEFAULT_OBJECTIVES",
    "DEFAULT_WINDOWS",
    "MetricSite",
    "SUBSYSTEMS",
    "UNITS",
    "scan_sources",
    "check_name",
    "check_documented",
    "check_event_field",
    "lint",
    "lint_event_fields",
]
