"""Sampling wall-clock profiler across every live thread.

The serving hot path is spread over three execution contexts — the
asyncio event-loop thread (read loop + ConnectionWriter task), the
request-logic executor threads, and the batching engine's dispatcher
thread. A cProfile-style tracing profiler can't see across them and
distorts the hot path it instruments; this module instead *samples*:
a daemon thread wakes every ``interval_s`` and captures each thread's
current stack via ``sys._current_frames()``, attributing one tick of
wall-clock time to it.

The captured :class:`Profile` exports two formats:

* :meth:`Profile.collapsed` — Brendan Gregg collapsed-stack text
  (``thread;frame;frame count``), loadable by flamegraph.pl and
  speedscope;
* :meth:`Profile.to_chrome_trace` — Trace Event Format JSON in the same
  shape as :func:`repro.obs.export.to_chrome_trace` (one named process
  row per thread, nested complete events), so a profile opens in
  Perfetto next to the distributed traces PR 2 introduced. Contiguous
  ticks with a common stack prefix merge into one event, reconstructing
  a flame chart from the samples.

Sampling is cooperative with the GIL: capturing frames is a dict copy,
so overhead is O(threads × stack depth) per tick — at the default 5 ms
interval it is well under the telemetry plane's 5 % budget (CI-gated in
``benchmarks/test_telemetry_overhead.py``).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections import Counter as _TallyCounter
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry

#: Default time between samples (5 ms ≈ 200 Hz).
DEFAULT_INTERVAL_S = 0.005

#: Hard ceiling on retained ticks so a forgotten profiler cannot grow
#: unbounded (at the default interval this is ~100 s of profile).
DEFAULT_MAX_TICKS = 20_000


def _frame_label(frame) -> str:
    """``module.py:function`` — short enough to read in a flamegraph."""
    code = frame.f_code
    filename = code.co_filename.rsplit("/", 1)[-1]
    return f"{filename}:{code.co_name}"


def _capture_stacks(skip_idents: set[int]) -> dict[str, tuple[str, ...]]:
    """One sample: thread label -> root-first stack of frame labels."""
    frames = sys._current_frames()
    names: dict[int, str] = {}
    for thread in threading.enumerate():
        if thread.ident is not None:
            names[thread.ident] = thread.name
    used: set[str] = set()
    sample: dict[str, tuple[str, ...]] = {}
    for ident, frame in frames.items():
        if ident in skip_idents:
            continue
        label = names.get(ident, f"thread-{ident}")
        if label in used:
            label = f"{label}#{ident}"
        used.add(label)
        stack: list[str] = []
        while frame is not None:
            stack.append(_frame_label(frame))
            frame = frame.f_back
        sample[label] = tuple(reversed(stack))
    return sample


@dataclass
class Profile:
    """The result of one profiling run: a sequence of per-tick samples."""

    interval_s: float
    #: One entry per sampling tick: thread label -> root-first stack.
    ticks: list[dict[str, tuple[str, ...]]] = field(default_factory=list)

    @property
    def sample_count(self) -> int:
        """Total (thread, tick) stack samples captured."""
        return sum(len(tick) for tick in self.ticks)

    @property
    def duration_s(self) -> float:
        return len(self.ticks) * self.interval_s

    def threads(self) -> list[str]:
        seen: set[str] = set()
        for tick in self.ticks:
            seen.update(tick)
        return sorted(seen)

    def collapsed(self) -> str:
        """Collapsed-stack text: ``thread;frame;frame count`` per line.

        Loadable by speedscope and flamegraph.pl; counts are sampling
        ticks (multiply by :attr:`interval_s` for seconds).
        """
        tally: _TallyCounter = _TallyCounter()
        for tick in self.ticks:
            for label, stack in tick.items():
                tally[(label, stack)] += 1
        lines = [
            ";".join((label, *stack)) + f" {count}"
            for (label, stack), count in sorted(tally.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_chrome_trace(self) -> str:
        """Trace Event Format JSON (Perfetto / ``chrome://tracing``).

        Each thread renders as its own named process row; runs of ticks
        sharing a stack prefix merge into nested complete (``ph="X"``)
        events, so the output reads as a flame chart over real time.
        """
        events: list[dict] = []
        scale = self.interval_s * 1e6  # tick -> microseconds
        thread_rows = self.threads()
        for pid, label in enumerate(thread_rows, start=1):
            open_frames: list[tuple[str, int]] = []  # (frame, start_tick)

            def close_from(depth: int, end_tick: int, pid: int = pid) -> None:
                while len(open_frames) > depth:
                    frame, start = open_frames.pop()
                    events.append(
                        {
                            "name": frame,
                            "cat": "sample",
                            "ph": "X",
                            "ts": round(start * scale, 3),
                            "dur": round((end_tick - start) * scale, 3),
                            "pid": pid,
                            "tid": len(open_frames) + 1,
                        }
                    )

            for tick_index, tick in enumerate(self.ticks):
                stack = tick.get(label, ())
                common = 0
                for open_entry, frame in zip(open_frames, stack):
                    if open_entry[0] != frame:
                        break
                    common += 1
                close_from(common, tick_index)
                for frame in stack[common:]:
                    open_frames.append((frame, tick_index))
            close_from(0, len(self.ticks))
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": label},
            }
            for pid, label in enumerate(thread_rows, start=1)
        ]
        document = {"traceEvents": metadata + events, "displayTimeUnit": "ms"}
        return json.dumps(document, sort_keys=True, separators=(",", ":"))


class WallClockProfiler:
    """Owns the sampling thread; start/stop or one-shot :meth:`profile_for`."""

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        max_ticks: int = DEFAULT_MAX_TICKS,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = interval_s
        self.max_ticks = max_ticks
        self.registry = registry
        self._profile: Profile | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._lock = threading.Lock()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def sample_once(self) -> None:
        """Take exactly one sample (deterministic path for tests)."""
        with self._lock:
            if self._profile is None:
                self._profile = Profile(self.interval_s)
            self._record(self._profile)

    def _record(self, profile: Profile) -> None:
        # Skip only the dedicated sampling thread: its stack is always the
        # sample loop, pure noise. A direct sample_once() caller IS
        # captured — that guarantees one-shot profiles are never empty.
        skip = set()
        if self._thread is not None and self._thread.ident is not None:
            skip.add(self._thread.ident)
        tick = _capture_stacks(skip)
        if len(profile.ticks) < self.max_ticks:
            profile.ticks.append(tick)
        if self.registry is not None and self.registry.enabled:
            self.registry.counter(
                "obs_profiler_samples_total",
                "Stack samples captured by the wall-clock profiler",
                layer="obs",
                operation="sample",
            ).inc(len(tick))

    def start(self) -> None:
        """Begin sampling on a daemon thread (no-op if already running)."""
        with self._lock:
            if self.running:
                return
            self._profile = Profile(self.interval_s)
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._sample_loop, name="obs-profiler", daemon=True
            )
            self._thread.start()

    def _sample_loop(self) -> None:
        profile = self._profile
        while not self._stop.is_set() and len(profile.ticks) < self.max_ticks:
            self._record(profile)
            self._stop.wait(self.interval_s)

    def stop(self) -> Profile:
        """Stop sampling and return the captured profile."""
        with self._lock:
            thread = self._thread
            self._stop.set()
        if thread is not None:
            thread.join(timeout=5.0)
        with self._lock:
            self._thread = None
            profile = self._profile or Profile(self.interval_s)
            self._profile = None
        return profile

    def profile_for(self, seconds: float) -> Profile:
        """Block the calling thread for ``seconds``, sampling throughout.

        ``seconds=0`` still captures one sample, so callers always get a
        non-empty profile. Intended to run *off* the event loop (the
        admin endpoint executes it on a request executor thread).
        """
        self.start()
        deadline = time.monotonic() + max(0.0, seconds)
        self.sample_once()
        while time.monotonic() < deadline:
            time.sleep(min(self.interval_s, max(0.0, deadline - time.monotonic())))
        return self.stop()
