"""Fixed-interval time-series sampling over a :class:`MetricsRegistry`.

The registry answers "what are the totals *now*"; operating a generative
server needs "what happened *recently*" — request rates, live latency
quantiles, burn over the last N minutes. :class:`TimeSeriesSampler`
bridges the two: at a fixed interval it takes an atomic registry
snapshot and appends one *tick* to a bounded ring buffer. Each tick
records, per instrument:

* counters — the cumulative value (consumers derive rates from deltas);
* gauges — the value;
* histograms — ``[count, sum, cumulative_bucket_counts...]``, so
  per-interval quantiles can be estimated from bucket deltas.

The :meth:`snapshot` JSON format (``sww-timeseries/1``) is columnar —
one ``ticks`` index array plus per-series point arrays aligned with it —
and supports **deltas** (``since=<tick>`` returns only newer ticks) so a
poller like ``sww top`` ships just the new points each round. It is also
**aggregation-ready**: :func:`merge_snapshots` combines per-worker
snapshots tick-by-tick (counters and histogram points sum; gauges sum,
which is the right composition for occupancy/queue-depth gauges), which
is the merge a future pre-fork arbiter performs over its workers.

Everything is deterministic given the tick times: the sampler never
stamps wall-clock into the data, only monotonically increasing tick
indexes (callers know ``interval_s``).
"""

from __future__ import annotations

import asyncio
import bisect
import threading
from collections import deque
from typing import Callable, Iterable

from repro.obs.metrics import Histogram, MetricsRegistry

#: Snapshot format identifier; bump on incompatible layout changes.
SNAPSHOT_FORMAT = "sww-timeseries/1"


def series_key(name: str, labels: Iterable[tuple[str, str]]) -> str:
    """Canonical ``name{k=v,...}`` identity of one instrument's series."""
    pairs = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{pairs}}}" if pairs else name


def family_of(key: str) -> str:
    """The metric family a series key belongs to (``name`` sans labels)."""
    return key.split("{", 1)[0]


class TimeSeriesSampler:
    """Ring-buffer sampler: one registry snapshot per fixed interval.

    Thread-safe: :meth:`tick` typically runs on the server's event loop
    (via :meth:`run`) while :meth:`snapshot` is called from admin-request
    executor threads; both take the sampler lock. ``capacity`` bounds
    memory — old ticks fall off the ring, so the sampler can stay
    attached to a long-lived server.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        interval_s: float = 1.0,
        capacity: int = 600,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if capacity < 2:
            raise ValueError("capacity must hold at least two ticks")
        self.registry = registry
        self.interval_s = interval_s
        self.capacity = capacity
        self._lock = threading.Lock()
        #: (tick_index, {series_key: point}) in tick order.
        self._ticks: deque[tuple[int, dict]] = deque(maxlen=capacity)
        #: series_key -> (kind, bounds-or-None), learned as series appear.
        self._meta: dict[str, tuple[str, tuple[float, ...] | None]] = {}
        self._next_index = 0
        #: Called with the sampler after every tick (SLO trackers hook in).
        self.listeners: list[Callable[["TimeSeriesSampler"], None]] = []

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def tick(self) -> int:
        """Sample the registry once; returns the new tick's index."""
        if self.registry.enabled:
            self.registry.counter(
                "obs_timeseries_ticks_total",
                "Time-series sampler ticks taken",
                layer="obs",
                operation="tick",
            ).inc()
        snap = self.registry.snapshot()
        sample: dict[str, object] = {}
        with self._lock:
            for name, kind, _help, instruments in snap.collect():
                for inst in instruments:
                    key = series_key(name, inst.labels)
                    if isinstance(inst, Histogram):
                        cums = [c for _bound, c in inst.cumulative_counts()]
                        bounds = tuple(inst.buckets)
                        sample[key] = [inst.count, inst.sum, cums]
                        self._meta[key] = ("histogram", bounds)
                    else:
                        sample[key] = inst.value
                        self._meta.setdefault(key, (kind, None))
            index = self._next_index
            self._next_index += 1
            self._ticks.append((index, sample))
        for listener in list(self.listeners):
            listener(self)
        return index

    async def run(self, stop: asyncio.Event | None = None) -> None:
        """Tick forever (or until ``stop`` is set) at :attr:`interval_s`."""
        while stop is None or not stop.is_set():
            self.tick()
            await asyncio.sleep(self.interval_s)

    # ------------------------------------------------------------------ #
    # Snapshot / delta format
    # ------------------------------------------------------------------ #

    @property
    def last_tick(self) -> int:
        """Index of the newest tick (-1 before the first)."""
        with self._lock:
            return self._ticks[-1][0] if self._ticks else -1

    def snapshot(self, since: int | None = None) -> dict:
        """The ring as a JSON-able document; ``since`` returns a delta.

        ``since=N`` includes only ticks with index > N, so a poller that
        remembers the last ``tick`` it saw receives just the new columns.
        Series that never appear in the selected ticks are omitted; a
        series absent at some tick pads with ``null``.
        """
        with self._lock:
            ticks = [
                (index, sample)
                for index, sample in self._ticks
                if since is None or index > since
            ]
            meta = dict(self._meta)
        indexes = [index for index, _sample in ticks]
        series: dict[str, dict] = {}
        for key, (kind, bounds) in sorted(meta.items()):
            points = [sample.get(key) for _index, sample in ticks]
            if all(point is None for point in points):
                continue
            entry: dict = {"kind": kind, "points": points}
            if bounds is not None:
                entry["bounds"] = list(bounds)
            series[key] = entry
        return {
            "format": SNAPSHOT_FORMAT,
            "interval_s": self.interval_s,
            "tick": indexes[-1] if indexes else self.last_tick,
            "ticks": indexes,
            "series": series,
        }

    # ------------------------------------------------------------------ #
    # History access (for the SLO tracker and in-process consumers)
    # ------------------------------------------------------------------ #

    def histogram_family(
        self, name: str
    ) -> tuple[tuple[float, ...], list[tuple[int, int, float, list[int]]]]:
        """Per-tick ``(index, count, sum, cumulative_counts)`` for one
        histogram family, summed across its label sets.

        Returns ``(bounds, rows)``; bounds exclude the implicit ``+Inf``
        (the cumulative list has one extra final entry for it).
        """
        with self._lock:
            keys = [
                key
                for key, (kind, _bounds) in self._meta.items()
                if kind == "histogram" and family_of(key) == name
            ]
            bounds: tuple[float, ...] = ()
            for key in keys:
                bounds = self._meta[key][1] or ()
                break
            rows: list[tuple[int, int, float, list[int]]] = []
            for index, sample in self._ticks:
                count, total, cums = 0, 0.0, [0] * (len(bounds) + 1)
                seen = False
                for key in keys:
                    point = sample.get(key)
                    if point is None:
                        continue
                    seen = True
                    count += point[0]
                    total += point[1]
                    for i, c in enumerate(point[2]):
                        cums[i] += c
                if seen:
                    rows.append((index, count, total, cums))
        return bounds, rows


# ---------------------------------------------------------------------- #
# Snapshot-document helpers (shared by `sww top` and the SLO layer)
# ---------------------------------------------------------------------- #


def _family_points(snapshot: dict, family: str) -> list[list]:
    """Tick-aligned points for a family, summed across its label sets.

    Counter/gauge points sum to floats; histogram points sum elementwise
    to ``[count, sum, cums]``. Ticks where no series of the family has a
    point yield ``None``.
    """
    ticks = snapshot.get("ticks", [])
    merged: list = [None] * len(ticks)
    for key, entry in snapshot.get("series", {}).items():
        if family_of(key) != family:
            continue
        for i, point in enumerate(entry["points"]):
            if point is None:
                continue
            if merged[i] is None:
                merged[i] = (
                    [point[0], point[1], list(point[2])]
                    if isinstance(point, list)
                    else float(point)
                )
            elif isinstance(point, list):
                merged[i][0] += point[0]
                merged[i][1] += point[1]
                merged[i][2] = [a + b for a, b in zip(merged[i][2], point[2])]
            else:
                merged[i] += float(point)
    return merged


def snapshot_last(snapshot: dict, family: str) -> float | None:
    """Newest summed value of a counter/gauge family (None if absent)."""
    for point in reversed(_family_points(snapshot, family)):
        if point is not None and not isinstance(point, list):
            return float(point)
    return None


def snapshot_rate(snapshot: dict, family: str, window_ticks: int = 1) -> float | None:
    """Per-second rate of a counter family over the trailing window."""
    points = [p for p in _family_points(snapshot, family) if p is not None]
    if len(points) < 2:
        return None
    window = min(max(1, window_ticks), len(points) - 1)
    delta = points[-1] - points[-1 - window]
    interval = snapshot.get("interval_s", 1.0) or 1.0
    return max(0.0, delta) / (window * interval)


def snapshot_quantile(
    snapshot: dict, family: str, q: float, window_ticks: int | None = None
) -> float | None:
    """Estimate a latency quantile from a histogram family's bucket deltas.

    ``window_ticks=None`` uses the whole snapshot (cumulative); otherwise
    the delta between the newest tick and ``window_ticks`` back — i.e.
    the quantile of *recent* observations, which is what a live view
    wants. Linear interpolation within the winning bucket, clamped to the
    highest finite bound for the ``+Inf`` bucket (Prometheus semantics).
    """
    bounds = None
    for key, entry in snapshot.get("series", {}).items():
        if family_of(key) == family and entry.get("bounds") is not None:
            bounds = entry["bounds"]
            break
    if bounds is None:
        return None
    points = [p for p in _family_points(snapshot, family) if isinstance(p, list)]
    if not points:
        return None
    newest = points[-1][2]
    if window_ticks is None or len(points) == 1:
        base = [0] * len(newest)
    else:
        window = min(max(1, window_ticks), len(points) - 1)
        base = points[-1 - window][2]
    deltas = [n - b for n, b in zip(newest, base)]
    return quantile_from_cumulative(bounds, deltas, q)


def quantile_from_cumulative(
    bounds: list[float], cumulative: list[int], q: float
) -> float | None:
    """The ``q``-quantile of a cumulative bucket distribution, or None if
    the distribution is empty."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be within [0, 1]")
    total = cumulative[-1] if cumulative else 0
    if total <= 0:
        return None
    rank = q * total
    index = bisect.bisect_left(cumulative, rank)
    index = min(index, len(cumulative) - 1)
    if index >= len(bounds):
        # Landed in +Inf: report the highest finite bound.
        return float(bounds[-1]) if bounds else None
    lower = bounds[index - 1] if index > 0 else 0.0
    upper = bounds[index]
    below = cumulative[index - 1] if index > 0 else 0
    in_bucket = cumulative[index] - below
    if in_bucket <= 0:
        return float(upper)
    fraction = (rank - below) / in_bucket
    return float(lower + (upper - lower) * min(1.0, max(0.0, fraction)))


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Merge per-worker snapshots into one fleet-wide document.

    Ticks align by index (workers sampling on the same interval produce
    comparable indexes once their samplers start together; a future
    arbiter hands every worker the same epoch). Counter and histogram
    points sum; gauge points sum too — correct for occupancy-style gauges
    (queue depth, inflight streams), which is what the plane exposes.
    A series missing from some workers contributes only where present.
    """
    if not snapshots:
        return {
            "format": SNAPSHOT_FORMAT,
            "interval_s": 0.0,
            "tick": -1,
            "ticks": [],
            "series": {},
        }
    indexes = sorted({index for snap in snapshots for index in snap.get("ticks", [])})
    position = {index: i for i, index in enumerate(indexes)}
    series: dict[str, dict] = {}
    for snap in snapshots:
        for key, entry in snap.get("series", {}).items():
            target = series.setdefault(
                key,
                {
                    "kind": entry["kind"],
                    "points": [None] * len(indexes),
                    **({"bounds": entry["bounds"]} if "bounds" in entry else {}),
                },
            )
            for tick_index, point in zip(snap.get("ticks", []), entry["points"]):
                if point is None:
                    continue
                slot = position[tick_index]
                current = target["points"][slot]
                if current is None:
                    target["points"][slot] = (
                        [point[0], point[1], list(point[2])]
                        if isinstance(point, list)
                        else point
                    )
                elif isinstance(point, list):
                    current[0] += point[0]
                    current[1] += point[1]
                    current[2] = [a + b for a, b in zip(current[2], point[2])]
                else:
                    target["points"][slot] = current + point
    return {
        "format": SNAPSHOT_FORMAT,
        "interval_s": max(snap.get("interval_s", 0.0) for snap in snapshots),
        "tick": indexes[-1] if indexes else -1,
        "ticks": indexes,
        "series": {key: series[key] for key in sorted(series)},
    }
