"""Exporters: Prometheus/OpenMetrics text, JSON-lines, Chrome trace JSON,
and human-readable renderers.

* :func:`to_prometheus` — the text exposition format a scrape endpoint
  would serve (``# HELP`` / ``# TYPE`` / samples, cumulative ``le``
  buckets for histograms);
* :func:`to_openmetrics` — the OpenMetrics superset: same samples plus
  per-bucket exemplars (``# {trace_id="…"} value``) and the ``# EOF``
  terminator;
* :func:`to_jsonl` — one JSON object per instrument, for benchmark
  artifacts and offline diffing;
* :func:`to_chrome_trace` — Trace Event Format JSON loadable in Perfetto
  / ``chrome://tracing``, with client/server/edge/genai spans laid out on
  separate named tracks;
* :func:`render_metrics_table` / :func:`render_span_tree` — terminal
  renderings in the spirit of :func:`repro.http2.debug.trace_wire`.
"""

from __future__ import annotations

import json
import math

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracing import Span, Tracer

#: Format tag on registry dumps shipped worker → arbiter (multi-worker
#: serving) and merged back into one registry on the master's admin plane.
METRICS_DUMP_FORMAT = "sww-metrics/1"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: tuple[tuple[str, str], ...], extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*labels, *extra]
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _escape_label(value: str) -> str:
    """Escape a label value per the exposition format: backslash first,
    then double-quote and both newline flavours (a hostile value must not
    be able to terminate the quoted string or inject sample lines)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\r", "\\n")
    )


def _escape_help(text: str) -> str:
    """HELP text escaping: backslash and line feed only (spec §HELP)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n").replace("\r", "\\n")


def _exposition_lines(registry: MetricsRegistry, exemplars: bool) -> list[str]:
    # Export from a detached point-in-time copy so concurrent writer tasks
    # / executor threads can keep mutating instruments mid-exposition
    # without tearing any histogram's sum/count/bucket consistency.
    registry = registry.snapshot()
    lines: list[str] = []
    for name, kind, help, instruments in registry.collect():
        if help:
            lines.append(f"# HELP {name} {_escape_help(help)}")
        lines.append(f"# TYPE {name} {kind}")
        for inst in instruments:
            if isinstance(inst, Histogram):
                exemplar_map = dict()
                if exemplars:
                    exemplar_map = {
                        bound: (trace_id, value) for bound, trace_id, value in inst.exemplars()
                    }
                for bound, cumulative in inst.cumulative_counts():
                    le = "+Inf" if math.isinf(bound) else _format_value(bound)
                    labels = _format_labels(inst.labels, (("le", le),))
                    line = f"{name}_bucket{labels} {cumulative}"
                    exemplar = exemplar_map.get(bound)
                    if exemplar is not None:
                        trace_id, observed = exemplar
                        line += (
                            f' # {{trace_id="{_escape_label(trace_id)}"}}'
                            f" {_format_value(observed)}"
                        )
                    lines.append(line)
                lines.append(f"{name}_sum{_format_labels(inst.labels)} {_format_value(inst.sum)}")
                lines.append(f"{name}_count{_format_labels(inst.labels)} {inst.count}")
            else:
                lines.append(f"{name}{_format_labels(inst.labels)} {_format_value(inst.value)}")
    return lines


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines = _exposition_lines(registry, exemplars=False)
    return "\n".join(lines) + ("\n" if lines else "")


def to_openmetrics(registry: MetricsRegistry) -> str:
    """OpenMetrics flavour: exposition text + histogram exemplars + EOF.

    Exemplars attach the trace-id of the (latest) traced observation to
    the bucket it landed in, so a slow bucket can be followed straight to
    the distributed trace that produced it.
    """
    lines = _exposition_lines(registry, exemplars=True)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def to_jsonl(registry: MetricsRegistry) -> str:
    """One JSON object per instrument — the benchmark-artifact format."""
    registry = registry.snapshot()
    lines: list[str] = []
    for name, kind, _help, instruments in registry.collect():
        for inst in instruments:
            record: dict = {"name": name, "type": kind, "labels": dict(inst.labels)}
            if isinstance(inst, Histogram):
                record["sum"] = inst.sum
                record["count"] = inst.count
                record["buckets"] = {
                    ("+Inf" if math.isinf(bound) else _format_value(bound)): cumulative
                    for bound, cumulative in inst.cumulative_counts()
                }
            else:
                record["value"] = inst.value
            lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
    return "\n".join(lines) + ("\n" if lines else "")


def dump_registry(registry: MetricsRegistry) -> dict:
    """Serialise a registry to a JSON-safe ``sww-metrics/1`` document.

    The inverse of :func:`load_registry`; dump → load round-trips every
    counter, gauge and histogram (bucket bounds, per-bucket counts, sum,
    count) exactly. Exemplars are intentionally dropped — they carry
    trace-ids that are only resolvable inside the worker that minted them.
    """
    registry = registry.snapshot()
    families: dict[str, dict] = {}
    instruments: list[dict] = []
    for name, kind, help, insts in registry.collect():
        families[name] = {"kind": kind, "help": help}
        for inst in insts:
            record: dict = {"name": name, "labels": [list(pair) for pair in inst.labels]}
            if isinstance(inst, Histogram):
                record["buckets"] = list(inst.buckets)
                record["counts"] = list(inst._counts)
                record["sum"] = inst.sum
                record["count"] = inst.count
            else:
                record["value"] = inst.value
            instruments.append(record)
    return {
        "format": METRICS_DUMP_FORMAT,
        "families": families,
        "instruments": instruments,
    }


def load_registry(doc: dict, into: MetricsRegistry | None = None) -> MetricsRegistry:
    """Reconstruct a registry from a ``sww-metrics/1`` dump.

    With ``into``, the dump is *added* onto the existing registry —
    counters and histograms sum, gauges add (occupancy semantics: two
    workers each holding 3 streams really are 6 in-flight streams) —
    which is exactly the per-worker → fleet aggregation the arbiter's
    ``/metrics`` endpoint needs. Histogram bucket bounds must agree with
    whatever ``into`` already holds for the same instrument.
    """
    if doc.get("format") != METRICS_DUMP_FORMAT:
        raise ValueError(f"not a {METRICS_DUMP_FORMAT} dump: {doc.get('format')!r}")
    registry = into if into is not None else MetricsRegistry()
    families = doc["families"]
    for record in doc["instruments"]:
        name = record["name"]
        kind, help = families[name]["kind"], families[name]["help"]
        labels = {key: value for key, value in record["labels"]}
        if kind == "counter":
            registry.counter(name, help, **labels).inc(record["value"])
        elif kind == "gauge":
            registry.gauge(name, help, **labels).inc(record["value"])
        elif kind == "histogram":
            bounds = tuple(record["buckets"])
            hist = registry.histogram(name, help, buckets=bounds, **labels)
            if hist.buckets != bounds:
                raise ValueError(f"histogram {name!r} bucket bounds disagree across dumps")
            with hist._lock:
                hist._counts = [a + b for a, b in zip(hist._counts, record["counts"])]
                hist._sum += record["sum"]
                hist._count += record["count"]
        else:
            raise ValueError(f"unknown instrument kind {kind!r} in dump")
    return registry


def merge_registry_dumps(dumps) -> MetricsRegistry:
    """Merge N per-worker ``sww-metrics/1`` dumps into one registry."""
    registry = MetricsRegistry()
    for doc in dumps:
        load_registry(doc, into=registry)
    return registry


def render_metrics_table(registry: MetricsRegistry) -> str:
    """Aligned name/labels/value table for terminal reading."""
    registry = registry.snapshot()
    rows: list[tuple[str, str, str]] = []
    for name, kind, _help, instruments in registry.collect():
        for inst in instruments:
            labels = " ".join(f"{k}={v}" for k, v in inst.labels) or "-"
            if isinstance(inst, Histogram):
                value = f"sum={_format_value(inst.sum)} count={inst.count}"
            else:
                value = _format_value(inst.value)
            rows.append((name, labels, value))
    if not rows:
        return "(no metrics recorded)"
    name_w = max(len(r[0]) for r in rows)
    label_w = max(len(r[1]) for r in rows)
    lines = [f"{'metric'.ljust(name_w)}  {'labels'.ljust(label_w)}  value"]
    lines.append("-" * len(lines[0]))
    lines.extend(f"{n.ljust(name_w)}  {l.ljust(label_w)}  {v}" for n, l, v in rows)
    return "\n".join(lines)


def _span_line(depth: int, span: Span, unit_scale: float, unit: str) -> str:
    indent = "  " * depth
    attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attributes.items()))
    timing = f"{span.duration_s * unit_scale:8.3f} {unit}"
    base = f"{timing}  {indent}{span.name}"
    return f"{base}  [{attrs}]" if attrs else base


def render_span_tree(source: Tracer | list[Span], unit: str = "ms") -> str:
    """Render completed spans as an indented tree, one line per span.

    ``source`` is a tracer (all ring-buffered roots) or an explicit span
    list. ``unit`` is ``"ms"`` (default) or ``"s"``.
    """
    roots = source.roots() if isinstance(source, Tracer) else list(source)
    if not roots:
        return "(no spans recorded)"
    scale = 1000.0 if unit == "ms" else 1.0
    lines: list[str] = []
    for root in roots:
        for depth, span in root.walk():
            lines.append(_span_line(depth, span, scale, unit))
    return "\n".join(lines)


def spans_to_jsonl(source: Tracer | list[Span]) -> str:
    """JSON-lines form of the span trees (one root per line)."""
    roots = source.roots() if isinstance(source, Tracer) else list(source)
    return "\n".join(
        json.dumps(root.to_dict(), sort_keys=True, separators=(",", ":")) for root in roots
    ) + ("\n" if roots else "")


#: Track layout for the Chrome/Perfetto export: span-name prefix → (pid,
#: human track name). Every SWW layer renders as its own named process row.
CHROME_TRACKS: dict[str, tuple[int, str]] = {
    "client": (1, "client"),
    "server": (2, "server"),
    "sww": (2, "server"),
    "cdn": (3, "edge"),
    "origin": (4, "origin"),
    "genai": (5, "genai"),
}
_OTHER_TRACK = (6, "other")


def _chrome_track(span_name: str) -> tuple[int, str]:
    prefix = span_name.split(".", 1)[0]
    return CHROME_TRACKS.get(prefix, _OTHER_TRACK)


def to_chrome_trace(source: Tracer | list[Span]) -> str:
    """Trace Event Format JSON (Perfetto / ``chrome://tracing`` loadable).

    ``source`` is a tracer or a span list — typically the output of
    :func:`repro.obs.tracing.stitch_spans` so one fetch renders as one
    timeline. Each span becomes a complete (``ph="X"``) event; the track
    (``pid``) is chosen from the span name's layer prefix and named with
    ``process_name`` metadata events, so client, server, edge and genai
    work sit on separate labelled rows. Timestamps are microseconds,
    rebased so the earliest span starts at 0 (runs stay diffable).
    """
    roots = source.roots() if isinstance(source, Tracer) else list(source)
    spans: list[tuple[int, Span]] = []
    for root in roots:
        for depth, span in root.walk():
            spans.append((depth, span))
    events: list[dict] = []
    used_tracks: dict[int, str] = {}
    base = min((span.start for _, span in spans), default=0.0)
    for depth, span in spans:
        pid, track = _chrome_track(span.name)
        used_tracks[pid] = track
        args: dict = {str(k): str(v) for k, v in sorted(span.attributes.items())}
        args["trace_id"] = span.trace_id
        args["span_id"] = span.span_id
        if span.remote_parent is not None:
            args["remote_parent"] = span.remote_parent.span_id
        events.append(
            {
                "name": span.name,
                "cat": track,
                "ph": "X",
                "ts": round((span.start - base) * 1e6, 3),
                "dur": round(span.duration_s * 1e6, 3),
                "pid": pid,
                "tid": depth + 1,
                "args": args,
            }
        )
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": name},
        }
        for pid, name in sorted(used_tracks.items())
    ]
    document = {"traceEvents": metadata + events, "displayTimeUnit": "ms"}
    return json.dumps(document, sort_keys=True, separators=(",", ":"))
