"""Exporters: Prometheus text, JSON-lines, and human-readable renderers.

Three consumers, three formats:

* :func:`to_prometheus` — the text exposition format a scrape endpoint
  would serve (``# HELP`` / ``# TYPE`` / samples, cumulative ``le``
  buckets for histograms);
* :func:`to_jsonl` — one JSON object per instrument, for benchmark
  artifacts and offline diffing;
* :func:`render_metrics_table` / :func:`render_span_tree` — terminal
  renderings in the spirit of :func:`repro.http2.debug.trace_wire`.
"""

from __future__ import annotations

import json
import math

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracing import Span, Tracer


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: tuple[tuple[str, str], ...], extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*labels, *extra]
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for name, kind, help, instruments in registry.collect():
        if help:
            lines.append(f"# HELP {name} {help}")
        lines.append(f"# TYPE {name} {kind}")
        for inst in instruments:
            if isinstance(inst, Histogram):
                for bound, cumulative in inst.cumulative_counts():
                    le = "+Inf" if math.isinf(bound) else _format_value(bound)
                    labels = _format_labels(inst.labels, (("le", le),))
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                lines.append(f"{name}_sum{_format_labels(inst.labels)} {_format_value(inst.sum)}")
                lines.append(f"{name}_count{_format_labels(inst.labels)} {inst.count}")
            else:
                lines.append(f"{name}{_format_labels(inst.labels)} {_format_value(inst.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_jsonl(registry: MetricsRegistry) -> str:
    """One JSON object per instrument — the benchmark-artifact format."""
    lines: list[str] = []
    for name, kind, _help, instruments in registry.collect():
        for inst in instruments:
            record: dict = {"name": name, "type": kind, "labels": dict(inst.labels)}
            if isinstance(inst, Histogram):
                record["sum"] = inst.sum
                record["count"] = inst.count
                record["buckets"] = {
                    ("+Inf" if math.isinf(bound) else _format_value(bound)): cumulative
                    for bound, cumulative in inst.cumulative_counts()
                }
            else:
                record["value"] = inst.value
            lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
    return "\n".join(lines) + ("\n" if lines else "")


def render_metrics_table(registry: MetricsRegistry) -> str:
    """Aligned name/labels/value table for terminal reading."""
    rows: list[tuple[str, str, str]] = []
    for name, kind, _help, instruments in registry.collect():
        for inst in instruments:
            labels = " ".join(f"{k}={v}" for k, v in inst.labels) or "-"
            if isinstance(inst, Histogram):
                value = f"sum={_format_value(inst.sum)} count={inst.count}"
            else:
                value = _format_value(inst.value)
            rows.append((name, labels, value))
    if not rows:
        return "(no metrics recorded)"
    name_w = max(len(r[0]) for r in rows)
    label_w = max(len(r[1]) for r in rows)
    lines = [f"{'metric'.ljust(name_w)}  {'labels'.ljust(label_w)}  value"]
    lines.append("-" * len(lines[0]))
    lines.extend(f"{n.ljust(name_w)}  {l.ljust(label_w)}  {v}" for n, l, v in rows)
    return "\n".join(lines)


def _span_line(depth: int, span: Span, unit_scale: float, unit: str) -> str:
    indent = "  " * depth
    attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attributes.items()))
    timing = f"{span.duration_s * unit_scale:8.3f} {unit}"
    base = f"{timing}  {indent}{span.name}"
    return f"{base}  [{attrs}]" if attrs else base


def render_span_tree(source: Tracer | list[Span], unit: str = "ms") -> str:
    """Render completed spans as an indented tree, one line per span.

    ``source`` is a tracer (all ring-buffered roots) or an explicit span
    list. ``unit`` is ``"ms"`` (default) or ``"s"``.
    """
    roots = source.roots() if isinstance(source, Tracer) else list(source)
    if not roots:
        return "(no spans recorded)"
    scale = 1000.0 if unit == "ms" else 1.0
    lines: list[str] = []
    for root in roots:
        for depth, span in root.walk():
            lines.append(_span_line(depth, span, scale, unit))
    return "\n".join(lines)


def spans_to_jsonl(source: Tracer | list[Span]) -> str:
    """JSON-lines form of the span trees (one root per line)."""
    roots = source.roots() if isinstance(source, Tracer) else list(source)
    return "\n".join(
        json.dumps(root.to_dict(), sort_keys=True, separators=(",", ":")) for root in roots
    ) + ("\n" if roots else "")
