"""repro — a reproduction of "The Small World Web of AI" (HotNets '25).

SWW delivers web content as *prompts* instead of media bytes: client and
server negotiate a new HTTP/2 SETTINGS parameter (``SETTINGS_GEN_ABILITY``,
0x07), after which pages carry ``generated-content`` divisions whose
metadata the client's local generative models turn into images and text.

Quickstart::

    from repro import (
        GenerativeClient, GenerativeServer, SiteStore, PageResource,
        connect_in_memory, build_wikimedia_landscape_page, LAPTOP,
    )

    page = build_wikimedia_landscape_page()
    store = SiteStore()
    store.add_page(PageResource(page.path, page.sww_html, page.traditional_html))
    server = GenerativeServer(store)
    client = GenerativeClient(device=LAPTOP)
    pair = connect_in_memory(client, server)
    result = client.fetch_via_pair(pair, page.path)
    print(result.wire_bytes, "bytes over the wire;",
          result.report.generated_images, "images generated locally in",
          f"{result.generation_time_s:.0f} simulated seconds")

Subpackages: :mod:`repro.http2` (from-scratch HTTP/2 + HPACK),
:mod:`repro.html` (HTML engine), :mod:`repro.genai` (simulated generative
models), :mod:`repro.media` (PNG codec & size models), :mod:`repro.devices`
(calibrated hardware/energy models), :mod:`repro.metrics` (CLIP/SBERT/ELO
similes), :mod:`repro.sww` (the paper's system), :mod:`repro.cdn` (§2.2
scenario), :mod:`repro.workloads` (synthetic corpora), :mod:`repro.obs`
(metrics, tracing and logging — see docs/OBSERVABILITY.md),
:mod:`repro.gencache` (content-addressed generation cache and
single-flight scheduling — see docs/PERFORMANCE.md).
"""

from repro.devices import LAPTOP, WORKSTATION, MOBILE, CLOUD, get_device
from repro.genai import GenerationPipeline
from repro.genai.registry import (
    IMAGE_MODELS,
    TEXT_MODELS,
    get_image_model,
    get_text_model,
)
from repro.http2 import H2Connection, SETTINGS_GEN_ABILITY
from repro.obs import MetricsRegistry, Tracer, configure, logging_setup
from repro.sww import (
    AssetResource,
    ContentType,
    FetchResult,
    GeneratedContent,
    GenerativeClient,
    GenerativeServer,
    MediaGenerator,
    PageProcessor,
    PageResource,
    ServeMode,
    ServePolicy,
    SiteStore,
    render_text,
)
from repro.sww.client import connect_in_memory

# Imported after repro.sww: gencache key derivation reads repro.sww.content,
# so loading it first would re-enter repro.sww mid-initialisation.
from repro.gencache import GenerationCache, GenerationKey, SingleFlightScheduler
from repro.workloads import (
    build_news_article,
    build_travel_blog,
    build_wikimedia_landscape_page,
)

__version__ = "1.0.0"

__all__ = [
    "LAPTOP",
    "WORKSTATION",
    "MOBILE",
    "CLOUD",
    "get_device",
    "GenerationPipeline",
    "IMAGE_MODELS",
    "TEXT_MODELS",
    "get_image_model",
    "get_text_model",
    "GenerationCache",
    "GenerationKey",
    "SingleFlightScheduler",
    "H2Connection",
    "SETTINGS_GEN_ABILITY",
    "MetricsRegistry",
    "Tracer",
    "configure",
    "logging_setup",
    "GeneratedContent",
    "ContentType",
    "MediaGenerator",
    "PageProcessor",
    "GenerativeServer",
    "GenerativeClient",
    "FetchResult",
    "SiteStore",
    "PageResource",
    "AssetResource",
    "ServeMode",
    "ServePolicy",
    "render_text",
    "connect_in_memory",
    "build_wikimedia_landscape_page",
    "build_travel_blog",
    "build_news_article",
    "__version__",
]
