"""The worker → master control-pipe protocol.

Each forked worker inherits the write end of an :func:`os.pipe`; the
master holds the read end on its event loop. Everything the worker has
to say — liveness, merged-telemetry inputs, goodbye — travels as
length-prefixed JSON frames:

    +----------------+----------------------+
    | 4 bytes (>I)   | UTF-8 JSON object    |
    | payload length | {"type": ..., ...}   |
    +----------------+----------------------+

Frame types (all carry ``worker``, the sender's pid):

* ``hello`` — first frame after fork: ``{worker_id, pid}``;
* ``heartbeat`` — periodic liveness + cheap gauges (``requests``,
  ``inflight``, ``connections``, ``generation_sim_s``); the master's
  murder loop SIGKILLs a worker whose last heartbeat is older than the
  worker timeout;
* ``metrics`` — full ``sww-metrics/1`` registry dump (replaces the
  previous one; the master merges the latest dump from every worker);
* ``timeseries`` — an ``sww-timeseries/1`` *delta* snapshot (ticks since
  the last shipped tick; the master accumulates and merges per-tick);
* ``events`` — newly finished wide events as plain dicts, each stamped
  with ``worker`` and ``seq`` so the merged stream orders by
  ``(worker, seq)``;
* ``bye`` — graceful-exit marker (``{exit: "drain" | "recycle"}``).

JSON over a pipe is deliberate: frames are small (the registry dump of a
busy worker is tens of KB), the master merges them with the existing
``sww-timeseries/1`` / ``sww-metrics/1`` plumbing, and the format is
trivially debuggable with ``od``/``jq``.
"""

from __future__ import annotations

import asyncio
import json
import os
import struct

#: A frame larger than this is a protocol bug, not a big payload.
MAX_FRAME_BYTES = 32 * 1024 * 1024

_HEADER = struct.Struct(">I")


class FrameError(Exception):
    """A malformed control-pipe frame."""


def encode_frame(doc: dict) -> bytes:
    """Serialise one frame: 4-byte big-endian length + compact JSON."""
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(payload)) + payload


def write_frame_blocking(fd: int, doc: dict) -> None:
    """Write one frame to a (blocking) pipe fd, looping over short writes.

    Only the owning worker writes to its pipe, so frames never interleave;
    a full pipe simply blocks the writer until the master catches up.
    """
    data = encode_frame(doc)
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame from the master's side; ``None`` on clean EOF."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionError, OSError):
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame header claims {length} bytes (max {MAX_FRAME_BYTES})")
    try:
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError, OSError):
        return None
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(doc, dict) or "type" not in doc:
        raise FrameError("control frames must be JSON objects with a 'type'")
    return doc


def decode_frames(buffer: bytes) -> tuple[list[dict], bytes]:
    """Decode every complete frame in ``buffer``; returns (frames, rest).

    The synchronous complement of :func:`read_frame`, for tests and
    non-asyncio consumers.
    """
    frames: list[dict] = []
    offset = 0
    while len(buffer) - offset >= _HEADER.size:
        (length,) = _HEADER.unpack_from(buffer, offset)
        if length > MAX_FRAME_BYTES:
            raise FrameError(f"frame header claims {length} bytes (max {MAX_FRAME_BYTES})")
        if len(buffer) - offset - _HEADER.size < length:
            break
        payload = buffer[offset + _HEADER.size : offset + _HEADER.size + length]
        doc = json.loads(payload.decode("utf-8"))
        if not isinstance(doc, dict) or "type" not in doc:
            raise FrameError("control frames must be JSON objects with a 'type'")
        frames.append(doc)
        offset += _HEADER.size + length
    return frames, buffer[offset:]
