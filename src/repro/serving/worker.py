"""One forked serving worker: accept loop, telemetry shipping, drain.

A worker owns nothing global. It inherits two fds from the arbiter — the
shared listening socket and the write end of its control pipe — and
builds *everything else* post-fork via the ``runtime_factory`` callable:
its own :class:`~repro.sww.server.GenerativeServer`, its own
:class:`~repro.obs.MetricsRegistry` / :class:`~repro.obs.EventLog`
(stamped with the worker's pid) / :class:`~repro.obs.TimeSeriesSampler`,
and — when the arbiter hosts a cache tier — a
:class:`~repro.serving.remote.RemoteGenerationCache` facade in place of
a process-local gencache.

The accept loop is deliberately hand-rolled (``loop.sock_accept`` rather
than ``asyncio.start_server``): every worker accepts from the same
inherited socket (the kernel load-balances the backlog across blocked
acceptors), and an optional connection semaphore caps how many
connections this worker holds at once — with a cap of 1 the fleet
degenerates to least-loaded balancing, which the scaling benchmark uses
for determinism.

Each heartbeat interval the worker ships, over its control pipe:

* a ``heartbeat`` frame of cheap gauges (requests served, inflight
  streams, open connections, the cumulative simulated generation seconds
  this worker has paid);
* its full ``sww-metrics/1`` registry dump (replaces the previous one on
  the master);
* an ``sww-timeseries/1`` *delta* (only ticks newer than the last
  shipped);
* newly finished wide events (``seq`` greater than the last shipped).

On SIGTERM the worker stops accepting, drains every live session via
:meth:`~repro.sww.server.ServerSession.shutdown` (in-flight streams
finish and queued writer bytes flush before sockets close), ships a
final telemetry flush plus a ``bye`` frame, and exits 0. The same path
runs when ``--max-requests`` (plus a deterministic per-worker jitter, so
a fleet never recycles in lockstep) retires the worker.
"""

from __future__ import annotations

import asyncio
import logging
import os
import random
import signal
import socket
from dataclasses import dataclass, field

from repro.serving.protocol import write_frame_blocking

logger = logging.getLogger("repro.serving.worker")


@dataclass
class WorkerOptions:
    """Per-worker behaviour knobs, decided by the arbiter pre-fork."""

    worker_id: int = 0
    heartbeat_interval_s: float = 1.0
    drain_timeout_s: float = 30.0
    #: Retire (gracefully) after this many requests; 0 disables. A
    #: deterministic jitter of up to 10% — seeded by ``worker_id`` — is
    #: added so a uniformly loaded fleet never recycles in lockstep.
    max_requests: int = 0
    #: Cap on concurrently held connections; 0 means unlimited. A cap of
    #: 1 turns shared-socket accept into least-loaded balancing.
    connection_limit: int = 0


@dataclass
class WorkerRuntime:
    """Everything a worker builds post-fork (via ``runtime_factory``)."""

    server: object
    registry: object | None = None
    events: object | None = None
    sampler: object | None = None
    #: A close()-able cache facade (RemoteGenerationCache) when the
    #: arbiter hosts a shared tier; closed on the way out.
    gencache: object | None = None
    #: Extra banner lines the factory wants printed once (under the
    #: arbiter's worker-spawn line); purely informational.
    banner: list = field(default_factory=list)


def _recycle_threshold(options: WorkerOptions) -> int:
    """``max_requests`` plus up to 10% deterministic per-worker jitter."""
    if options.max_requests <= 0:
        return 0
    jitter_span = options.max_requests // 10
    jitter = random.Random(options.worker_id).randint(0, jitter_span) if jitter_span else 0
    return options.max_requests + jitter


def worker_main(listen_sock, pipe_fd: int, options: WorkerOptions, runtime_factory) -> int:
    """Run one worker to completion; returns the process exit status.

    Called in the child straight after fork (the arbiter has already
    detached the inherited asyncio state), so ``asyncio.run`` builds this
    process's own fresh event loop.
    """
    try:
        return asyncio.run(_amain(listen_sock, pipe_fd, options, runtime_factory))
    except KeyboardInterrupt:
        return 0


async def _amain(listen_sock, pipe_fd: int, options: WorkerOptions, runtime_factory) -> int:
    loop = asyncio.get_running_loop()
    pid = os.getpid()
    runtime: WorkerRuntime = runtime_factory()
    server = runtime.server

    ship_lock = asyncio.Lock()

    async def ship(doc: dict) -> None:
        """Write one control frame; serialized so frames never interleave."""
        doc.setdefault("worker", pid)
        async with ship_lock:
            try:
                await loop.run_in_executor(None, write_frame_blocking, pipe_fd, doc)
            except (BrokenPipeError, OSError):
                # Master gone; keep serving (its SIGTERM/SIGKILL decides).
                pass

    stop = asyncio.Event()
    exit_reason = "drain"

    def request_stop() -> None:
        stop.set()

    loop.add_signal_handler(signal.SIGTERM, request_stop)
    loop.add_signal_handler(signal.SIGINT, request_stop)

    await ship({"type": "hello", "worker_id": options.worker_id, "pid": pid})
    for line in runtime.banner:
        print(line, flush=True)

    sampler_task = None
    if runtime.sampler is not None:
        sampler_task = asyncio.create_task(runtime.sampler.run(stop))

    # ------------------------------------------------------------------ #
    # Accept loop over the shared inherited socket
    # ------------------------------------------------------------------ #

    listen_sock.setblocking(False)
    semaphore = (
        asyncio.Semaphore(options.connection_limit) if options.connection_limit > 0 else None
    )
    conn_tasks: set[asyncio.Task] = set()

    async def serve_socket(sock: socket.socket) -> None:
        sock.setblocking(False)
        reader = asyncio.StreamReader()
        protocol = asyncio.StreamReaderProtocol(reader)
        transport, _ = await loop.connect_accepted_socket(lambda: protocol, sock)
        writer = asyncio.StreamWriter(transport, protocol, reader, loop)
        try:
            await server.handle_connection(reader, writer)
        except (ConnectionError, OSError):
            pass
        except Exception:
            logger.exception("worker %d: connection handler failed", pid)

    async def accept_loop() -> None:
        while True:
            if semaphore is not None:
                await semaphore.acquire()
            try:
                sock, _addr = await loop.sock_accept(listen_sock)
            except asyncio.CancelledError:
                if semaphore is not None:
                    semaphore.release()
                raise
            except OSError:
                if semaphore is not None:
                    semaphore.release()
                continue
            task = asyncio.create_task(serve_socket(sock))
            conn_tasks.add(task)

            def _done(finished: asyncio.Task) -> None:
                conn_tasks.discard(finished)
                if semaphore is not None:
                    semaphore.release()

            task.add_done_callback(_done)

    acceptor = asyncio.create_task(accept_loop())

    # ------------------------------------------------------------------ #
    # Heartbeat + telemetry shipping
    # ------------------------------------------------------------------ #

    last_tick_shipped = -1
    last_seq_shipped = 0

    def generation_sim_s() -> float:
        if runtime.registry is None:
            return 0.0
        return runtime.registry.value(
            "sww_generation_seconds", layer="sww", operation="materialise"
        )

    async def ship_telemetry() -> None:
        nonlocal last_tick_shipped, last_seq_shipped
        if runtime.registry is not None:
            from repro.obs import dump_registry

            await ship({"type": "metrics", "dump": dump_registry(runtime.registry)})
        if runtime.sampler is not None:
            snapshot = runtime.sampler.snapshot(since=last_tick_shipped)
            if snapshot["ticks"]:
                last_tick_shipped = snapshot["tick"]
                await ship({"type": "timeseries", "snapshot": snapshot})
        if runtime.events is not None and getattr(runtime.events, "enabled", False):
            fresh = [
                record.to_dict()
                for record in runtime.events.events()
                if record.fields.get("seq", 0) > last_seq_shipped
            ]
            if fresh:
                last_seq_shipped = max(record["seq"] for record in fresh)
                await ship({"type": "events", "events": fresh})

    recycle_at = _recycle_threshold(options)

    async def heartbeat_loop() -> None:
        nonlocal exit_reason
        while not stop.is_set():
            try:
                await asyncio.wait_for(stop.wait(), options.heartbeat_interval_s)
                return
            except asyncio.TimeoutError:
                pass
            sessions = server.sessions()
            await ship(
                {
                    "type": "heartbeat",
                    "worker_id": options.worker_id,
                    "requests": server.requests_served,
                    "inflight": sum(len(session._tasks) for session in sessions),
                    "connections": len(sessions),
                    "generation_sim_s": generation_sim_s(),
                }
            )
            await ship_telemetry()
            if recycle_at and server.requests_served >= recycle_at:
                exit_reason = "recycle"
                stop.set()
                return

    await heartbeat_loop()

    # ------------------------------------------------------------------ #
    # Graceful drain
    # ------------------------------------------------------------------ #

    acceptor.cancel()
    try:
        await acceptor
    except asyncio.CancelledError:
        pass
    sessions = server.sessions()
    if sessions:
        await asyncio.gather(
            *(session.shutdown(options.drain_timeout_s) for session in sessions),
            return_exceptions=True,
        )
    if conn_tasks:
        await asyncio.gather(*conn_tasks, return_exceptions=True)
    if sampler_task is not None:
        sampler_task.cancel()
        try:
            await sampler_task
        except asyncio.CancelledError:
            pass
    if runtime.sampler is not None:
        # One last tick so the drain window's deltas reach the master.
        runtime.sampler.tick()
    await ship_telemetry()
    await ship(
        {
            "type": "bye",
            "worker_id": options.worker_id,
            "exit": exit_reason,
            "requests": server.requests_served,
            "generation_sim_s": generation_sim_s(),
        }
    )
    if runtime.gencache is not None:
        await loop.run_in_executor(None, runtime.gencache.close)
    return 0
