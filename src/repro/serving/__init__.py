"""repro.serving — pre-fork multi-worker serving (the arbiter).

Everything before this package runs the generative server as one process
on one event loop; generation capacity — the paper's scarce resource —
is therefore capped at a single core. This package adds the gunicorn-
style process model on top of the existing building blocks without
changing any of them:

* :mod:`repro.serving.arbiter` — the master: binds the listening socket,
  forks N workers, reaps/respawns on SIGCHLD, SIGKILLs workers whose
  heartbeat goes stale, scales up/down on SIGTTIN/SIGTTOU, rolls the
  fleet on SIGHUP, and aggregates per-worker telemetry onto its own
  admin plane (``/metrics``, ``/healthz``, ``/debug/workers``);
* :mod:`repro.serving.worker` — one forked worker: accepts on the shared
  inherited socket, drives :meth:`GenerativeServer.handle_connection`,
  drains gracefully on SIGTERM (in-flight streams finish, queued writer
  bytes flush) and ships heartbeat/metrics/timeseries/event frames to
  the master over its control pipe;
* :mod:`repro.serving.cachetier` — the shared gencache tier: a
  lightweight cache server spoken to over the repo's own HTTP/2 stack
  under the reserved ``sww-cache.internal`` authority, extending the
  gencache's single-flight leadership across process boundaries;
* :mod:`repro.serving.remote` — the worker-side
  :class:`~repro.gencache.GenerationCache`-compatible facade over that
  tier;
* :mod:`repro.serving.protocol` — the length-prefixed JSON control-pipe
  frames workers ship telemetry over;
* :mod:`repro.serving.h2util` — a minimal respond-only HTTP/2 server
  loop shared by the cache tier and the master admin plane.
"""

from repro.serving.arbiter import Arbiter, ArbiterConfig
from repro.serving.cachetier import CACHE_AUTHORITY, CacheTierServer
from repro.serving.h2util import MiniH2Server, MiniRequest, MiniResponse
from repro.serving.protocol import (
    FrameError,
    encode_frame,
    read_frame,
    write_frame_blocking,
)
from repro.serving.remote import RemoteGenerationCache
from repro.serving.worker import WorkerOptions, worker_main

__all__ = [
    "Arbiter",
    "ArbiterConfig",
    "CACHE_AUTHORITY",
    "CacheTierServer",
    "MiniH2Server",
    "MiniRequest",
    "MiniResponse",
    "FrameError",
    "encode_frame",
    "read_frame",
    "write_frame_blocking",
    "RemoteGenerationCache",
    "WorkerOptions",
    "worker_main",
]
