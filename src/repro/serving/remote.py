"""Worker-side facade over the shared cache tier.

:class:`RemoteGenerationCache` speaks the cache-tier protocol
(:mod:`repro.serving.cachetier`) and presents the exact blocking
interface :class:`~repro.sww.media_generator.MediaGenerator` expects of
a :class:`~repro.gencache.GenerationCache` — ``lookup`` / ``insert`` /
``record_coalesced`` / ``hit_time_s`` — so a forked worker plugs the
tier in where the in-process cache used to sit, without the generator
learning anything changed.

Concurrency model: one daemon thread runs a private event loop holding
one persistent HTTP/2 connection to the tier. Every blocking call
submits its own coroutine with ``run_coroutine_threadsafe`` — calls are
*not* serialised, because a ``GET`` parked on a cross-worker flight
(long-poll) must not block a concurrent ``PUT`` for a different key on
the same connection. Streams multiplex by id; all engine operations are
loop-confined and each request allocates its stream id and sends its
HEADERS without an intervening await, so no lock is needed.

Failure model: degrade, never break. A tier that is down, slow, or
resetting streams makes ``lookup`` return ``None`` (the worker
generates locally, exactly as with no cache), ``insert`` return False,
and ``record_coalesced`` a no-op. One reconnect is attempted per call.
"""

from __future__ import annotations

import asyncio
import logging
import threading

from repro.gencache.store import HIT_LOOKUP_TIME_S, CachedGeneration, GenCacheStats
from repro.http2.connection import (
    ConnectionTerminated,
    DataReceived,
    H2Connection,
    ResponseReceived,
    Role,
    SettingsAcknowledged,
    StreamEnded,
    StreamReset,
)
from repro.http2.transport import AsyncH2Transport
from repro.serving.cachetier import (
    CACHE_AUTHORITY,
    DEFAULT_FLIGHT_TIMEOUT_S,
    decode_envelope,
    encode_envelope,
)

logger = logging.getLogger("repro.serving.remote")

#: Ordinary round-trip budget (connect + handshake + respond).
DEFAULT_CALL_TIMEOUT_S = 15.0


class _Stream:
    __slots__ = ("future", "status", "headers", "body")

    def __init__(self, future: asyncio.Future) -> None:
        self.future = future
        self.status = 0
        self.headers: dict[bytes, bytes] = {}
        self.body = bytearray()


class _Channel:
    __slots__ = ("conn", "transport", "run_task", "ready", "dead", "streams")

    def __init__(self, conn: H2Connection, transport: AsyncH2Transport) -> None:
        self.conn = conn
        self.transport = transport
        self.run_task: asyncio.Task | None = None
        self.ready = asyncio.Event()
        self.dead = False
        self.streams: dict[int, _Stream] = {}

    def fail_all(self, exc: Exception) -> None:
        self.dead = True
        for stream in self.streams.values():
            if not stream.future.done():
                stream.future.set_exception(exc)
        self.streams.clear()


class RemoteGenerationCache:
    """GenerationCache-compatible client for the shared cache tier."""

    def __init__(
        self,
        host: str,
        port: int,
        authority: str = CACHE_AUTHORITY,
        hit_time_s: float = HIT_LOOKUP_TIME_S,
        call_timeout_s: float = DEFAULT_CALL_TIMEOUT_S,
        flight_timeout_s: float = DEFAULT_FLIGHT_TIMEOUT_S,
    ) -> None:
        self.host = host
        self.port = port
        self.authority = authority
        #: Simulated cost the generator charges for a (remote) hit — same
        #: in-memory-lookup constant as the local cache: the tier lives on
        #: the same host and the simulation's cost model is unchanged.
        self.hit_time_s = hit_time_s
        self.call_timeout_s = call_timeout_s
        #: A lookup may legitimately park for a whole cross-worker flight.
        self.lookup_timeout_s = flight_timeout_s + call_timeout_s
        #: Local view of outcomes this worker observed at the tier.
        self.stats = GenCacheStats()
        #: Calls that degraded to cache-off behaviour (tier unreachable).
        self.errors = 0
        self._stats_lock = threading.Lock()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._start_lock = threading.Lock()
        self._channel: _Channel | None = None
        self._connect_lock: asyncio.Lock | None = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # Blocking facade (called from generation/executor threads)
    # ------------------------------------------------------------------ #

    def lookup(self, key) -> CachedGeneration | None:
        """Tier lookup. Hit/coalesced → a record; miss (we lead) or any
        tier failure → None (the caller generates)."""
        try:
            status, headers, body = self._call(
                "GET", f"/gencache/{key.digest}", timeout=self.lookup_timeout_s
            )
        except Exception as exc:
            self._degraded("lookup", exc)
            return None
        if status != 200:
            with self._stats_lock:
                self.stats.misses += 1
            return None
        try:
            doc = decode_envelope(bytes(body))
        except (ValueError, KeyError) as exc:
            self._degraded("decode", exc)
            return None
        outcome = headers.get(b"x-sww-cache", b"hit")
        with self._stats_lock:
            if outcome == b"coalesced":
                self.stats.coalesced += 1
            else:
                self.stats.hits += 1
        return CachedGeneration(
            key=key,
            payload=doc["payload"],
            text=doc.get("text", ""),
            sim_time_s=float(doc.get("sim_time_s", 0.0)),
            energy_wh=float(doc.get("energy_wh", 0.0)),
        )

    def insert(
        self,
        key,
        payload: bytes,
        text: str = "",
        sim_time_s: float = 0.0,
        energy_wh: float = 0.0,
        size_bytes: int | None = None,
    ) -> bool:
        """Publish a generated result to the tier (wakes parked waiters)."""
        envelope = encode_envelope(payload, text, sim_time_s, energy_wh)
        try:
            status, _headers, _body = self._call(
                "PUT", f"/gencache/{key.digest}", body=envelope
            )
        except Exception as exc:
            self._degraded("insert", exc)
            return False
        if status == 204:
            with self._stats_lock:
                self.stats.insertions += 1
            return True
        with self._stats_lock:
            self.stats.rejected += 1
        return False

    def record_coalesced(self, saved_sim_s: float, saved_energy_wh: float) -> None:
        """Forward an in-process coalesce so fleet stats stay exact."""
        import json

        body = json.dumps(
            {"saved_sim_s": saved_sim_s, "saved_energy_wh": saved_energy_wh},
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        try:
            self._call("POST", "/coalesced", body=body)
        except Exception as exc:
            self._degraded("coalesced", exc)
            return
        with self._stats_lock:
            self.stats.coalesced += 1

    def tier_stats(self) -> dict:
        """The tier's authoritative stats document (``GET /stats``)."""
        import json

        status, _headers, body = self._call("GET", "/stats")
        if status != 200:
            raise RuntimeError(f"cache tier /stats returned {status}")
        return json.loads(bytes(body).decode("utf-8"))

    def close(self) -> None:
        """Tear down the channel and the background loop thread."""
        self._closed = True
        loop = self._loop
        if loop is None:
            return
        try:
            asyncio.run_coroutine_threadsafe(self._shutdown(), loop).result(5.0)
        except Exception:
            pass
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    # ------------------------------------------------------------------ #
    # Background loop
    # ------------------------------------------------------------------ #

    def _start(self) -> None:
        if self._loop is not None:
            return
        with self._start_lock:
            if self._loop is not None:
                return
            loop = asyncio.new_event_loop()
            thread = threading.Thread(
                target=loop.run_forever, name="sww-cache-client", daemon=True
            )
            thread.start()
            self._thread = thread
            self._loop = loop

    def _call(
        self, method: str, path: str, body: bytes | None = None, timeout: float | None = None
    ) -> tuple[int, dict[bytes, bytes], bytes]:
        if self._closed:
            raise ConnectionError("remote cache closed")
        self._start()
        future = asyncio.run_coroutine_threadsafe(
            self._request(method, path, body), self._loop
        )
        return future.result(timeout if timeout is not None else self.call_timeout_s)

    async def _request(
        self, method: str, path: str, body: bytes | None
    ) -> tuple[int, dict[bytes, bytes], bytes]:
        last_error: Exception | None = None
        for attempt in range(2):
            try:
                channel = await self._ensure_channel()
                return await self._issue(channel, method, path, body)
            except (ConnectionError, OSError) as exc:
                last_error = exc
                self._channel = None
        raise last_error if last_error is not None else ConnectionError("cache tier unreachable")

    async def _ensure_channel(self) -> _Channel:
        if self._connect_lock is None:
            self._connect_lock = asyncio.Lock()
        async with self._connect_lock:
            channel = self._channel
            if channel is not None and not channel.dead:
                return channel
            return await self._connect()

    async def _connect(self) -> _Channel:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        conn = H2Connection(Role.CLIENT, gen_ability=False)
        transport = AsyncH2Transport(conn, reader, writer)
        conn.initiate_connection()
        await transport.flush()
        channel = _Channel(conn, transport)
        channel.run_task = asyncio.ensure_future(self._drive(channel))
        try:
            await asyncio.wait_for(channel.ready.wait(), self.call_timeout_s)
        except asyncio.TimeoutError as exc:
            channel.fail_all(ConnectionError("cache tier handshake timed out"))
            await transport.close()
            raise ConnectionError("cache tier handshake timed out") from exc
        self._channel = channel
        return channel

    async def _drive(self, channel: _Channel) -> None:
        conn = channel.conn

        async def on_event(event) -> None:
            if isinstance(event, SettingsAcknowledged):
                channel.ready.set()
            elif isinstance(event, ResponseReceived):
                stream = channel.streams.get(event.stream_id)
                if stream is not None:
                    stream.headers = dict(event.headers)
                    stream.status = int(stream.headers.get(b":status", b"0"))
            elif isinstance(event, DataReceived):
                stream = channel.streams.get(event.stream_id)
                if stream is not None:
                    stream.body.extend(event.data)
                if event.flow_controlled_length > 0:
                    conn.increment_flow_control_window(event.flow_controlled_length)
            elif isinstance(event, StreamEnded):
                stream = channel.streams.pop(event.stream_id, None)
                if stream is not None and not stream.future.done():
                    stream.future.set_result(
                        (stream.status, stream.headers, bytes(stream.body))
                    )
            elif isinstance(event, StreamReset):
                stream = channel.streams.pop(event.stream_id, None)
                if stream is not None and not stream.future.done():
                    stream.future.set_exception(
                        ConnectionError(f"cache tier reset stream {event.stream_id}")
                    )
            elif isinstance(event, ConnectionTerminated):
                channel.fail_all(ConnectionError("cache tier sent GOAWAY"))

        try:
            await channel.transport.run(on_event)
        except (ConnectionError, OSError) as exc:
            channel.fail_all(ConnectionError(str(exc)))
        finally:
            channel.fail_all(ConnectionError("cache tier connection closed"))

    async def _issue(
        self, channel: _Channel, method: str, path: str, body: bytes | None
    ) -> tuple[int, dict[bytes, bytes], bytes]:
        conn = channel.conn
        loop = asyncio.get_running_loop()
        # Stream-id allocation through send_headers happens with no await
        # in between, so concurrent _issue coroutines can't interleave ids.
        stream_id = conn.get_next_available_stream_id()
        stream = _Stream(loop.create_future())
        channel.streams[stream_id] = stream
        headers = [
            (b":method", method.encode("ascii")),
            (b":path", path.encode("utf-8")),
            (b":scheme", b"https"),
            (b":authority", self.authority.encode("ascii")),
            (b"user-agent", b"sww-cache-client/1.0"),
        ]
        conn.send_headers(stream_id, headers, end_stream=body is None)
        if body is not None:
            conn.send_data(stream_id, body, end_stream=True)
        await channel.transport.flush()
        return await stream.future

    async def _shutdown(self) -> None:
        channel = self._channel
        self._channel = None
        if channel is None:
            return
        channel.fail_all(ConnectionError("remote cache closed"))
        if channel.run_task is not None:
            channel.run_task.cancel()
        await channel.transport.close()

    def _degraded(self, operation: str, exc: Exception) -> None:
        with self._stats_lock:
            self.errors += 1
        logger.warning("cache tier %s degraded (%s: %s)", operation, type(exc).__name__, exc)
