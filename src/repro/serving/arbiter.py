"""The pre-fork worker arbiter (master process).

One process binds the serving socket and forks N workers that all accept
from it; the kernel load-balances the backlog across blocked acceptors.
The master itself never serves site traffic — it supervises:

* **reap & respawn** — SIGCHLD reaps exited children; any worker that
  died without being asked to (crash, ``kill -9``, recycle) is respawned
  immediately, so a murdered worker is back within one heartbeat
  interval while its siblings' in-flight requests never notice;
* **heartbeat murder loop** — a worker whose last control-pipe heartbeat
  is older than the worker timeout is presumed wedged and SIGKILLed
  (SIGCHLD then respawns it);
* **signals** — SIGTERM/SIGINT drain the fleet gracefully (workers
  finish in-flight streams and flush queued writer bytes before exit);
  SIGTTIN forks one more worker, SIGTTOU retires the newest; SIGHUP
  rolls the fleet one worker at a time (spawn replacement, wait for its
  hello, then drain the old one) so capacity never dips;
* **shared gencache tier** — when enabled, a
  :class:`~repro.serving.cachetier.CacheTierServer` runs on the master's
  own event loop under the reserved ``sww-cache.internal`` authority,
  extending single-flight generation leadership across the fleet;
* **telemetry aggregation** — per-worker registry dumps, timeseries
  deltas and wide events arrive over the control pipes and are merged
  with the existing ``sww-metrics/1`` / ``sww-timeseries/1`` plumbing
  onto the master's admin plane:

  * ``GET /metrics`` — one OpenMetrics exposition for the whole fleet
    (latest dump per live worker + final dumps of departed workers +
    the master's own registry);
  * ``GET /healthz`` — per-worker verdicts (alive, heartbeat age,
    stale) and a fleet status;
  * ``GET /debug/workers`` — pids, states, restart counts, per-worker
    request/inflight/generation gauges, cache-tier stats;
  * ``GET /debug/timeseries`` — ``merge_snapshots`` over every shipped
    delta (same-worker deltas concatenate by tick index; cross-worker
    points sum);
  * ``GET /debug/events`` — the fleet's wide events as jsonl, ordered
    by ``(worker, seq)``.

Fork hygiene: the master forks from *inside its running event loop*
(respawns happen in SIGCHLD handling), so the child must carefully shed
inherited asyncio state — detach the "running" loop marker, clear the
wakeup fd, restore default signal dispositions and close master-only
fds — before ``asyncio.run`` builds its own loop. The child never
returns: it exits via ``os._exit`` so the master's finalizers never run
twice.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import signal
import socket
import time
import traceback
from collections import deque
from dataclasses import dataclass, field

from repro.gencache.store import DEFAULT_GENCACHE_BYTES
from repro.obs import (
    MetricsRegistry,
    dump_registry,
    load_registry,
    merge_registry_dumps,
    merge_snapshots,
    to_openmetrics,
)
from repro.serving.cachetier import DEFAULT_FLIGHT_TIMEOUT_S, CacheTierServer
from repro.serving.h2util import MiniH2Server, MiniRequest, MiniResponse
from repro.serving.protocol import FrameError, read_frame
from repro.serving.worker import WorkerOptions, worker_main

logger = logging.getLogger("repro.serving.arbiter")

_OPENMETRICS = "application/openmetrics-text; version=1.0.0; charset=utf-8"
_CHILD_FAILURE_STATUS = 70  # EX_SOFTWARE; pre-empts "worker_main never ran"


@dataclass
class ArbiterConfig:
    host: str = "127.0.0.1"
    port: int = 8443
    workers: int = 2
    #: SIGKILL a worker whose last heartbeat is older than this.
    worker_timeout_s: float = 30.0
    heartbeat_interval_s: float = 1.0
    drain_timeout_s: float = 30.0
    max_requests: int = 0
    connection_limit: int = 0
    admin_host: str = "127.0.0.1"
    admin_port: int = 0
    #: Shared gencache tier (0 = ephemeral port). ``cache_tier=False``
    #: leaves every worker on its own process-local cache.
    cache_tier: bool = True
    cache_host: str = "127.0.0.1"
    cache_port: int = 0
    cache_capacity_bytes: int = DEFAULT_GENCACHE_BYTES
    flight_timeout_s: float = DEFAULT_FLIGHT_TIMEOUT_S


@dataclass
class _WorkerRecord:
    worker_id: int
    pid: int
    pipe_fd: int
    state: str = "starting"  # starting | live | retiring | killed
    spawned_at: float = 0.0
    last_heartbeat: float = 0.0
    requests: int = 0
    inflight: int = 0
    connections: int = 0
    generation_sim_s: float = 0.0
    metrics_dump: dict | None = None
    hello: asyncio.Event = field(default_factory=asyncio.Event)
    reader_task: asyncio.Task | None = None


class Arbiter:
    """Master process: fork/supervise workers, host tier + admin planes.

    ``runtime_factory(worker_id, cache_address)`` is called *in the
    child, post-fork* and must return a
    :class:`~repro.serving.worker.WorkerRuntime`; ``cache_address`` is
    ``(host, port)`` of the shared gencache tier, or ``None`` when the
    tier is disabled.
    """

    def __init__(self, config: ArbiterConfig, runtime_factory, registry=None) -> None:
        self.config = config
        self.runtime_factory = runtime_factory
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tier: CacheTierServer | None = None
        self.cache_address: tuple[str, int] | None = None
        self._listen_sock: socket.socket | None = None
        self._workers: dict[int, _WorkerRecord] = {}
        self._departed_dumps: deque[dict] = deque(maxlen=64)
        self._timeseries: deque[dict] = deque(maxlen=4096)
        self._events: deque[dict] = deque(maxlen=8192)
        self._restarts = 0
        self._stopping = False
        self._stop = asyncio.Event()
        self._next_worker_id = 0
        self._master_fds: set[int] = set()
        self._started_at = 0.0

    # ------------------------------------------------------------------ #
    # Entry
    # ------------------------------------------------------------------ #

    def run(self) -> int:
        return asyncio.run(self._amain())

    @property
    def port(self) -> int:
        """The bound serving port (after :meth:`_amain` binds it)."""
        if self._listen_sock is None:
            return self.config.port
        return self._listen_sock.getsockname()[1]

    async def _amain(self) -> int:
        loop = asyncio.get_running_loop()
        self._started_at = time.monotonic()
        config = self.config

        self._listen_sock = self._bind(config.host, config.port, backlog=128)
        host, port = self._listen_sock.getsockname()[:2]

        cache_server = None
        if config.cache_tier:
            self.tier = CacheTierServer(
                config.cache_capacity_bytes,
                registry=self.registry,
                flight_timeout_s=config.flight_timeout_s,
            )
            cache_sock = self._bind(config.cache_host, config.cache_port)
            self.cache_address = cache_sock.getsockname()[:2]
            self._master_fds.add(cache_sock.fileno())
            cache_server = await self.tier.server().serve(sock=cache_sock)

        admin_sock = self._bind(config.admin_host, config.admin_port)
        self.admin_address = admin_sock.getsockname()[:2]
        self._master_fds.add(admin_sock.fileno())
        admin_server = await MiniH2Server(self._admin_handle, registry=self.registry).serve(
            sock=admin_sock
        )

        print(f"sww arbiter serving on {host}:{port} workers={config.workers}", flush=True)
        print(f"sww arbiter admin on {self.admin_address[0]}:{self.admin_address[1]}", flush=True)
        if self.cache_address is not None:
            print(
                f"sww arbiter cache tier on {self.cache_address[0]}:{self.cache_address[1]}",
                flush=True,
            )

        loop.add_signal_handler(signal.SIGCHLD, self._on_sigchld)
        loop.add_signal_handler(signal.SIGTERM, self._request_stop)
        loop.add_signal_handler(signal.SIGINT, self._request_stop)
        loop.add_signal_handler(signal.SIGTTIN, self._on_ttin)
        loop.add_signal_handler(signal.SIGTTOU, self._on_ttou)
        loop.add_signal_handler(signal.SIGHUP, self._on_hup)

        for _ in range(config.workers):
            await self._spawn(self._allocate_worker_id())
        self._gauge_workers()

        murder = asyncio.create_task(self._murder_loop())
        try:
            await self._stop.wait()
        finally:
            murder.cancel()
            try:
                await murder
            except asyncio.CancelledError:
                pass
            await self._shutdown_fleet()
            if cache_server is not None:
                cache_server.close()
            admin_server.close()
            self._listen_sock.close()
        print("sww arbiter stopped", flush=True)
        return 0

    # ------------------------------------------------------------------ #
    # Sockets & fork
    # ------------------------------------------------------------------ #

    @staticmethod
    def _bind(host: str, port: int, backlog: int = 16) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(backlog)
        sock.setblocking(False)
        return sock

    def _allocate_worker_id(self) -> int:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        return worker_id

    async def _spawn(self, worker_id: int) -> _WorkerRecord:
        """Fork one worker; parent wires the control pipe, child serves."""
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            self._child(worker_id, read_fd, write_fd)  # never returns
        os.close(write_fd)
        record = _WorkerRecord(
            worker_id=worker_id,
            pid=pid,
            pipe_fd=read_fd,
            spawned_at=time.monotonic(),
            last_heartbeat=time.monotonic(),
        )
        self._workers[pid] = record
        self._master_fds.add(read_fd)
        record.reader_task = asyncio.create_task(self._read_pipe(record))
        print(f"sww arbiter worker {worker_id} pid {pid}", flush=True)
        return record

    def _child(self, worker_id: int, read_fd: int, write_fd: int) -> None:
        """Post-fork hygiene, then the worker's own world. Never returns."""
        status = _CHILD_FAILURE_STATUS
        try:
            # The fork happened inside the master's *running* loop; shed
            # every trace of it so asyncio.run can build a fresh one.
            asyncio.events._set_running_loop(None)
            asyncio.set_event_loop(None)
            signal.set_wakeup_fd(-1)
            for sig in (
                signal.SIGCHLD,
                signal.SIGTERM,
                signal.SIGINT,
                signal.SIGTTIN,
                signal.SIGTTOU,
                signal.SIGHUP,
            ):
                signal.signal(sig, signal.SIG_DFL)
            os.close(read_fd)
            for fd in self._master_fds:
                # Raw close: the master's socket objects still wrap these
                # in this child, but os._exit below skips finalizers.
                try:
                    os.close(fd)
                except OSError:
                    pass
            factory = self.runtime_factory
            cache_address = self.cache_address
            options = WorkerOptions(
                worker_id=worker_id,
                heartbeat_interval_s=self.config.heartbeat_interval_s,
                drain_timeout_s=self.config.drain_timeout_s,
                max_requests=self.config.max_requests,
                connection_limit=self.config.connection_limit,
            )
            status = worker_main(
                self._listen_sock,
                write_fd,
                options,
                lambda: factory(worker_id, cache_address),
            )
        except BaseException:
            traceback.print_exc()
        finally:
            os._exit(status)

    # ------------------------------------------------------------------ #
    # Control pipe
    # ------------------------------------------------------------------ #

    async def _read_pipe(self, record: _WorkerRecord) -> None:
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader()
        protocol = asyncio.StreamReaderProtocol(reader)
        pipe = os.fdopen(record.pipe_fd, "rb", buffering=0)
        self._master_fds.discard(record.pipe_fd)
        transport, _ = await loop.connect_read_pipe(lambda: protocol, pipe)
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except FrameError as exc:
                    logger.warning("worker %d: bad control frame: %s", record.pid, exc)
                    break
                if frame is None:
                    break
                self._handle_frame(record, frame)
        finally:
            transport.close()

    def _handle_frame(self, record: _WorkerRecord, frame: dict) -> None:
        kind = frame.get("type")
        now = time.monotonic()
        if kind == "hello":
            if record.state == "starting":
                record.state = "live"
            record.last_heartbeat = now
            record.hello.set()
        elif kind == "heartbeat":
            record.last_heartbeat = now
            record.requests = int(frame.get("requests", 0))
            record.inflight = int(frame.get("inflight", 0))
            record.connections = int(frame.get("connections", 0))
            record.generation_sim_s = float(frame.get("generation_sim_s", 0.0))
            self._count("heartbeat")
        elif kind == "metrics":
            record.metrics_dump = frame.get("dump")
        elif kind == "timeseries":
            snapshot = frame.get("snapshot")
            if snapshot:
                self._timeseries.append(snapshot)
        elif kind == "events":
            self._events.extend(frame.get("events", ()))
        elif kind == "bye":
            record.requests = int(frame.get("requests", record.requests))
            record.generation_sim_s = float(
                frame.get("generation_sim_s", record.generation_sim_s)
            )
            if record.state == "live":
                # Self-initiated exit (max-requests recycle): the reap
                # handler will respawn because the state is still live.
                logger.info(
                    "worker %d pid %d leaving (%s)",
                    record.worker_id,
                    record.pid,
                    frame.get("exit", "?"),
                )

    # ------------------------------------------------------------------ #
    # Signals & supervision
    # ------------------------------------------------------------------ #

    def _request_stop(self) -> None:
        self._stopping = True
        self._stop.set()

    def _on_sigchld(self) -> None:
        asyncio.get_running_loop().create_task(self._reap())

    def _on_ttin(self) -> None:
        if self._stopping:
            return
        asyncio.get_running_loop().create_task(self._scale_up())

    def _on_ttou(self) -> None:
        asyncio.get_running_loop().create_task(self._retire_newest())

    def _on_hup(self) -> None:
        if self._stopping:
            return
        asyncio.get_running_loop().create_task(self._rolling_reload())

    async def _scale_up(self) -> None:
        await self._spawn(self._allocate_worker_id())
        self._gauge_workers()

    async def _retire_newest(self) -> None:
        live = [r for r in self._workers.values() if r.state in ("starting", "live")]
        if len(live) <= 1:
            return  # never drain the last worker via scale-down
        newest = max(live, key=lambda r: r.worker_id)
        newest.state = "retiring"
        # A worker installs its signal handlers before it ships hello; a
        # SIGTERM delivered in the fork window would hit the inherited
        # (master) handler and be swallowed. Wait for hello, then drain.
        try:
            await asyncio.wait_for(newest.hello.wait(), self.config.worker_timeout_s)
        except asyncio.TimeoutError:
            self._kill(newest.pid, signal.SIGKILL)
            return
        self._kill(newest.pid, signal.SIGTERM)

    async def _rolling_reload(self) -> None:
        """SIGHUP: replace every worker one at a time, capacity intact."""
        for pid in list(self._workers):
            old = self._workers.get(pid)
            if old is None or old.state not in ("starting", "live"):
                continue
            replacement = await self._spawn(self._allocate_worker_id())
            try:
                await asyncio.wait_for(
                    replacement.hello.wait(), self.config.worker_timeout_s
                )
            except asyncio.TimeoutError:
                logger.warning("reload: replacement worker never said hello")
            if self._stopping:
                return
            old.state = "retiring"
            try:  # same fork-window guard as _retire_newest
                await asyncio.wait_for(old.hello.wait(), self.config.worker_timeout_s)
            except asyncio.TimeoutError:
                self._kill(old.pid, signal.SIGKILL)
                continue
            self._kill(old.pid, signal.SIGTERM)
        self._gauge_workers()

    async def _reap(self) -> None:
        while True:
            try:
                pid, _status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                return
            if pid == 0:
                return
            record = self._workers.pop(pid, None)
            if record is None:
                continue
            if record.metrics_dump is not None:
                # Keep the dead worker's final counters in /metrics.
                self._departed_dumps.append(record.metrics_dump)
            respawn = not self._stopping and record.state in ("starting", "live")
            logger.info(
                "reaped worker %d pid %d (state=%s, respawn=%s)",
                record.worker_id,
                pid,
                record.state,
                respawn,
            )
            if respawn:
                self._restarts += 1
                self._count("respawn", name="serving_worker_restarts_total",
                            help="Workers respawned after unplanned exits")
                await self._spawn(record.worker_id)
            self._gauge_workers()

    async def _murder_loop(self) -> None:
        """SIGKILL workers whose heartbeat went stale (wedged loop)."""
        interval = max(self.config.heartbeat_interval_s, 0.1)
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            for record in list(self._workers.values()):
                if record.state not in ("starting", "live"):
                    continue
                if now - record.last_heartbeat > self.config.worker_timeout_s:
                    logger.warning(
                        "worker %d pid %d heartbeat stale (%.1fs); killing",
                        record.worker_id,
                        record.pid,
                        now - record.last_heartbeat,
                    )
                    record.state = "killed"
                    self._kill(record.pid, signal.SIGKILL)

    async def _shutdown_fleet(self) -> None:
        for record in self._workers.values():
            self._kill(record.pid, signal.SIGTERM)
        deadline = time.monotonic() + self.config.drain_timeout_s + 5.0
        while self._workers and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
            await self._reap()
        for record in list(self._workers.values()):
            logger.warning("worker pid %d ignored drain; SIGKILL", record.pid)
            self._kill(record.pid, signal.SIGKILL)
        while self._workers:
            await asyncio.sleep(0.05)
            await self._reap()

    @staticmethod
    def _kill(pid: int, sig: int) -> None:
        try:
            os.kill(pid, sig)
        except ProcessLookupError:
            pass

    # ------------------------------------------------------------------ #
    # Master admin plane
    # ------------------------------------------------------------------ #

    async def _admin_handle(self, request: MiniRequest) -> MiniResponse:
        path = request.path.split("?", 1)[0]
        if path == "/metrics":
            return MiniResponse(
                body=to_openmetrics(self._merged_registry()).encode("utf-8"),
                content_type=_OPENMETRICS,
            )
        if path == "/healthz":
            return self._json(self._healthz())
        if path == "/debug/workers":
            return self._json(self._workers_state())
        if path == "/debug/timeseries":
            return self._json(merge_snapshots(list(self._timeseries)))
        if path == "/debug/events":
            ordered = sorted(
                self._events, key=lambda e: (e.get("worker", 0), e.get("seq", 0))
            )
            body = "".join(
                json.dumps(event, sort_keys=True, default=str) + "\n" for event in ordered
            )
            return MiniResponse(body=body.encode("utf-8"), content_type="text/plain; charset=utf-8")
        return MiniResponse(status=404, body=b"unknown arbiter route", content_type="text/plain")

    def _merged_registry(self) -> MetricsRegistry:
        dumps = list(self._departed_dumps)
        dumps.extend(
            record.metrics_dump
            for record in self._workers.values()
            if record.metrics_dump is not None
        )
        merged = merge_registry_dumps(dumps)
        # The master's own counters (restarts, heartbeats, tier traffic)
        # ride along in the same exposition.
        load_registry(dump_registry(self.registry), into=merged)
        return merged

    def _healthz(self) -> dict:
        now = time.monotonic()
        workers = []
        stale = 0
        for record in sorted(self._workers.values(), key=lambda r: r.worker_id):
            age = now - record.last_heartbeat
            is_stale = age > self.config.worker_timeout_s
            stale += is_stale
            workers.append(
                {
                    "worker_id": record.worker_id,
                    "pid": record.pid,
                    "state": record.state,
                    "heartbeat_age_s": round(age, 3),
                    "stale": is_stale,
                    "requests": record.requests,
                    "inflight": record.inflight,
                }
            )
        live = sum(1 for r in self._workers.values() if r.state in ("starting", "live"))
        status = "ok" if live >= 1 and stale == 0 else "degraded"
        return {
            "status": status,
            "workers": workers,
            "live": live,
            "stale": stale,
            "restarts": self._restarts,
            "uptime_s": round(now - self._started_at, 3),
        }

    def _workers_state(self) -> dict:
        now = time.monotonic()
        doc: dict = {
            "workers": [
                {
                    "worker_id": record.worker_id,
                    "pid": record.pid,
                    "state": record.state,
                    "heartbeat_age_s": round(now - record.last_heartbeat, 3),
                    "uptime_s": round(now - record.spawned_at, 3),
                    "requests": record.requests,
                    "inflight": record.inflight,
                    "connections": record.connections,
                    "generation_sim_s": record.generation_sim_s,
                }
                for record in sorted(self._workers.values(), key=lambda r: r.worker_id)
            ],
            "restarts": self._restarts,
            "events_buffered": len(self._events),
            "timeseries_deltas": len(self._timeseries),
        }
        if self.tier is not None and self.cache_address is not None:
            stats = self.tier.cache.stats
            doc["cache_tier"] = {
                "address": list(self.cache_address),
                "hits": stats.hits,
                "misses": stats.misses,
                "coalesced": stats.coalesced,
                "hit_rate": stats.hit_rate,
                "entry_count": self.tier.cache.entry_count,
                "used_bytes": self.tier.cache.used_bytes,
                "flights": len(self.tier._flights),
            }
        return doc

    @staticmethod
    def _json(document: dict) -> MiniResponse:
        return MiniResponse(
            body=json.dumps(document, sort_keys=True, default=str).encode("utf-8")
        )

    # ------------------------------------------------------------------ #
    # Master metrics
    # ------------------------------------------------------------------ #

    def _gauge_workers(self) -> None:
        if self.registry.enabled:
            live = sum(1 for r in self._workers.values() if r.state in ("starting", "live"))
            self.registry.gauge(
                "serving_workers_size",
                "Live workers under the arbiter",
                layer="serving",
            ).set(live)

    def _count(
        self,
        operation: str,
        name: str = "serving_heartbeats_total",
        help: str = "Worker control-pipe heartbeats received",
    ) -> None:
        if self.registry.enabled:
            self.registry.counter(name, help, layer="serving", operation=operation).inc()
