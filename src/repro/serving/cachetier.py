"""The shared gencache tier: one generation cache for N forked workers.

The per-process :class:`~repro.gencache.GenerationCache` already earns
the paper's amortisation inside one worker; across a pre-fork fleet each
worker would regenerate what its siblings already paid for. This module
hoists the cache into the arbiter: a lightweight cache server spoken to
over the repo's own HTTP/2 stack under the reserved
``sww-cache.internal`` authority (PROTOCOL.md §7.1, mirroring
``sww-admin.internal``), so a hit — or an in-flight generation — in
worker A saves the full generation cost in worker B.

Wire protocol (all under the reserved authority):

* ``GET /gencache/<digest>`` — look up one generation key digest.

  * **hit** → 200, ``x-sww-cache: hit``, body = the JSON envelope
    (base64 payload, text, cold sim seconds / energy);
  * **miss, no flight** → 404, ``x-sww-cache: lead`` — the tier records
    a flight and the requester *leads*: it generates and publishes;
  * **miss, live flight** → the request *parks* (long-poll) until the
    leader publishes, then 200, ``x-sww-cache: coalesced`` with the
    leader's envelope. This is the gencache's single-flight leadership
    extended across process boundaries. A parked waiter whose leader
    never publishes (crashed worker) is promoted to leader after
    ``flight_timeout_s``: 404, ``x-sww-cache: lead``.

* ``PUT /gencache/<digest>`` — publish a generated result: inserts into
  the cache and wakes every parked waiter. 204.
* ``POST /coalesced`` — account an in-process coalesced duplicate
  (a worker's own single-flight absorbed a concurrent item) so fleet
  stats match single-process accounting. 204.
* ``GET /stats`` — the cache's :class:`~repro.gencache.GenCacheStats`
  plus byte/flight occupancy, as JSON.

Accounting is exact by construction: the leader's GET counted the miss,
a published envelope is handed to each parked waiter straight from the
flight (never re-looked-up, which would miscount a hit) with one
``record_coalesced`` per waiter, and hits count through the ordinary
``lookup`` path.
"""

from __future__ import annotations

import asyncio
import base64
import json
import logging
from dataclasses import dataclass

from repro.gencache.store import DEFAULT_GENCACHE_BYTES, CachedGeneration, GenerationCache
from repro.serving.h2util import MiniH2Server, MiniRequest, MiniResponse

logger = logging.getLogger("repro.serving.cachetier")

#: The reserved cache-tier authority (PROTOCOL.md §7.1). Like the admin
#: authority it is never a registrable site host.
CACHE_AUTHORITY = "sww-cache.internal"

#: A flight whose leader has not published within this window is assumed
#: dead; the next parked waiter is promoted to leader.
DEFAULT_FLIGHT_TIMEOUT_S = 60.0

_JSON = "application/json"
_OUTCOME = b"x-sww-cache"


@dataclass(frozen=True)
class _DigestKey:
    """Key shim for the tier-side cache, which addresses by digest only."""

    digest: str


def encode_envelope(
    payload: bytes, text: str, sim_time_s: float, energy_wh: float
) -> bytes:
    """The JSON body a published generation travels as."""
    return json.dumps(
        {
            "payload": base64.b64encode(payload).decode("ascii"),
            "text": text,
            "sim_time_s": sim_time_s,
            "energy_wh": energy_wh,
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")


def decode_envelope(body: bytes) -> dict:
    doc = json.loads(body.decode("utf-8"))
    doc["payload"] = base64.b64decode(doc["payload"])
    return doc


class _Flight:
    """One in-flight generation: a leader somewhere, waiters parked here."""

    __slots__ = ("published", "envelope", "waiters")

    def __init__(self) -> None:
        self.published = asyncio.Event()
        self.envelope: bytes | None = None
        self.waiters = 0


class CacheTierServer:
    """The tier's request logic; serve it with :class:`MiniH2Server`.

    Loop-confined by design: every handler runs on the arbiter's event
    loop and there is no await between reading and mutating the flight
    table, so no lock is needed around it. The underlying
    :class:`GenerationCache` keeps its own lock regardless.
    """

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_GENCACHE_BYTES,
        registry=None,
        flight_timeout_s: float = DEFAULT_FLIGHT_TIMEOUT_S,
    ) -> None:
        self.cache = GenerationCache(capacity_bytes, registry=registry)
        self.registry = registry
        self.flight_timeout_s = flight_timeout_s
        self._flights: dict[str, _Flight] = {}

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    async def handle(self, request: MiniRequest) -> MiniResponse:
        path = request.path
        if path.startswith("/gencache/"):
            digest = path[len("/gencache/"):]
            if request.method == "GET":
                self._count("lookup")
                return await self._lookup(digest)
            if request.method == "PUT":
                self._count("publish")
                return self._publish(digest, request.body)
        elif path == "/coalesced" and request.method == "POST":
            self._count("coalesced")
            return self._coalesced(request.body)
        elif path == "/stats" and request.method == "GET":
            self._count("stats")
            return self._stats()
        return MiniResponse(status=404, body=b"unknown cache-tier route", content_type="text/plain")

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #

    async def _lookup(self, digest: str) -> MiniResponse:
        # Flight check FIRST: a live flight means the entry is not yet
        # cached (publish inserts and clears the flight atomically on
        # this loop), and a parked waiter must count only ``coalesced``
        # — never a miss — to match in-process single-flight accounting.
        flight = self._flights.get(digest)
        if flight is None:
            record = self.cache.lookup(_DigestKey(digest))
            if record is not None:
                return MiniResponse(
                    body=encode_envelope(
                        record.payload, record.text, record.sim_time_s, record.energy_wh
                    ),
                    content_type=_JSON,
                    headers=[(_OUTCOME, b"hit")],
                )
            # Miss (counted by lookup): this requester leads.
            self._flights[digest] = _Flight()
            self._gauge_flights()
            return MiniResponse(
                status=404, body=b"", content_type=_JSON, headers=[(_OUTCOME, b"lead")]
            )
        flight.waiters += 1
        try:
            await asyncio.wait_for(flight.published.wait(), self.flight_timeout_s)
        except asyncio.TimeoutError:
            # Leader presumed dead. Promote this waiter: replace the stale
            # flight (if still current) so later requests park on a live
            # one, and count the miss its original lookup skipped.
            if self._flights.get(digest) is flight and not flight.published.is_set():
                self._flights[digest] = _Flight()
            self.cache.lookup(_DigestKey(digest))
            return MiniResponse(
                status=404, body=b"", content_type=_JSON, headers=[(_OUTCOME, b"lead")]
            )
        finally:
            flight.waiters -= 1
            self._gauge_flights()
        # Hand the published envelope straight from the flight — never
        # re-lookup, which would count a hit instead of a coalesce.
        envelope = flight.envelope or b"{}"
        doc = json.loads(envelope.decode("utf-8"))
        self.cache.record_coalesced(
            float(doc.get("sim_time_s", 0.0)), float(doc.get("energy_wh", 0.0))
        )
        return MiniResponse(
            body=envelope, content_type=_JSON, headers=[(_OUTCOME, b"coalesced")]
        )

    def _publish(self, digest: str, body: bytes) -> MiniResponse:
        try:
            doc = decode_envelope(body)
        except (ValueError, KeyError) as exc:
            return MiniResponse(
                status=400, body=f"bad envelope: {exc}".encode(), content_type="text/plain"
            )
        self.cache.insert(
            _DigestKey(digest),
            payload=doc["payload"],
            text=doc.get("text", ""),
            sim_time_s=float(doc.get("sim_time_s", 0.0)),
            energy_wh=float(doc.get("energy_wh", 0.0)),
        )
        flight = self._flights.pop(digest, None)
        if flight is not None:
            flight.envelope = body
            flight.published.set()
        self._gauge_flights()
        return MiniResponse(status=204, body=b"", content_type=_JSON)

    def _coalesced(self, body: bytes) -> MiniResponse:
        try:
            doc = json.loads(body.decode("utf-8"))
            saved_sim_s = float(doc["saved_sim_s"])
            saved_energy_wh = float(doc["saved_energy_wh"])
        except (ValueError, KeyError) as exc:
            return MiniResponse(
                status=400, body=f"bad coalesce record: {exc}".encode(), content_type="text/plain"
            )
        self.cache.record_coalesced(saved_sim_s, saved_energy_wh)
        return MiniResponse(status=204, body=b"", content_type=_JSON)

    def _stats(self) -> MiniResponse:
        stats = self.cache.stats
        doc = {
            "hits": stats.hits,
            "misses": stats.misses,
            "coalesced": stats.coalesced,
            "insertions": stats.insertions,
            "rejected": stats.rejected,
            "saved_sim_seconds": stats.saved_sim_seconds,
            "saved_energy_wh": stats.saved_energy_wh,
            "requests": stats.requests,
            "hit_rate": stats.hit_rate,
            "used_bytes": self.cache.used_bytes,
            "capacity_bytes": self.cache.capacity_bytes,
            "entry_count": self.cache.entry_count,
            "flights": len(self._flights),
        }
        return MiniResponse(
            body=json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")
        )

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #

    def server(self) -> MiniH2Server:
        """An H2 server loop bound to this tier's request logic."""
        return MiniH2Server(self.handle, registry=self.registry)

    def _count(self, operation: str) -> None:
        if self.registry is not None and self.registry.enabled:
            self.registry.counter(
                "gencache_tier_requests_total",
                "Cache-tier requests served, by operation",
                layer="gencache",
                operation=operation,
            ).inc()

    def _gauge_flights(self) -> None:
        if self.registry is not None and self.registry.enabled:
            self.registry.gauge(
                "gencache_tier_flights_depth",
                "Cross-worker generations currently in flight at the tier",
                layer="gencache",
            ).set(len(self._flights))
