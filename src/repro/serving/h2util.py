"""A minimal respond-only HTTP/2 server loop over the repo's own stack.

The cache tier and the arbiter's master admin plane both need the same
small thing: accept connections, aggregate each request stream's headers
and body, call an async handler once the stream ends, and ship the
response through the flow-control-aware :class:`ConnectionWriter`. The
full :class:`~repro.sww.server.GenerativeServer` brings negotiation,
generation pipelines and wide events along — none of which a cache or
admin endpoint wants — so this module is the thin alternative: the same
engine (:class:`~repro.http2.connection.H2Connection`), the same
transport, no content semantics.

Flow-control notes: request bodies replenish the *connection-level*
window as they arrive (per-stream windows start at the engine's 16 MiB
initial size and streams here are one-shot, so stream-level top-ups are
unnecessary — the admin-fetch client takes the same view). Response
bodies go through the writer so a slow peer parks the stream instead of
blocking the loop.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass, field

from repro.http2.connection import (
    ConnectionTerminated,
    DataReceived,
    H2Connection,
    RequestReceived,
    Role,
    StreamEnded,
    StreamReset,
    WindowUpdated,
)
from repro.http2.errors import H2Error
from repro.http2.transport import AsyncH2Transport
from repro.http2.writer import ConnectionWriter

logger = logging.getLogger("repro.serving.h2util")


@dataclass
class MiniRequest:
    """One fully received request stream."""

    method: str
    path: str
    authority: str
    body: bytes
    stream_id: int


@dataclass
class MiniResponse:
    """What a handler returns; rendered to HEADERS + DATA."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    #: Extra response headers beyond status/content-type/length.
    headers: list[tuple[bytes, bytes]] = field(default_factory=list)

    def header_list(self) -> list[tuple[bytes, bytes]]:
        return [
            (b":status", str(self.status).encode()),
            (b"content-type", self.content_type.encode()),
            (b"content-length", str(len(self.body)).encode()),
            *self.headers,
        ]


class MiniH2Server:
    """Respond-only HTTP/2 server: one async handler, no content store.

    ``handler`` is ``async (MiniRequest) -> MiniResponse``; it runs on
    the event loop (handlers must be cheap or await). Exceptions become
    500s so one bad request never kills the connection.
    """

    def __init__(self, handler, registry=None) -> None:
        self.handler = handler
        self.registry = registry

    async def serve(self, sock=None, host: str = "127.0.0.1", port: int = 0):
        """Start listening; pass ``sock`` to adopt a pre-bound socket."""
        if sock is not None:
            return await asyncio.start_server(self.handle_connection, sock=sock)
        return await asyncio.start_server(self.handle_connection, host, port)

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = H2Connection(Role.SERVER, gen_ability=False, registry=self.registry)
        transport = AsyncH2Transport(conn, reader, writer)
        conn.initiate_connection()
        try:
            await transport.flush()
        except (ConnectionError, OSError):
            await transport.close()
            return
        out = ConnectionWriter(conn)
        streams: dict[int, MiniRequest] = {}
        tasks: set[asyncio.Task] = set()

        async def respond(request: MiniRequest) -> None:
            try:
                response = await self.handler(request)
            except Exception:
                logger.exception("handler failed for %s %s", request.method, request.path)
                response = MiniResponse(
                    status=500, body=b"handler error", content_type="text/plain"
                )
            try:
                conn.send_headers(request.stream_id, response.header_list())
                out.enqueue(request.stream_id, response.body, end_stream=True)
            except H2Error:
                logger.warning("stream %d died under its response", request.stream_id)
                return
            transport.wake_writer()

        async def dispatch(event) -> None:
            if isinstance(event, RequestReceived):
                headers = dict(event.headers)
                streams[event.stream_id] = MiniRequest(
                    method=headers.get(b":method", b"GET").decode("utf-8", "replace"),
                    path=headers.get(b":path", b"/").decode("utf-8", "replace"),
                    authority=headers.get(b":authority", b"").decode("utf-8", "replace"),
                    body=b"",
                    stream_id=event.stream_id,
                )
            elif isinstance(event, DataReceived):
                request = streams.get(event.stream_id)
                if request is not None:
                    request.body += event.data
                if event.flow_controlled_length > 0:
                    # Keep the connection-level window topped up; stream
                    # windows are 16 MiB fresh per one-shot stream.
                    conn.increment_flow_control_window(event.flow_controlled_length)
            elif isinstance(event, StreamEnded):
                request = streams.pop(event.stream_id, None)
                if request is not None:
                    task = asyncio.create_task(respond(request))
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
            elif isinstance(event, (WindowUpdated, ConnectionTerminated)):
                transport.wake_writer()
            elif isinstance(event, StreamReset):
                streams.pop(event.stream_id, None)
                transport.wake_writer()

        async def pump() -> None:
            while not transport.closed.is_set():
                await transport.wait_writable()
                while not out.idle:
                    wrote = out.pump()
                    try:
                        await transport.flush()
                    except (ConnectionError, OSError):
                        return
                    if wrote == 0:
                        break

        pump_task = asyncio.create_task(pump())
        try:
            await transport.run(dispatch, close_on_exit=False)
            # Let queued responses leave before the socket closes.
            for task in list(tasks):
                try:
                    await task
                except asyncio.CancelledError:
                    pass
            while not out.idle:
                if out.pump() == 0:
                    break
                try:
                    await transport.flush()
                except (ConnectionError, OSError):
                    break
        finally:
            pump_task.cancel()
            try:
                await pump_task
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass
            for task in tasks:
                task.cancel()
            out.abort_pending()
            await transport.close()
