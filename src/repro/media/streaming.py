"""HLS-style segmented video streaming over SWW-negotiated HTTP/2 (§3.2).

    "Video streaming protocols, such as HTTP Live Streaming (HLS) and
    MPEG-DASH, run on top of HTTP. The proposed modifications to HTTP for
    web pages can be applied also to negotiate generation abilities also
    for video streaming. ... In SWW, client devices can negotiate with
    the video server generation abilities before content is sent."

This module implements the streaming shape those protocols share —
a master playlist of variants, media playlists of fixed-duration
segments, segment GETs — with the SWW twist: the server picks the variant
to *ship* from the client's advertised GEN_ABILITY video bits, expecting
the client to reconstruct the requested rendition (frame-rate boosting
and/or resolution upscaling, §3.2). Segment payloads are size-accurate
synthetic bytes; session accounting reproduces the paper's GB/hour
arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util.rng import DeterministicRNG
from repro.http2.settings import GenAbility, GenCapability
from repro.media.video import STANDARD_LADDER, VideoLadder, VideoVariant

DEFAULT_SEGMENT_SECONDS = 6.0


@dataclass(frozen=True)
class Segment:
    """One media segment of a rendition."""

    variant: str
    index: int
    duration_s: float
    size_bytes: int

    @property
    def path(self) -> str:
        return f"/video/{self.variant}/segment-{self.index:05d}.ts"


@dataclass
class MediaPlaylist:
    """An HLS-like media playlist for one rendition."""

    variant: VideoVariant
    segment_seconds: float
    segments: list[Segment]

    def to_m3u8(self) -> str:
        lines = [
            "#EXTM3U",
            "#EXT-X-VERSION:7",
            f"#EXT-X-TARGETDURATION:{int(self.segment_seconds)}",
            "#EXT-X-MEDIA-SEQUENCE:0",
        ]
        for segment in self.segments:
            lines.append(f"#EXTINF:{segment.duration_s:.3f},")
            lines.append(segment.path)
        lines.append("#EXT-X-ENDLIST")
        return "\n".join(lines) + "\n"


class StreamingService:
    """The server side: playlists plus SWW-aware variant selection."""

    def __init__(
        self,
        ladder: VideoLadder | None = None,
        duration_s: float = 3600.0,
        segment_seconds: float = DEFAULT_SEGMENT_SECONDS,
    ) -> None:
        if duration_s <= 0 or segment_seconds <= 0:
            raise ValueError("durations must be positive")
        self.ladder = ladder or VideoLadder(STANDARD_LADDER)
        self.duration_s = duration_s
        self.segment_seconds = segment_seconds
        self._playlists: dict[str, MediaPlaylist] = {}

    def master_playlist(self) -> str:
        lines = ["#EXTM3U", "#EXT-X-VERSION:7"]
        for variant in self.ladder.variants:
            lines.append(
                f"#EXT-X-STREAM-INF:BANDWIDTH={int(variant.bits_per_second)},"
                f'RESOLUTION={variant.width}x{variant.height},FRAME-RATE={variant.fps}'
            )
            lines.append(f"/video/{variant.name}/playlist.m3u8")
        return "\n".join(lines) + "\n"

    def media_playlist(self, variant_name: str) -> MediaPlaylist:
        playlist = self._playlists.get(variant_name)
        if playlist is None:
            variant = self.ladder.find(variant_name)
            count = int(self.duration_s // self.segment_seconds)
            bytes_per_segment = int(variant.bytes_per_hour * self.segment_seconds / 3600)
            segments = [
                Segment(variant.name, index, self.segment_seconds, bytes_per_segment)
                for index in range(count)
            ]
            playlist = MediaPlaylist(variant, self.segment_seconds, segments)
            self._playlists[variant_name] = playlist
        return playlist

    def select_shipped_variant(
        self, requested: str, client_ability: GenAbility
    ) -> tuple[VideoVariant, float]:
        """Apply §3.2: pick what to send given the client's video bits."""
        target = self.ladder.find(requested)
        framerate = client_ability.supports(GenCapability.VIDEO_FRAMERATE)
        resolution = client_ability.supports(GenCapability.VIDEO_RESOLUTION)
        return self.ladder.serve_plan(
            target, client_framerate_boost=framerate, client_resolution_upscale=resolution
        )

    def segment_bytes(self, segment: Segment, seed: str = "segment") -> bytes:
        """Size-accurate synthetic payload for one segment."""
        rng = DeterministicRNG("segment-bytes", seed, segment.path)
        return rng.bytes(segment.size_bytes)


@dataclass
class SessionStats:
    """Accounting for one playback session."""

    requested_variant: str
    shipped_variant: str
    segments_fetched: int = 0
    bytes_received: int = 0
    playback_seconds: float = 0.0
    #: Client-side reconstruction work (frame interpolation / upscaling).
    reconstruction_s: float = 0.0
    reconstruction_wh: float = 0.0

    @property
    def gb_per_hour(self) -> float:
        if self.playback_seconds == 0:
            return 0.0
        return self.bytes_received / 1e9 * 3600.0 / self.playback_seconds


class StreamingSession:
    """The client side of one playback: negotiate, fetch, account."""

    def __init__(
        self,
        service: StreamingService,
        client_ability: GenAbility,
        device=None,
    ) -> None:
        from repro.devices import LAPTOP

        self.service = service
        self.client_ability = client_ability
        self.device = device or LAPTOP
        #: Upscaler used for client-side reconstruction (§3.2 cites the
        #: RTX-VSR / Fluid-Motion-Frames class of fast scalers).
        from repro.genai.upscale import FAST_SCALER

        self._scaler = FAST_SCALER

    def play(self, requested: str, seconds: float) -> SessionStats:
        """Play ``seconds`` of the requested rendition."""
        if seconds <= 0:
            raise ValueError("playback duration must be positive")
        shipped, _savings = self.service.select_shipped_variant(requested, self.client_ability)
        # The shipped rendition's playlist: the base ladder rung actually
        # sent (strip any derived-name decoration for playlist lookup).
        base_name = shipped.name.split("@")[0].split("->")[0]
        playlist = self.service.media_playlist(base_name)
        stats = SessionStats(requested_variant=requested, shipped_variant=shipped.name)

        per_segment_bytes = int(shipped.bytes_per_hour * self.service.segment_seconds / 3600)
        reconstructing = shipped.name != requested
        for segment in playlist.segments:
            if stats.playback_seconds >= seconds:
                break
            stats.segments_fetched += 1
            stats.bytes_received += per_segment_bytes
            stats.playback_seconds += segment.duration_s
            if reconstructing:
                # One reconstruction pass per segment, FAST_SCALER-priced
                # at the target resolution.
                target = self.service.ladder.find(requested)
                time_cost = self._scaler.inference_time(self.device, target.width // 8, target.height // 8)
                stats.reconstruction_s += time_cost
                stats.reconstruction_wh += self.device.image_power.energy_wh(time_cost)
        return stats
