"""A from-scratch PNG codec for 8-bit RGB images.

Implements the PNG container (signature, IHDR/IDAT/IEND chunks, CRC-32),
zlib-compressed scanlines, and the five standard scanline filters. The
encoder picks a filter per row with the standard minimum-sum-of-absolute-
differences heuristic; the decoder reverses any filter, so images produced
by other encoders (colour type 2, bit depth 8, no interlace) also decode.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

PNG_SIGNATURE = b"\x89PNG\r\n\x1a\n"

_FILTER_NONE = 0
_FILTER_SUB = 1
_FILTER_UP = 2
_FILTER_AVERAGE = 3
_FILTER_PAETH = 4


def _chunk(chunk_type: bytes, data: bytes) -> bytes:
    crc = zlib.crc32(chunk_type + data) & 0xFFFFFFFF
    return struct.pack(">L", len(data)) + chunk_type + data + struct.pack(">L", crc)


def _paeth(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """The Paeth predictor, vectorised over a scanline."""
    a16 = a.astype(np.int16)
    b16 = b.astype(np.int16)
    c16 = c.astype(np.int16)
    p = a16 + b16 - c16
    pa = np.abs(p - a16)
    pb = np.abs(p - b16)
    pc = np.abs(p - c16)
    out = np.where((pa <= pb) & (pa <= pc), a16, np.where(pb <= pc, b16, c16))
    return out.astype(np.uint8)


def encode_png(pixels: np.ndarray, compress_level: int = 6) -> bytes:
    """Encode an (H, W, 3) uint8 array as PNG bytes."""
    if pixels.ndim != 3 or pixels.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) RGB array, got shape {pixels.shape}")
    if pixels.dtype != np.uint8:
        raise ValueError(f"expected uint8 pixels, got {pixels.dtype}")
    height, width, _ = pixels.shape
    bpp = 3

    raw = np.ascontiguousarray(pixels).reshape(height, width * bpp)
    stride = width * bpp
    # The encoder restricts itself to NONE/SUB/UP: all three decode with
    # vectorised numpy (SUB is a mod-256 prefix sum), so our own files
    # decode fast; AVERAGE/PAETH remain supported on decode for externally
    # produced PNGs. All three filters are whole-image shifts, so the
    # candidates for every row are computed in one numpy shot instead of a
    # per-row python loop.
    left = np.zeros_like(raw)
    left[:, bpp:] = raw[:, :-bpp]
    prior = np.zeros_like(raw)
    prior[1:] = raw[:-1]
    wide = raw.astype(np.int16)
    candidates = np.stack(
        [raw, (wide - left).astype(np.uint8), (wide - prior).astype(np.uint8)]
    )  # (filter, H, stride) in filter-type order NONE, SUB, UP
    # Minimum sum of absolute differences heuristic (PNG spec §12.8);
    # integer sums are exact, and argmin's first-minimum rule matches the
    # old dict-iteration tie-break (NONE before SUB before UP).
    costs = np.abs(candidates.astype(np.int8).astype(np.int16)).sum(axis=2)
    best = np.argmin(costs, axis=0)
    filtered = np.empty((height, stride + 1), dtype=np.uint8)
    filtered[:, 0] = best
    filtered[:, 1:] = np.take_along_axis(candidates, best[None, :, None], axis=0)[0]

    ihdr = struct.pack(">LLBBBBB", width, height, 8, 2, 0, 0, 0)
    idat = zlib.compress(filtered.tobytes(), compress_level)
    return PNG_SIGNATURE + _chunk(b"IHDR", ihdr) + _chunk(b"IDAT", idat) + _chunk(b"IEND", b"")


def png_dimensions(data: bytes) -> tuple[int, int]:
    """Return (width, height) from the IHDR chunk without a full decode."""
    if not data.startswith(PNG_SIGNATURE):
        raise ValueError("not a PNG file")
    if data[12:16] != b"IHDR":
        raise ValueError("first chunk is not IHDR")
    width, height = struct.unpack(">LL", data[16:24])
    return width, height


def _iter_chunks(data: bytes):
    offset = len(PNG_SIGNATURE)
    while offset + 8 <= len(data):
        (length,) = struct.unpack(">L", data[offset : offset + 4])
        ctype = data[offset + 4 : offset + 8]
        body = data[offset + 8 : offset + 8 + length]
        if len(body) != length:
            raise ValueError("truncated PNG chunk")
        (expected_crc,) = struct.unpack(">L", data[offset + 8 + length : offset + 12 + length])
        if zlib.crc32(ctype + body) & 0xFFFFFFFF != expected_crc:
            raise ValueError(f"CRC mismatch in {ctype!r} chunk")
        yield ctype, body
        offset += 12 + length
        if ctype == b"IEND":
            return


def decode_png(data: bytes) -> np.ndarray:
    """Decode PNG bytes into an (H, W, 3) uint8 array.

    Supports bit depth 8, colour type 2 (truecolour RGB), no interlace —
    exactly what :func:`encode_png` emits.
    """
    if not data.startswith(PNG_SIGNATURE):
        raise ValueError("not a PNG file")
    width = height = None
    idat = bytearray()
    for ctype, body in _iter_chunks(data):
        if ctype == b"IHDR":
            width, height, depth, colour, _comp, _filt, interlace = struct.unpack(">LLBBBBB", body)
            if depth != 8 or colour != 2:
                raise ValueError(f"unsupported PNG format: depth={depth} colour={colour}")
            if interlace:
                raise ValueError("interlaced PNG not supported")
        elif ctype == b"IDAT":
            idat += body
    if width is None or height is None:
        raise ValueError("missing IHDR")

    raw = zlib.decompress(bytes(idat))
    bpp = 3
    stride = width * bpp
    if len(raw) != height * (stride + 1):
        raise ValueError("PNG scanline data has unexpected length")

    out = np.zeros((height, stride), dtype=np.uint8)
    zero_row = np.zeros(stride, dtype=np.uint8)
    for y in range(height):
        start = y * (stride + 1)
        filter_type = raw[start]
        row = np.frombuffer(raw, dtype=np.uint8, count=stride, offset=start + 1).copy()
        prior = out[y - 1] if y else zero_row
        if filter_type == _FILTER_NONE:
            out[y] = row
        elif filter_type == _FILTER_UP:
            out[y] = (row.astype(np.int16) + prior).astype(np.uint8)
        elif filter_type == _FILTER_SUB:
            # recon[x] = row[x] + recon[x - bpp]: a per-channel prefix sum
            # modulo 256, which numpy computes in one shot.
            deltas = row.reshape(-1, bpp).astype(np.uint64)
            out[y] = (np.cumsum(deltas, axis=0) % 256).astype(np.uint8).reshape(stride)
        elif filter_type in (_FILTER_AVERAGE, _FILTER_PAETH):
            # These need the already-reconstructed left neighbour: go per-pixel
            # group but vectorise across the 3 channels.
            recon = out[y]
            for x in range(0, stride, bpp):
                left = recon[x - bpp : x] if x else zero_row[:bpp]
                up = prior[x : x + bpp]
                if filter_type == _FILTER_AVERAGE:
                    predictor = ((left.astype(np.int16) + up.astype(np.int16)) // 2).astype(np.uint8)
                else:
                    up_left = prior[x - bpp : x] if x else zero_row[:bpp]
                    predictor = _paeth(left, up, up_left)
                recon[x : x + bpp] = (row[x : x + bpp].astype(np.int16) + predictor).astype(np.uint8)
        else:
            raise ValueError(f"unknown PNG filter type {filter_type}")
    return out.reshape(height, width, bpp)
