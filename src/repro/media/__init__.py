"""Media containers and size models.

* :mod:`repro.media.png` — a real PNG encoder/decoder (RGB8, zlib, all five
  scanline filters on decode, heuristic filter selection on encode). The
  simulated diffusion models emit genuine PNG bytes through this codec.
* :mod:`repro.media.jpeg_model` — a calibrated size model for the JPEG
  files the paper's pages would have served (Table 2 uses 8 kB / 32 kB /
  128 kB for 256²/512²/1024² images).
* :mod:`repro.media.video` — streaming bitrate ladders for the §3.2
  video-negotiation experiment.
"""

from repro.media.png import encode_png, decode_png, png_dimensions
from repro.media.jpeg_model import jpeg_size, JPEG_BYTES_PER_PIXEL
from repro.media.video import VideoLadder, VideoVariant, STANDARD_LADDER

__all__ = [
    "encode_png",
    "decode_png",
    "png_dimensions",
    "jpeg_size",
    "JPEG_BYTES_PER_PIXEL",
    "VideoLadder",
    "VideoVariant",
    "STANDARD_LADDER",
]
