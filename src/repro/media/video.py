"""Video streaming bitrate models for the §3.2 experiment.

HLS/MPEG-DASH serve a ladder of (resolution, frame-rate, bitrate) variants.
In SWW the client advertises frame-rate boosting and resolution upscaling
via the GEN_ABILITY value, letting the server ship a lower rung and have
the client reconstruct the higher one. The paper's anchor numbers: moving
from 60 fps to 30 fps halves the data; moving from 4K to HD saves 2.3×
(7 GB/hour → 3 GB/hour, the Netflix figures it cites).
"""

from __future__ import annotations

from dataclasses import dataclass

GB = 10**9


@dataclass(frozen=True)
class VideoVariant:
    """One rung of a streaming ladder."""

    name: str
    width: int
    height: int
    fps: int
    gb_per_hour: float

    @property
    def bytes_per_hour(self) -> int:
        return int(self.gb_per_hour * GB)

    @property
    def bits_per_second(self) -> float:
        return self.bytes_per_hour * 8 / 3600

    def at_fps(self, fps: int) -> "VideoVariant":
        """Derive a variant at a different frame rate.

        Data volume scales linearly with frame rate at constant per-frame
        quality (the paper: "moving from 60fps to 30fps will half the
        data").
        """
        if fps <= 0:
            raise ValueError("fps must be positive")
        scale = fps / self.fps
        return VideoVariant(
            name=f"{self.name}@{fps}fps",
            width=self.width,
            height=self.height,
            fps=fps,
            gb_per_hour=self.gb_per_hour * scale,
        )


#: Netflix-style ladder. 4K at 7 GB/h and HD at 3 GB/h are the paper's
#: cited anchors (ratio 2.33×); the other rungs follow typical practice.
STANDARD_LADDER: tuple[VideoVariant, ...] = (
    VideoVariant("4K", 3840, 2160, 60, 7.0),
    VideoVariant("FHD", 1920, 1080, 60, 3.0),
    VideoVariant("HD", 1280, 720, 30, 1.0),
    VideoVariant("SD", 854, 480, 30, 0.7),
)


class VideoLadder:
    """A set of variants plus SWW-aware selection logic."""

    def __init__(self, variants: tuple[VideoVariant, ...] = STANDARD_LADDER) -> None:
        if not variants:
            raise ValueError("ladder needs at least one variant")
        self.variants = tuple(sorted(variants, key=lambda v: -v.gb_per_hour))

    @property
    def top(self) -> VideoVariant:
        return self.variants[0]

    def find(self, name: str) -> VideoVariant:
        for variant in self.variants:
            if variant.name == name:
                return variant
        raise KeyError(f"no variant named {name!r}")

    def serve_plan(
        self,
        target: VideoVariant,
        client_framerate_boost: bool = False,
        client_resolution_upscale: bool = False,
    ) -> tuple[VideoVariant, float]:
        """Pick what the server should actually send for a desired ``target``.

        Returns ``(sent_variant, data_savings_factor)``. A frame-rate-capable
        client receives half the frames; a resolution-capable client receives
        the next rung down and upscales. Savings compose.
        """
        sent = target
        if client_framerate_boost and target.fps >= 60:
            sent = sent.at_fps(target.fps // 2)
        if client_resolution_upscale:
            lower = [v for v in self.variants if v.gb_per_hour < target.gb_per_hour]
            if lower:
                rung = lower[0]
                sent = VideoVariant(
                    name=f"{rung.name}->({target.name})",
                    width=rung.width,
                    height=rung.height,
                    fps=sent.fps,
                    gb_per_hour=rung.gb_per_hour * (sent.fps / rung.fps),
                )
        savings = target.gb_per_hour / sent.gb_per_hour if sent.gb_per_hour else float("inf")
        return sent, savings
