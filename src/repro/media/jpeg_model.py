"""Size model for the JPEG media the original web pages would serve.

The paper's Table 2 uses representative sizes for "typical" web JPEGs:
8,192 B at 256×256, 32,768 B at 512×512 and 131,072 B at 1024×1024 — i.e.
exactly 1 bit per pixel, a common operating point for web-quality JPEG.
The model keeps that anchor and lets quality scale it, so experiments can
sweep the media-size axis.
"""

from __future__ import annotations

#: Bytes per pixel at the paper's reference quality (1 bit/pixel).
JPEG_BYTES_PER_PIXEL = 0.125

#: Fixed container overhead (headers, quantisation/huffman tables) in bytes.
JPEG_CONTAINER_OVERHEAD = 0

#: Typical quality→bits-per-pixel multipliers relative to the reference.
QUALITY_MULTIPLIERS = {
    "thumbnail": 0.5,
    "web": 1.0,  # paper's operating point
    "high": 2.0,
    "archival": 4.0,
}


def jpeg_size(width: int, height: int, quality: str = "web") -> int:
    """Return the modelled JPEG file size in bytes.

    >>> jpeg_size(256, 256)
    8192
    >>> jpeg_size(1024, 1024)
    131072
    """
    if width <= 0 or height <= 0:
        raise ValueError(f"invalid dimensions {width}x{height}")
    try:
        multiplier = QUALITY_MULTIPLIERS[quality]
    except KeyError:
        raise ValueError(f"unknown quality {quality!r}; choose from {sorted(QUALITY_MULTIPLIERS)}") from None
    return int(width * height * JPEG_BYTES_PER_PIXEL * multiplier) + JPEG_CONTAINER_OVERHEAD


def text_block_size(words: int, bytes_per_word: float = 5.0) -> int:
    """Size of a plain-text block (Table 2 uses 250 words → 1,250 B)."""
    if words < 0:
        raise ValueError("word count cannot be negative")
    return int(words * bytes_per_word)
