"""Multi-site synthetic web corpus and the §4.2 adoption model.

The paper's adoption story: content-heavy static sites (blogs, company
pages, galleries) convert to SWW — typically when their CMS is upgraded —
while news-like sites keep most content unique, and some sites never
convert at all ("such pages, however, are less likely to be cached or
frequently accessed"). This module builds a corpus of synthetic sites
across those templates and models a staged adoption sweep, so the A6
benchmark can connect per-page compression (§6.2) to web-scale savings
(§7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.rng import DeterministicRNG
from repro.media.jpeg_model import jpeg_size, text_block_size
from repro.metrics.compression import prompt_metadata_size

#: Template mix modelled on the paper's adoption discussion. ``generatable``
#: is the fraction of each site's content bytes eligible for conversion;
#: ``popularity`` weights how much traffic the template class attracts.
TEMPLATE_PROFILES: dict[str, dict] = {
    "blog": {"generatable": 0.85, "popularity": 0.25, "pages": (8, 30)},
    "company": {"generatable": 0.90, "popularity": 0.15, "pages": (5, 15)},
    "gallery": {"generatable": 0.95, "popularity": 0.20, "pages": (10, 40)},
    "news": {"generatable": 0.25, "popularity": 0.40, "pages": (30, 80)},
}


@dataclass
class SyntheticPage:
    """Byte-level model of one page: media/text items with conversion tags."""

    path: str
    media_items: list[tuple[int, bool]] = field(default_factory=list)  # (bytes, generatable)
    text_items: list[tuple[int, bool]] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(b for b, _g in self.media_items) + sum(b for b, _g in self.text_items)

    @property
    def generatable_bytes(self) -> int:
        return sum(b for b, g in self.media_items if g) + sum(b for b, g in self.text_items if g)

    def converted_bytes(self, image_metadata: int = 300, text_ratio: float = 3.0) -> int:
        """Page size after SWW conversion of its generatable items."""
        total = 0
        for size, generatable in self.media_items:
            total += image_metadata if generatable else size
        for size, generatable in self.text_items:
            total += int(size / text_ratio) if generatable else size
        return total


@dataclass
class SyntheticSite:
    """One site: a template, pages and a popularity weight."""

    name: str
    template: str
    popularity: float
    pages: list[SyntheticPage] = field(default_factory=list)
    converted: bool = False

    @property
    def total_bytes(self) -> int:
        return sum(page.total_bytes for page in self.pages)

    def stored_bytes(self) -> int:
        if not self.converted:
            return self.total_bytes
        return sum(page.converted_bytes() for page in self.pages)

    def traffic_bytes_per_view(self) -> float:
        """Mean page weight served to a (capable) visitor."""
        if not self.pages:
            return 0.0
        per_page = [page.converted_bytes() if self.converted else page.total_bytes for page in self.pages]
        return sum(per_page) / len(per_page)


def _build_page(rng: DeterministicRNG, site_name: str, index: int, generatable_fraction: float) -> SyntheticPage:
    page = SyntheticPage(path=f"/{site_name}/page-{index:03d}")
    for _ in range(rng.randint(2, 10)):
        side = rng.choice((256, 256, 512, 512, 1024))
        page.media_items.append((jpeg_size(side, side), rng.random() < generatable_fraction))
    for _ in range(rng.randint(1, 6)):
        words = rng.randint(80, 600)
        page.text_items.append((text_block_size(words), rng.random() < generatable_fraction))
    return page


def build_web_corpus(sites: int = 40, seed: str = "web") -> list[SyntheticSite]:
    """Build a mixed corpus across the four template classes."""
    if sites <= 0:
        raise ValueError("need at least one site")
    rng = DeterministicRNG("web-corpus", seed, sites)
    templates = list(TEMPLATE_PROFILES)
    weights = [TEMPLATE_PROFILES[t]["popularity"] for t in templates]
    corpus: list[SyntheticSite] = []
    for index in range(sites):
        # Weighted template pick.
        roll = rng.random() * sum(weights)
        cumulative = 0.0
        template = templates[-1]
        for name, weight in zip(templates, weights):
            cumulative += weight
            if roll < cumulative:
                template = name
                break
        profile = TEMPLATE_PROFILES[template]
        site = SyntheticSite(
            name=f"{template}-{index:03d}",
            template=template,
            popularity=rng.uniform(0.5, 1.5) * profile["popularity"],
        )
        low, high = profile["pages"]
        for page_index in range(rng.randint(low, high)):
            site.pages.append(_build_page(rng, site.name, page_index, profile["generatable"]))
        corpus.append(site)
    return corpus


@dataclass
class AdoptionSnapshot:
    """Corpus-level metrics at one adoption stage."""

    converted_sites: int
    total_sites: int
    storage_bytes: int
    baseline_storage_bytes: int
    traffic_per_view: float
    baseline_traffic_per_view: float

    @property
    def adoption_rate(self) -> float:
        return self.converted_sites / self.total_sites if self.total_sites else 0.0

    @property
    def storage_saving(self) -> float:
        return self.baseline_storage_bytes / self.storage_bytes if self.storage_bytes else float("inf")

    @property
    def traffic_saving(self) -> float:
        return self.baseline_traffic_per_view / self.traffic_per_view if self.traffic_per_view else float("inf")


def conversion_order(corpus: list[SyntheticSite]) -> list[SyntheticSite]:
    """The §4.2 adoption order: static/high-generatable templates first
    (gallery → company → blog), news last; within a class, smaller sites
    first (CMS upgrades are cheaper)."""
    return sorted(
        corpus,
        key=lambda site: (
            -TEMPLATE_PROFILES[site.template]["generatable"],
            site.total_bytes,
        ),
    )


def adoption_sweep(corpus: list[SyntheticSite], stages: list[float]) -> list[AdoptionSnapshot]:
    """Convert sites in :func:`conversion_order` and snapshot each stage.

    ``stages`` are target adoption fractions in [0, 1].
    """
    order = conversion_order(corpus)
    baseline_storage = sum(site.total_bytes for site in corpus)
    total_popularity = sum(site.popularity for site in corpus)
    baseline_traffic = (
        sum(site.traffic_bytes_per_view() * site.popularity for site in corpus) / total_popularity
    )

    snapshots: list[AdoptionSnapshot] = []
    for site in corpus:
        site.converted = False
    for stage in stages:
        if not 0.0 <= stage <= 1.0:
            raise ValueError(f"adoption stage {stage} outside [0, 1]")
        convert_count = round(stage * len(order))
        for index, site in enumerate(order):
            site.converted = index < convert_count
        storage = sum(site.stored_bytes() for site in corpus)
        traffic = (
            sum(site.traffic_bytes_per_view() * site.popularity for site in corpus)
            / total_popularity
        )
        snapshots.append(
            AdoptionSnapshot(
                converted_sites=convert_count,
                total_sites=len(corpus),
                storage_bytes=storage,
                baseline_storage_bytes=baseline_storage,
                traffic_per_view=traffic,
                baseline_traffic_per_view=baseline_traffic,
            )
        )
    return snapshots


def typical_image_metadata_bytes(seed: str = "meta") -> int:
    """A representative image-metadata size from the shared prompt bank."""
    from repro.workloads.corpus import landscape_prompts

    prompt = landscape_prompts(1, seed)[0]
    return prompt_metadata_size({"prompt": prompt, "name": "image", "width": 512, "height": 512})
