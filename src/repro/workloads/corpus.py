"""Deterministic page builders matching the paper's test content.

Each builder returns a :class:`CorpusPage` carrying both delivery forms of
the same page — the SWW form (prompt-carrying ``generated-content`` divs)
and the traditional form (``<img>`` tags / full text) — plus the byte
accounting, so experiments can compare the two ends of the wire without
re-deriving sizes.

Size calibration:

* Wikimedia thumbnails: the paper's page moved 1.4 MB in 49 images
  (≈28.6 kB each). Commons search thumbnails are small but high-quality
  JPEGs (≈0.5 B/pixel); at ≈240×240 that is ≈28.8 kB, which also matches
  the measured 6.32 s/image laptop generation time (SD 3 Medium, 15
  steps). Prompts are 120-262 characters (§6.2), totalling ≈8.9 kB of
  metadata.
* News article: 2,400 B of text (≈480 words) summarised to bullet-point
  metadata of ≈778 B — the paper's 3.1× text compression.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.rng import DeterministicRNG
from repro.genai import vocab
from repro.media.jpeg_model import jpeg_size
from repro.metrics.compression import SizeAccount
from repro.sww.content import GeneratedContent

#: Commons-style search thumbnails: high-quality small JPEG, ≈0.5 B/pixel.
THUMBNAIL_QUALITY = "archival"  # 4× the 0.125 B/px web reference = 0.5 B/px

WIKIMEDIA_IMAGE_COUNT = 49
NEWS_ARTICLE_BYTES = 2400


@dataclass
class CorpusPage:
    """One synthetic page in both delivery forms."""

    path: str
    title: str
    sww_html: str
    traditional_html: str
    account: SizeAccount = field(default_factory=SizeAccount)
    #: Per-image generation prompts (for quality measurements).
    prompts: list[str] = field(default_factory=list)
    #: (width, height) per image.
    image_sizes: list[tuple[int, int]] = field(default_factory=list)
    #: Text items: (bullet prompt, target words).
    text_items: list[tuple[str, int]] = field(default_factory=list)


_SCENES = (
    "snowcapped range above an alpine lake",
    "green pasture with wildflowers at dawn",
    "volcanic ridge under storm clouds",
    "quiet fjord with still water and mist",
    "golden prairie under a wide horizon",
    "rocky coastline with breaking waves",
    "forest canopy cut by a winding river",
    "glacier tongue above a gravel valley",
    "terraced hillside in afternoon light",
    "wind sculpted dunes under a blue sky",
    "waterfall in a mossy basalt gorge",
    "rainbow over a stone bridge and river",
)

_DETAILS = (
    "in soft morning light with long shadows",
    "under a vivid orange and violet sunset",
    "with crisp foreground and hazy depth",
    "framed by dark evergreens on both sides",
    "reflected in calm shallow water",
    "with a lone trail in the middle distance",
    "seen from a high vantage down the valley",
    "beneath towering cumulus drifting east",
    "dusted with fresh snow on upper slopes",
    "ringed by autumn foliage in deep reds",
)


def landscape_prompts(count: int = WIKIMEDIA_IMAGE_COUNT, seed: str = "wikimedia") -> list[str]:
    """Generate ``count`` landscape prompts of 120-262 characters (§6.2)."""
    rng = DeterministicRNG("landscape-prompts", seed, count)
    prompts: list[str] = []
    for index in range(count):
        scene = rng.choice(_SCENES)
        detail = rng.choice(_DETAILS)
        prompt = f"a landscape photograph of a {scene}, {detail}"
        # A small minority of prompts get a second clause, pushing toward
        # the paper's 262-character upper end (most sit near the 120 floor).
        if rng.random() < 0.08:
            extra = rng.choice(_DETAILS)
            bank = vocab.topic_words("landscape")
            prompt += f", {extra}, with a distant {rng.choice(bank)} and a {rng.choice(bank)} visible near the {rng.choice(bank)}"
        while len(prompt) < 120:
            prompt += ", fine detail"
        prompts.append(prompt[:262])
    return prompts


def _thumbnail_size(rng: DeterministicRNG) -> tuple[int, int]:
    """Commons-style thumbnail dimensions, averaging ≈240×240."""
    shapes = ((256, 224), (240, 240), (224, 256), (256, 240), (240, 224), (224, 224), (256, 256))
    return rng.choice(shapes)


def build_wikimedia_landscape_page(
    count: int = WIKIMEDIA_IMAGE_COUNT, seed: str = "wikimedia"
) -> CorpusPage:
    """The Fig. 2 workload: a Commons search-results page for "Landscape"."""
    rng = DeterministicRNG("wikimedia-page", seed, count)
    prompts = landscape_prompts(count, seed)
    page = CorpusPage(
        path="/wiki/search/landscape",
        title="Wikimedia search results: Landscape",
        sww_html="",
        traditional_html="",
        prompts=prompts,
    )
    sww_items: list[str] = []
    trad_items: list[str] = []
    for index, prompt in enumerate(prompts):
        width, height = _thumbnail_size(rng)
        page.image_sizes.append((width, height))
        name = f"landscape-{index:02d}"
        item = GeneratedContent.image(prompt, name=name, width=width, height=height)
        sww_items.append(f'<figure class="result">{_element_html(item)}</figure>')
        trad_items.append(
            f'<figure class="result"><img src="/thumbs/{name}.jpg" alt="{prompt}" '
            f'width="{width}" height="{height}"></figure>'
        )
        original = jpeg_size(width, height, THUMBNAIL_QUALITY)
        page.account.add_item(name, original, item.wire_size_bytes(), kind="media")

    header = (
        "<!DOCTYPE html><html><head><title>Search results for "
        '"Landscape" - Wikimedia Commons</title></head><body>'
        "<h1>Search results</h1><div class=\"search-results\">"
    )
    footer = "</div></body></html>"
    page.sww_html = header + "".join(sww_items) + footer
    page.traditional_html = header + "".join(trad_items) + footer
    return page


def populate_traditional_assets(store, page: CorpusPage) -> int:
    """Install the traditional form's media files into a server store.

    The bytes are synthetic (deterministic noise of the modelled JPEG
    size); what matters to every experiment is their size on the wire.
    Returns the number of assets added.
    """
    from repro.html import parse_html
    from repro.sww.server import AssetResource

    rng = DeterministicRNG("traditional-assets", page.path)
    document = parse_html(page.traditional_html)
    added = 0
    for index, img in enumerate(document.find_by_tag("img")):
        src = img.get("src")
        if not src or src in store.assets:
            continue
        width = int(img.get("width") or 256)
        height = int(img.get("height") or 256)
        quality = THUMBNAIL_QUALITY if src.startswith("/thumbs/") else "web"
        size = jpeg_size(width, height, quality)
        store.add_asset(AssetResource(src, rng.bytes(size), "image/jpeg"))
        added += 1
    return added


def _element_html(item: GeneratedContent) -> str:
    from repro.html.serializer import serialize

    return serialize(item.to_element())


_NEWS_SENTENCES = (
    "Regional officials confirmed on Tuesday that the long delayed transit corridor will enter its final planning phase before the end of the quarter",
    "The announcement follows months of negotiation between the transport ministry and a consortium of municipal governments along the proposed route",
    "Independent analysts estimate the project could reduce commuting times by up to forty minutes for residents of the outer districts",
    "Funding remains the central question, with the finance committee still reviewing a blended proposal of public bonds and private investment",
    "A spokesperson for the ministry said the environmental assessment had cleared its second review without significant objections",
    "Local business groups welcomed the decision, arguing that reliable infrastructure is the single biggest constraint on regional growth",
    "Opposition members cautioned that previous phases of the programme had overrun their budgets by considerable margins",
    "Construction of the first segment is expected to begin next spring, pending a final vote scheduled for late January",
    "The ministry also committed to quarterly public reporting on costs, timelines and contractor performance for the duration of the build",
    "Residents near the planned depot sites will be invited to consultation sessions starting next month, officials said",
)


def build_news_article(seed: str = "news") -> CorpusPage:
    """The §6.2 text experiment: a ≈2,400-byte newspaper article.

    The SWW form carries the article as bullet points (the paper: "turned
    into bullet points that can be used in a prompt to generate the
    relevant text without loss of information"), sized so the metadata is
    ≈778 B — the measured 3.1× text compression.
    """
    body = ". ".join(_NEWS_SENTENCES) + "."
    encoded = body.encode("utf-8")
    if len(encoded) > NEWS_ARTICLE_BYTES:
        body = body[:NEWS_ARTICLE_BYTES].rsplit(" ", 1)[0]
    else:
        filler = " Officials did not offer further comment."
        while len(body.encode("utf-8")) + len(filler) <= NEWS_ARTICLE_BYTES:
            body += filler
    words = len(body.split())

    # Bullet summary: the key content of each sentence.
    bullets = []
    for sentence in _NEWS_SENTENCES:
        content = [w for w in sentence.lower().split() if len(w) > 4][:8]
        bullets.append("- " + " ".join(content))
    bullet_text = "\n".join(bullets)
    item = GeneratedContent.text(bullet_text, words=words, topic="news", model="deepseek-r1-8b")

    page = CorpusPage(
        path="/news/transit-corridor",
        title="Transit corridor enters final planning phase",
        sww_html="",
        traditional_html="",
        text_items=[(bullet_text, words)],
    )
    header = (
        "<!DOCTYPE html><html><head><title>Transit corridor enters final "
        "planning phase</title></head><body><article>"
        "<h1>Transit corridor enters final planning phase</h1>"
    )
    footer = "</article></body></html>"
    page.sww_html = header + _element_html(item) + footer
    page.traditional_html = header + f"<p>{body}</p>" + footer
    page.account.add_item("article", len(body.encode("utf-8")), item.wire_size_bytes(), kind="text")
    return page


def build_travel_blog(seed: str = "travel-blog") -> CorpusPage:
    """The §2.1 motivating example: a travel blog about a hiking route.

    Generic text and stock landscape images become prompts; the unique
    content — the specific route description and the author's own photos —
    is kept as-is and fetched the traditional way.
    """
    rng = DeterministicRNG("travel-blog", seed)
    page = CorpusPage(
        path="/blog/ridgeline-hike",
        title="Walking the Ridgeline: a three day traverse",
        sww_html="",
        traditional_html="",
    )
    sww_parts: list[str] = []
    trad_parts: list[str] = []

    # Generic intro text → bullet prompt (150 words).
    intro = (
        "There is something restorative about a long walk in the mountains. "
        "Good preparation, sturdy boots and a flexible plan turn a demanding "
        "trail into a rewarding journey. This guide covers what to pack, how "
        "to pace the ascent, and where the views repay the effort."
    )
    intro_words = 150
    intro_bullets = "- restorative mountain walking\n- preparation boots flexible plan\n- pacing ascent rewarding views"
    intro_item = GeneratedContent.text(intro_bullets, words=intro_words, topic="travel")
    sww_parts.append(_element_html(intro_item))
    trad_parts.append(f"<p>{intro}</p>")
    page.text_items.append((intro_bullets, intro_words))
    page.account.add_item("intro", intro_words * 5, intro_item.wire_size_bytes(), kind="text")

    # Three stock landscape images → prompts (512×512 hero images).
    stock_prompts = landscape_prompts(3, seed + "-stock")
    for index, prompt in enumerate(stock_prompts):
        name = f"stock-{index}"
        item = GeneratedContent.image(prompt, name=name, width=512, height=512)
        sww_parts.append(_element_html(item))
        trad_parts.append(f'<img src="/stock/{name}.jpg" alt="{prompt}" width="512" height="512">')
        page.prompts.append(prompt)
        page.image_sizes.append((512, 512))
        page.account.add_item(name, jpeg_size(512, 512), item.wire_size_bytes(), kind="media")

    # Unique content: the specific route text and two of the author's own
    # photos (§2.1: fetched "same as today").
    route = (
        "Day one climbs 900 m from the Elmsfjord trailhead to the Kestrel "
        "Saddle bothy; fill water at the second stream crossing, the last "
        "reliable source before the ridge. Day two follows the exposed "
        "ridgeline east for 14 km - do not attempt in high wind."
    )
    sww_parts.append(f'<p data-sww="unique">{route}</p>')
    trad_parts.append(f"<p>{route}</p>")
    page.account.add_unique(len(route.encode("utf-8")))
    for index in range(2):
        tag = f'<img src="/photos/hike-{index}.jpg" alt="photo from the hike" width="512" height="384">'
        sww_parts.append(tag)
        trad_parts.append(tag)
        page.account.add_unique(jpeg_size(512, 384))

    header = (
        "<!DOCTYPE html><html><head><title>Walking the Ridgeline</title></head>"
        "<body><article><h1>Walking the Ridgeline: a three day traverse</h1>"
    )
    footer = "</article></body></html>"
    page.sww_html = header + "".join(sww_parts) + footer
    page.traditional_html = header + "".join(trad_parts) + footer
    return page

def build_harbour_gallery(seed: str = "gallery") -> CorpusPage:
    """A gallery whose divisions repeat prompts (same artwork, several
    placements) — in-page duplication that single-flight generation and
    the gencache coalesce. Shared by the gencache and worker-scaling
    benchmarks so their Zipf replays hit identical content.
    """
    prompts = [
        "a watercolor of a lighthouse on a basalt headland",
        "a watercolor of a lighthouse on a basalt headland",
        "an ink sketch of fishing boats at low tide",
        "an ink sketch of fishing boats at low tide",
        "a watercolor of a lighthouse on a basalt headland",
        "a linocut print of gulls over a breakwater",
    ]
    page = CorpusPage(
        path="/gallery/harbour",
        title="Harbour gallery",
        sww_html="",
        traditional_html="",
        prompts=list(prompts),
    )
    sww_items: list[str] = []
    trad_items: list[str] = []
    for index, prompt in enumerate(prompts):
        name = f"gallery-{index:02d}"
        item = GeneratedContent.image(prompt, name=name, width=256, height=256)
        sww_items.append(_element_html(item))
        trad_items.append(
            f'<img src="/gallery/{name}.jpg" alt="{prompt}" width="256" height="256">'
        )
        page.image_sizes.append((256, 256))
        page.account.add_item(name, jpeg_size(256, 256), item.wire_size_bytes(), kind="media")
    header = (
        "<!DOCTYPE html><html><head><title>Harbour gallery</title></head>"
        "<body><h1>Harbour gallery</h1>"
    )
    footer = "</body></html>"
    page.sww_html = header + "".join(sww_items) + footer
    page.traditional_html = header + "".join(trad_items) + footer
    return page


def build_uniform_pages(count: int, seed: str = "uniform", side: int = 192) -> list[CorpusPage]:
    """``count`` distinct pages of identical generation cost.

    Each page carries exactly one ``side``×``side`` image with a unique
    prompt, so a fleet serving them pays ``count`` equal generation
    bills — the worker-scaling benchmark's unit of parallel work (with
    equal costs, ideal speedup is exactly the worker count).
    """
    prompts = landscape_prompts(count, seed)
    pages: list[CorpusPage] = []
    for index, prompt in enumerate(prompts):
        name = f"uniform-{index:02d}"
        page = CorpusPage(
            path=f"/uniform/{name}",
            title=f"Uniform page {index:02d}",
            sww_html="",
            traditional_html="",
            prompts=[prompt],
            image_sizes=[(side, side)],
        )
        item = GeneratedContent.image(prompt, name=name, width=side, height=side)
        header = (
            f"<!DOCTYPE html><html><head><title>Uniform page {index:02d}"
            "</title></head><body>"
        )
        footer = "</body></html>"
        page.sww_html = header + _element_html(item) + footer
        page.traditional_html = (
            header
            + f'<img src="/uniform/{name}.jpg" alt="{prompt}" width="{side}" height="{side}">'
            + footer
        )
        page.account.add_item(name, jpeg_size(side, side), item.wire_size_bytes(), kind="media")
        pages.append(page)
    return pages
