"""Internet-scale traffic projection (paper §7).

    "Web browsing from mobile devices alone amounts for 2-3
    Exabytes/month. Reducing this number by approximately two orders of
    magnitude, as indicated in §6, will lower this number to tens of
    Petabytes/month."

:class:`TrafficModel` applies a measured page-level compression factor to
an aggregate traffic volume, splitting traffic into a compressible share
(media and generic text) and an incompressible remainder (unique content,
already-compressed streams). :func:`zipf_requests` turns a content
catalog into a concrete request-level stream with the skewed popularity
web traffic actually has, for cache/coalescing experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, TypeVar

from repro._util.rng import DeterministicRNG
from repro.devices.energy import EB, PB, transmission_energy_wh

_T = TypeVar("_T")

#: Telefónica / Tridens figures the paper cites (§7).
MOBILE_WEB_EB_PER_MONTH = (2.0, 3.0)


@dataclass(frozen=True)
class TrafficProjection:
    """Result of applying SWW compression to an aggregate volume."""

    original_bytes: float
    compressed_bytes: float
    compressible_share: float
    compression_factor: float

    @property
    def reduction_factor(self) -> float:
        return self.original_bytes / self.compressed_bytes if self.compressed_bytes else float("inf")

    @property
    def compressed_pb(self) -> float:
        return self.compressed_bytes / PB

    @property
    def original_eb(self) -> float:
        return self.original_bytes / EB

    @property
    def monthly_energy_savings_mwh(self) -> float:
        """Transmission energy avoided per month at the 38 MWh/PB rate."""
        return transmission_energy_wh(self.original_bytes - self.compressed_bytes) / 1e6


class TrafficModel:
    """Aggregate web-traffic model with an SWW what-if operator."""

    def __init__(self, monthly_volume_eb: float = 2.5, compressible_share: float = 1.0) -> None:
        if monthly_volume_eb <= 0:
            raise ValueError("traffic volume must be positive")
        if not 0.0 <= compressible_share <= 1.0:
            raise ValueError("compressible share must be in [0, 1]")
        self.monthly_volume_eb = monthly_volume_eb
        self.compressible_share = compressible_share

    def project(self, compression_factor: float) -> TrafficProjection:
        """Apply a measured page compression factor to the monthly volume.

        The incompressible share (1 - compressible_share) travels
        unchanged; the rest shrinks by ``compression_factor``.
        """
        if compression_factor < 1.0:
            raise ValueError("compression factor below 1 would inflate traffic")
        original = self.monthly_volume_eb * EB
        compressible = original * self.compressible_share
        compressed = compressible / compression_factor + (original - compressible)
        return TrafficProjection(
            original_bytes=original,
            compressed_bytes=compressed,
            compressible_share=self.compressible_share,
            compression_factor=compression_factor,
        )


def zipf_requests(
    items: Sequence[_T],
    count: int,
    exponent: float = 1.1,
    seed: object = 0,
) -> list[_T]:
    """Draw a request stream over ``items`` with Zipf-like popularity.

    Item ``i`` (0-based rank) is requested with probability proportional
    to ``1 / (i + 1) ** exponent`` — the classic heavy-tailed popularity
    of web objects, which is what makes shared caches pay off. The
    stream is fully deterministic in ``(items rank order, count,
    exponent, seed)`` via :class:`DeterministicRNG`, so benchmarks replay
    identically across runs.
    """
    if count < 0:
        raise ValueError("request count must be non-negative")
    if not items and count:
        raise ValueError("cannot draw requests from an empty catalog")
    if exponent < 0:
        raise ValueError("Zipf exponent must be non-negative")
    weights = [1.0 / (rank + 1) ** exponent for rank in range(len(items))]
    cumulative: list[float] = []
    total = 0.0
    for w in weights:
        total += w
        cumulative.append(total)
    rng = DeterministicRNG("zipf-requests", seed, len(items), count, exponent)
    requests: list[_T] = []
    for _ in range(count):
        point = rng.random() * total
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] <= point:
                lo = mid + 1
            else:
                hi = mid
        requests.append(items[lo])
    return requests
