"""Internet-scale traffic projection (paper §7).

    "Web browsing from mobile devices alone amounts for 2-3
    Exabytes/month. Reducing this number by approximately two orders of
    magnitude, as indicated in §6, will lower this number to tens of
    Petabytes/month."

:class:`TrafficModel` applies a measured page-level compression factor to
an aggregate traffic volume, splitting traffic into a compressible share
(media and generic text) and an incompressible remainder (unique content,
already-compressed streams). :func:`zipf_requests` turns a content
catalog into a concrete request-level stream with the skewed popularity
web traffic actually has, for cache/coalescing experiments.

For the geo-distributed fleet the closed-loop picture (N clients, each
waiting for its previous response) is wrong at population scale: real
users do not slow down because the edge is saturated — load keeps
arriving and queues grow. :func:`poisson_arrivals` produces a seeded
open-loop arrival process, and :func:`open_loop_requests` merges one
Poisson/Zipf stream per region (each region drawing from its own rotated
popularity ranking over a shared catalog, users sampled from populations
of millions) into a single time-ordered request tape for
:class:`~repro.cdn.fleet.EdgeFleet`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from heapq import merge
from typing import Sequence, TypeVar

from repro._util.hashing import stable_u64
from repro._util.rng import DeterministicRNG
from repro.devices.energy import EB, PB, transmission_energy_wh

_T = TypeVar("_T")

#: Telefónica / Tridens figures the paper cites (§7).
MOBILE_WEB_EB_PER_MONTH = (2.0, 3.0)


@dataclass(frozen=True)
class TrafficProjection:
    """Result of applying SWW compression to an aggregate volume."""

    original_bytes: float
    compressed_bytes: float
    compressible_share: float
    compression_factor: float

    @property
    def reduction_factor(self) -> float:
        return self.original_bytes / self.compressed_bytes if self.compressed_bytes else float("inf")

    @property
    def compressed_pb(self) -> float:
        return self.compressed_bytes / PB

    @property
    def original_eb(self) -> float:
        return self.original_bytes / EB

    @property
    def monthly_energy_savings_mwh(self) -> float:
        """Transmission energy avoided per month at the 38 MWh/PB rate."""
        return transmission_energy_wh(self.original_bytes - self.compressed_bytes) / 1e6


class TrafficModel:
    """Aggregate web-traffic model with an SWW what-if operator."""

    def __init__(self, monthly_volume_eb: float = 2.5, compressible_share: float = 1.0) -> None:
        if monthly_volume_eb <= 0:
            raise ValueError("traffic volume must be positive")
        if not 0.0 <= compressible_share <= 1.0:
            raise ValueError("compressible share must be in [0, 1]")
        self.monthly_volume_eb = monthly_volume_eb
        self.compressible_share = compressible_share

    def project(self, compression_factor: float) -> TrafficProjection:
        """Apply a measured page compression factor to the monthly volume.

        The incompressible share (1 - compressible_share) travels
        unchanged; the rest shrinks by ``compression_factor``.
        """
        if compression_factor < 1.0:
            raise ValueError("compression factor below 1 would inflate traffic")
        original = self.monthly_volume_eb * EB
        compressible = original * self.compressible_share
        compressed = compressible / compression_factor + (original - compressible)
        return TrafficProjection(
            original_bytes=original,
            compressed_bytes=compressed,
            compressible_share=self.compressible_share,
            compression_factor=compression_factor,
        )


def zipf_requests(
    items: Sequence[_T],
    count: int,
    exponent: float = 1.1,
    seed: object = 0,
) -> list[_T]:
    """Draw a request stream over ``items`` with Zipf-like popularity.

    Item ``i`` (0-based rank) is requested with probability proportional
    to ``1 / (i + 1) ** exponent`` — the classic heavy-tailed popularity
    of web objects, which is what makes shared caches pay off. The
    stream is fully deterministic in ``(items rank order, count,
    exponent, seed)`` via :class:`DeterministicRNG`, so benchmarks replay
    identically across runs.
    """
    if count < 0:
        raise ValueError("request count must be non-negative")
    if not items and count:
        raise ValueError("cannot draw requests from an empty catalog")
    if exponent < 0:
        raise ValueError("Zipf exponent must be non-negative")
    weights = [1.0 / (rank + 1) ** exponent for rank in range(len(items))]
    cumulative: list[float] = []
    total = 0.0
    for w in weights:
        total += w
        cumulative.append(total)
    rng = DeterministicRNG("zipf-requests", seed, len(items), count, exponent)
    requests: list[_T] = []
    for _ in range(count):
        point = rng.random() * total
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] <= point:
                lo = mid + 1
            else:
                hi = mid
        requests.append(items[lo])
    return requests


def poisson_arrivals(
    rate_per_s: float,
    duration_s: float,
    seed: object = 0,
    start_s: float = 0.0,
) -> list[float]:
    """Open-loop Poisson arrival times over ``[start_s, start_s + duration_s)``.

    Inter-arrival gaps are i.i.d. exponential with mean ``1/rate_per_s``
    (inverse-CDF over the :class:`DeterministicRNG` stream), so the
    sequence is fully determined by ``(rate, duration, seed, start)`` and
    replays identically across processes — the property the fleet
    benchmark and the pinned-sequence unit test rely on. Unlike a closed
    loop, nothing here waits for service: arrivals keep coming at the
    offered rate no matter how saturated the serving side is, which is
    what makes queueing delay visible at all.
    """
    if rate_per_s <= 0:
        raise ValueError("arrival rate must be positive")
    if duration_s < 0:
        raise ValueError("duration must be non-negative")
    rng = DeterministicRNG("poisson-arrivals", seed, rate_per_s, duration_s)
    arrivals: list[float] = []
    t = start_s
    end = start_s + duration_s
    while True:
        # max() guards log(0); 1-U keeps the draw in (0, 1].
        gap = -math.log(max(1.0 - rng.random(), 1e-300)) / rate_per_s
        t += gap
        if t >= end:
            return arrivals
        arrivals.append(t)


@dataclass(frozen=True)
class RegionSpec:
    """One geographic region's open-loop traffic profile."""

    name: str
    #: Simulated user population (drawn from uniformly per request —
    #: millions of distinct users, not N looping clients).
    users: int = 1_000_000
    #: Aggregate open-loop arrival rate for the region, requests/second.
    rate_per_s: float = 1.0
    #: Zipf popularity exponent for this region's catalog ranking.
    exponent: float = 1.1
    #: One-way user↔edge latency for users homed in this region, seconds.
    user_rtt_s: float = 0.016

    def __post_init__(self) -> None:
        if self.users <= 0:
            raise ValueError("region population must be positive")
        if self.rate_per_s <= 0:
            raise ValueError("region arrival rate must be positive")


@dataclass(frozen=True)
class OpenLoopRequest:
    """One arrival on the fleet's request tape."""

    time_s: float
    region: str
    user_id: int
    key: str


def default_regions(
    count: int,
    rate_per_s: float = 1.0,
    users: int = 1_000_000,
    exponent: float = 1.1,
) -> list[RegionSpec]:
    """``count`` regions with deterministic per-region RTT spread.

    RTTs span 8–40 ms (metro to intercontinental), seeded by region name
    so the set is stable as the fleet grows.
    """
    if count <= 0:
        raise ValueError("need at least one region")
    return [
        RegionSpec(
            name=f"region-{i:02d}",
            users=users,
            rate_per_s=rate_per_s,
            exponent=exponent,
            user_rtt_s=0.008 + 0.032 * (stable_u64("region-rtt", i) % 1000) / 1000.0,
        )
        for i in range(count)
    ]


def region_ranking(catalog: Sequence[str], region: str) -> list[str]:
    """The region's popularity ranking: the catalog rotated by a stable
    per-region offset.

    Every region sees the same global catalog but a different hot head —
    the cross-region diversity that makes one edge's cache a poor proxy
    for the whole planet, and cross-edge peering worth paying for.
    """
    if not catalog:
        return []
    offset = stable_u64("region-ranking", region) % len(catalog)
    return list(catalog[offset:]) + list(catalog[:offset])


def open_loop_requests(
    regions: Sequence[RegionSpec],
    catalog: Sequence[str],
    duration_s: float,
    seed: object = 0,
) -> list[OpenLoopRequest]:
    """The fleet's request tape: per-region Poisson/Zipf streams merged
    into one time-ordered list.

    Each region gets its own :func:`poisson_arrivals` process at its
    offered rate; each arrival draws a key from the region's rotated Zipf
    ranking and a user id uniformly from the region's population. All
    randomness flows through seeded :class:`DeterministicRNG` streams, so
    the tape is a pure function of ``(regions, catalog, duration, seed)``.
    """
    if not regions:
        raise ValueError("need at least one region")
    if not catalog:
        raise ValueError("cannot draw requests from an empty catalog")
    streams: list[list[OpenLoopRequest]] = []
    for spec in regions:
        arrivals = poisson_arrivals(spec.rate_per_s, duration_s, seed=(seed, spec.name))
        ranked = region_ranking(catalog, spec.name)
        keys = zipf_requests(
            ranked, len(arrivals), exponent=spec.exponent, seed=(seed, spec.name, "keys")
        )
        users = DeterministicRNG("open-loop-users", seed, spec.name, spec.users)
        streams.append(
            [
                OpenLoopRequest(
                    time_s=t,
                    region=spec.name,
                    user_id=users.randint(0, spec.users - 1),
                    key=key,
                )
                for t, key in zip(arrivals, keys)
            ]
        )
    return list(merge(*streams, key=lambda r: (r.time_s, r.region)))
