"""Synthetic workloads standing in for the paper's test content.

* :mod:`repro.workloads.corpus` — page builders: the Wikimedia-Commons
  "Landscape" search-results page (49 images, ≈1.4 MB of JPEG), the §2.1
  travel blog (generic text + stock images + unique hike content), and
  the §6.2 newspaper article (≈2,400 B of text).
* :mod:`repro.workloads.traffic` — Internet-scale traffic projection for
  the §7 "2-3 EB/month → tens of PB/month" argument, plus the open-loop
  per-region Poisson/Zipf request tape that drives the edge fleet.
* :mod:`repro.workloads.session` — browsing-session economics over one
  connection, and the open-loop fleet replay driver.
"""

from repro.workloads.corpus import (
    CorpusPage,
    build_wikimedia_landscape_page,
    build_travel_blog,
    build_news_article,
    build_harbour_gallery,
    build_uniform_pages,
    landscape_prompts,
)
from repro.workloads.traffic import (
    MOBILE_WEB_EB_PER_MONTH,
    OpenLoopRequest,
    RegionSpec,
    TrafficModel,
    default_regions,
    open_loop_requests,
    poisson_arrivals,
    region_ranking,
)

__all__ = [
    "CorpusPage",
    "build_wikimedia_landscape_page",
    "build_travel_blog",
    "build_news_article",
    "build_harbour_gallery",
    "build_uniform_pages",
    "landscape_prompts",
    "TrafficModel",
    "MOBILE_WEB_EB_PER_MONTH",
    "OpenLoopRequest",
    "RegionSpec",
    "default_regions",
    "open_loop_requests",
    "poisson_arrivals",
    "region_ranking",
]
