"""Browsing-session simulation: SWW economics across a whole visit.

Single-page numbers (Fig. 2, Table 2) understate two session-level
effects the system design cares about:

* the §4.1 preloaded pipeline is paid once per client, then amortised
  over every page of the session;
* the HTTP/2 connection (and its SETTINGS negotiation) is reused, so the
  SWW handshake cost is per-session, not per-page.

:class:`BrowsingSession` drives a generative client through a sequence of
page views over one connection and aggregates wire bytes, generation
time/energy, and the traditional-delivery counterfactual.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.devices.energy import transmission_energy_wh
from repro.devices.profiles import DeviceProfile, LAPTOP
from repro.sww.client import GenerativeClient, connect_in_memory
from repro.sww.server import GenerativeServer, PageResource, SiteStore
from repro.workloads.corpus import (
    CorpusPage,
    build_news_article,
    build_travel_blog,
    build_wikimedia_landscape_page,
    populate_traditional_assets,
)


@dataclass
class PageView:
    """One page view's accounting."""

    path: str
    sww_wire_bytes: int
    traditional_bytes: int
    generation_s: float
    generation_wh: float


@dataclass
class SessionStats:
    """Aggregates for one browsing session."""

    views: list[PageView] = field(default_factory=list)
    pipeline_load_s: float = 0.0
    pipeline_load_wh: float = 0.0

    @property
    def pages(self) -> int:
        return len(self.views)

    @property
    def sww_bytes(self) -> int:
        return sum(v.sww_wire_bytes for v in self.views)

    @property
    def traditional_bytes(self) -> int:
        return sum(v.traditional_bytes for v in self.views)

    @property
    def wire_saving(self) -> float:
        return self.traditional_bytes / self.sww_bytes if self.sww_bytes else float("inf")

    @property
    def generation_s(self) -> float:
        return sum(v.generation_s for v in self.views)

    @property
    def generation_wh(self) -> float:
        return sum(v.generation_wh for v in self.views)

    @property
    def total_time_s(self) -> float:
        """Generation plus the one-time pipeline load."""
        return self.generation_s + self.pipeline_load_s

    def transmission_energy_saved_wh(self) -> float:
        """Network energy avoided by shipping prompts instead of media."""
        return transmission_energy_wh(self.traditional_bytes - self.sww_bytes)

    def net_energy_wh(self) -> float:
        """Client generation energy minus transmission energy avoided.

        Positive = the session cost more energy under SWW (the paper's
        present-day verdict); negative = SWW saved energy overall.
        """
        return (self.generation_wh + self.pipeline_load_wh) - self.transmission_energy_saved_wh()


def default_session_pages() -> list[CorpusPage]:
    """A representative visit: search results → blog post → news article."""
    return [build_wikimedia_landscape_page(), build_travel_blog(), build_news_article()]


class BrowsingSession:
    """Drives one client through a page sequence on a shared connection."""

    def __init__(
        self,
        pages: list[CorpusPage] | None = None,
        device: DeviceProfile = LAPTOP,
        server: GenerativeServer | None = None,
    ) -> None:
        self.pages = pages if pages is not None else default_session_pages()
        if not self.pages:
            raise ValueError("a session needs at least one page")
        if server is None:
            store = SiteStore()
            for page in self.pages:
                store.add_page(PageResource(page.path, page.sww_html, page.traditional_html))
                populate_traditional_assets(store, page)
            server = GenerativeServer(store)
        self.server = server
        self.client = GenerativeClient(device=device)

    def run(self) -> SessionStats:
        """Fetch every page once over a single negotiated connection."""
        stats = SessionStats(
            pipeline_load_s=self.client.pipeline.overhead_time_s,
            pipeline_load_wh=self.client.pipeline.overhead_energy_wh,
        )
        pair = connect_in_memory(self.client, self.server)
        by_path = {page.path: page for page in self.pages}
        for page in self.pages:
            result = self.client.fetch_via_pair(pair, page.path)
            traditional = by_path[page.path].account.original_total + len(
                by_path[page.path].traditional_html.encode("utf-8")
            )
            stats.views.append(
                PageView(
                    path=page.path,
                    sww_wire_bytes=result.wire_bytes,
                    traditional_bytes=traditional,
                    generation_s=result.generation_time_s,
                    generation_wh=result.generation_energy_wh,
                )
            )
        return stats
