"""Browsing-session simulation: SWW economics across a whole visit.

Single-page numbers (Fig. 2, Table 2) understate two session-level
effects the system design cares about:

* the §4.1 preloaded pipeline is paid once per client, then amortised
  over every page of the session;
* the HTTP/2 connection (and its SETTINGS negotiation) is reused, so the
  SWW handshake cost is per-session, not per-page.

:class:`BrowsingSession` drives a generative client through a sequence of
page views over one connection and aggregates wire bytes, generation
time/energy, and the traditional-delivery counterfactual.

:class:`OpenLoopSession` is the fleet-scale counterpart: it replays the
open-loop per-region tape from
:func:`~repro.workloads.traffic.open_loop_requests` against an
:class:`~repro.cdn.fleet.EdgeFleet` (optionally for several passes, so
warm-cache behaviour can be measured the way the gencache benchmark
does) and aggregates per-tier latency percentiles, queueing delay, and
byte flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.devices.energy import transmission_energy_wh
from repro.devices.profiles import DeviceProfile, LAPTOP
from repro.sww.client import GenerativeClient, connect_in_memory
from repro.sww.server import GenerativeServer, PageResource, SiteStore
from repro.workloads.corpus import (
    CorpusPage,
    build_news_article,
    build_travel_blog,
    build_wikimedia_landscape_page,
    populate_traditional_assets,
)
from repro.workloads.traffic import OpenLoopRequest, RegionSpec, open_loop_requests

if TYPE_CHECKING:
    from repro.cdn.fleet import EdgeFleet, FleetServeResult


@dataclass
class PageView:
    """One page view's accounting."""

    path: str
    sww_wire_bytes: int
    traditional_bytes: int
    generation_s: float
    generation_wh: float


@dataclass
class SessionStats:
    """Aggregates for one browsing session."""

    views: list[PageView] = field(default_factory=list)
    pipeline_load_s: float = 0.0
    pipeline_load_wh: float = 0.0

    @property
    def pages(self) -> int:
        return len(self.views)

    @property
    def sww_bytes(self) -> int:
        return sum(v.sww_wire_bytes for v in self.views)

    @property
    def traditional_bytes(self) -> int:
        return sum(v.traditional_bytes for v in self.views)

    @property
    def wire_saving(self) -> float:
        return self.traditional_bytes / self.sww_bytes if self.sww_bytes else float("inf")

    @property
    def generation_s(self) -> float:
        return sum(v.generation_s for v in self.views)

    @property
    def generation_wh(self) -> float:
        return sum(v.generation_wh for v in self.views)

    @property
    def total_time_s(self) -> float:
        """Generation plus the one-time pipeline load."""
        return self.generation_s + self.pipeline_load_s

    def transmission_energy_saved_wh(self) -> float:
        """Network energy avoided by shipping prompts instead of media."""
        return transmission_energy_wh(self.traditional_bytes - self.sww_bytes)

    def net_energy_wh(self) -> float:
        """Client generation energy minus transmission energy avoided.

        Positive = the session cost more energy under SWW (the paper's
        present-day verdict); negative = SWW saved energy overall.
        """
        return (self.generation_wh + self.pipeline_load_wh) - self.transmission_energy_saved_wh()


def default_session_pages() -> list[CorpusPage]:
    """A representative visit: search results → blog post → news article."""
    return [build_wikimedia_landscape_page(), build_travel_blog(), build_news_article()]


class BrowsingSession:
    """Drives one client through a page sequence on a shared connection."""

    def __init__(
        self,
        pages: list[CorpusPage] | None = None,
        device: DeviceProfile = LAPTOP,
        server: GenerativeServer | None = None,
    ) -> None:
        self.pages = pages if pages is not None else default_session_pages()
        if not self.pages:
            raise ValueError("a session needs at least one page")
        if server is None:
            store = SiteStore()
            for page in self.pages:
                store.add_page(PageResource(page.path, page.sww_html, page.traditional_html))
                populate_traditional_assets(store, page)
            server = GenerativeServer(store)
        self.server = server
        self.client = GenerativeClient(device=device)

    def run(self) -> SessionStats:
        """Fetch every page once over a single negotiated connection."""
        stats = SessionStats(
            pipeline_load_s=self.client.pipeline.overhead_time_s,
            pipeline_load_wh=self.client.pipeline.overhead_energy_wh,
        )
        pair = connect_in_memory(self.client, self.server)
        by_path = {page.path: page for page in self.pages}
        for page in self.pages:
            result = self.client.fetch_via_pair(pair, page.path)
            traditional = by_path[page.path].account.original_total + len(
                by_path[page.path].traditional_html.encode("utf-8")
            )
            stats.views.append(
                PageView(
                    path=page.path,
                    sww_wire_bytes=result.wire_bytes,
                    traditional_bytes=traditional,
                    generation_s=result.generation_time_s,
                    generation_wh=result.generation_energy_wh,
                )
            )
        return stats


# --------------------------------------------------------------------- #
# Open-loop fleet replay
# --------------------------------------------------------------------- #


def latency_percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over raw observations (0 when empty).

    Exact over the sample, unlike the bucketed estimate the live
    timeseries plane uses — benchmarks gate on these, so they must not
    depend on histogram bucket boundaries.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
    return ordered[rank]


@dataclass
class TierStats:
    """One serving tier's latency/queue aggregates for a replay pass."""

    count: int = 0
    latencies: list[float] = field(default_factory=list)

    def observe(self, latency_s: float) -> None:
        self.count += 1
        self.latencies.append(latency_s)

    def p50(self) -> float:
        return latency_percentile(self.latencies, 0.50)

    def p99(self) -> float:
        return latency_percentile(self.latencies, 0.99)


@dataclass
class OpenLoopStats:
    """Aggregates for one pass of the open-loop tape over the fleet."""

    requests: int = 0
    tiers: dict[str, TierStats] = field(default_factory=dict)
    latencies: list[float] = field(default_factory=list)
    queue_s: list[float] = field(default_factory=list)
    generation_sim_s: float = 0.0
    generation_energy_wh: float = 0.0
    egress_bytes: int = 0
    peer_bytes: int = 0
    shield_bytes: int = 0
    origin_bytes: int = 0

    def observe(self, result: FleetServeResult) -> None:
        self.requests += 1
        self.tiers.setdefault(result.tier, TierStats()).observe(result.latency_s)
        self.latencies.append(result.latency_s)
        if result.queue_s > 0:
            self.queue_s.append(result.queue_s)
        self.generation_sim_s += result.gen_time_s
        self.generation_energy_wh += result.gen_energy_wh
        self.egress_bytes += result.egress_bytes
        self.peer_bytes += result.peer_bytes
        self.shield_bytes += result.shield_bytes
        self.origin_bytes += result.origin_bytes

    def tier_count(self, tier: str) -> int:
        stats = self.tiers.get(tier)
        return stats.count if stats else 0

    @property
    def fleet_hit_rate(self) -> float:
        """Share served without new origin or generation work (home +
        peer + coalesced), the benchmark's combined hit rate."""
        if not self.requests:
            return 0.0
        served = sum(self.tier_count(t) for t in ("edge", "peer", "coalesced"))
        return served / self.requests

    @property
    def origin_offload(self) -> float:
        """User egress bytes per origin byte — how much delivered traffic
        the fleet absorbs for each byte the origin still has to send."""
        return self.egress_bytes / self.origin_bytes if self.origin_bytes else float("inf")

    def p50(self) -> float:
        return latency_percentile(self.latencies, 0.50)

    def p99(self) -> float:
        return latency_percentile(self.latencies, 0.99)

    def mean_queue_s(self) -> float:
        return sum(self.queue_s) / len(self.queue_s) if self.queue_s else 0.0

    def summary(self) -> dict:
        """JSON-ready flat summary (what the CLI and benchmark print)."""
        offload = self.origin_offload
        return {
            "requests": self.requests,
            "fleet_hit_rate": round(self.fleet_hit_rate, 6),
            "origin_offload": None if offload == float("inf") else round(offload, 3),
            "p50_s": round(self.p50(), 6),
            "p99_s": round(self.p99(), 6),
            "mean_queue_s": round(self.mean_queue_s(), 6),
            "generation_sim_s": round(self.generation_sim_s, 3),
            "generation_energy_wh": round(self.generation_energy_wh, 6),
            "egress_bytes": self.egress_bytes,
            "peer_bytes": self.peer_bytes,
            "shield_bytes": self.shield_bytes,
            "origin_bytes": self.origin_bytes,
            "tiers": {
                tier: {
                    "count": stats.count,
                    "p50_s": round(stats.p50(), 6),
                    "p99_s": round(stats.p99(), 6),
                }
                for tier, stats in sorted(self.tiers.items())
            },
        }


class OpenLoopSession:
    """Replays the per-region open-loop tape against an edge fleet.

    One instance owns the workload definition (regions, catalog keys,
    duration, seed); each :meth:`run` replays the *same* key sequence
    shifted forward in simulated time, so pass 2 measures warm-cache
    behaviour over an identical stream — the replay discipline the
    gencache warm benchmark established.
    """

    def __init__(
        self,
        fleet: EdgeFleet,
        regions: Sequence[RegionSpec],
        duration_s: float,
        seed: object = 0,
    ) -> None:
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        self.fleet = fleet
        self.regions = list(regions)
        self.duration_s = duration_s
        self.seed = seed
        self._catalog_keys = sorted(fleet.catalog.items)
        self._passes = 0

    def tape(self, start_s: float = 0.0) -> list[OpenLoopRequest]:
        requests = open_loop_requests(
            self.regions, self._catalog_keys, self.duration_s, seed=self.seed
        )
        if not start_s:
            return requests
        return [
            OpenLoopRequest(
                time_s=r.time_s + start_s, region=r.region, user_id=r.user_id, key=r.key
            )
            for r in requests
        ]

    def run(self) -> OpenLoopStats:
        """Replay one pass; successive passes continue the fleet's clock."""
        stats = OpenLoopStats()
        for req in self.tape(start_s=self._passes * self.duration_s):
            stats.observe(self.fleet.serve(req.region, req.key, req.time_s))
        self._passes += 1
        return stats
