"""Network transmission and embodied-carbon models (paper §6.4).

Transmission energy uses Telefónica's 2024 figure the paper cites:
38 MWh per petabyte of traffic, i.e. 0.038 Wh/MB. Embodied carbon uses the
6-7 kg CO₂e per terabyte of SSD range from the HotCarbon/SC work the paper
cites; we default to the midpoint.
"""

from __future__ import annotations

MB = 10**6
TB = 10**12
PB = 10**15
EB = 10**18

#: Telefónica 2024: 38 MWh/PB → 0.038 Wh/MB.
TRANSMISSION_WH_PER_MB = 0.038

#: Embodied carbon of SSD storage, kg CO₂e per TB (paper cites 6-7).
SSD_EMBODIED_KG_CO2E_PER_TB = 6.5
SSD_EMBODIED_RANGE = (6.0, 7.0)

#: The paper's reference access link for transfer-time comparisons.
TYPICAL_LINK_BPS = 100e6  # 100 Mbps


def transmission_energy_wh(size_bytes: int | float, wh_per_mb: float = TRANSMISSION_WH_PER_MB) -> float:
    """Network energy to move ``size_bytes`` across the operator network."""
    if size_bytes < 0:
        raise ValueError("negative size")
    return size_bytes / MB * wh_per_mb


def transmission_time_s(size_bytes: int | float, link_bps: float = TYPICAL_LINK_BPS) -> float:
    """Serialization time of ``size_bytes`` on a link of ``link_bps``."""
    if size_bytes < 0:
        raise ValueError("negative size")
    if link_bps <= 0:
        raise ValueError("link rate must be positive")
    return size_bytes * 8 / link_bps


def embodied_carbon_kg(
    stored_bytes: int | float, kg_per_tb: float = SSD_EMBODIED_KG_CO2E_PER_TB
) -> float:
    """Embodied carbon attributable to storing ``stored_bytes`` on SSD."""
    if stored_bytes < 0:
        raise ValueError("negative size")
    return stored_bytes / TB * kg_per_tb


def storage_carbon_savings_kg(
    original_bytes: int | float,
    compressed_bytes: int | float,
    kg_per_tb: float = SSD_EMBODIED_KG_CO2E_PER_TB,
) -> float:
    """Embodied carbon avoided by storing prompts instead of media."""
    if compressed_bytes > original_bytes:
        return 0.0
    return embodied_carbon_kg(original_bytes - compressed_bytes, kg_per_tb)
