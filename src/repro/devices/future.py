"""Forward-looking projections (paper §7, "The Long Road Ahead").

The paper's verdict on today's numbers is "not encouraging: currently,
generating content at the edge takes too long and does not save energy" —
but it argues three trends will flip the sign: faster models
(StreamDiffusion/FLUX-class), inference accelerators in consumer devices,
and on-device NPUs in phones. This module makes those arguments
computable:

* :func:`project_device` — derive a future device profile from a present
  one by scaling speed and efficiency (an accelerator-generation knob).
* :func:`project_model` — derive a faster model profile (a
  model-generation knob, e.g. 10× step-time reduction).
* :func:`generation_vs_transmission` — the §6.4 comparison for any
  (device, model, media size) point.
* :func:`find_crossover` — sweep the speed/efficiency knob until edge
  generation beats transmission energy: "when does SWW become worth it?"
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.devices.energy import transmission_energy_wh, transmission_time_s
from repro.devices.profiles import DeviceProfile, PowerModel
from repro.genai.image import ImageModel
from repro.media.jpeg_model import jpeg_size


def project_device(
    device: DeviceProfile,
    speedup: float = 1.0,
    efficiency_gain: float = 1.0,
    suffix: str = "future",
) -> DeviceProfile:
    """A future revision of ``device``.

    ``speedup`` divides all step times (resolution curve shape is kept —
    architectural memory cliffs don't vanish with clock speed);
    ``efficiency_gain`` divides power draw at iso-work, so energy per
    task falls by ``speedup × efficiency_gain``.
    """
    if speedup <= 0 or efficiency_gain <= 0:
        raise ValueError("speedup and efficiency_gain must be positive")
    scaled_curve = tuple((px, factor / speedup) for px, factor in device.resolution_curve)
    return replace(
        device,
        name=f"{device.name}-{suffix}",
        resolution_curve=scaled_curve,
        image_power=PowerModel(
            device.image_power.power_w / efficiency_gain,
            device.image_power.fixed_wh / efficiency_gain,
        ),
        text_power=PowerModel(
            device.text_power.power_w / efficiency_gain,
            device.text_power.fixed_wh / efficiency_gain,
        ),
        text_speed_factor=device.text_speed_factor / speedup,
    )


def project_model(model: ImageModel, step_speedup: float, suffix: str = "next-gen") -> ImageModel:
    """A future model generation: same quality profile, faster steps.

    The paper: "already some models perform better (CLIP, ELO) and
    generate faster than SD 3.5 Medium" — we keep quality conservative
    (unchanged) and scale only speed.
    """
    if step_speedup <= 0:
        raise ValueError("step_speedup must be positive")
    return replace(
        model,
        name=f"{model.name}-{suffix}",
        step_time_224={device: t / step_speedup for device, t in model.step_time_224.items()},
    )


@dataclass(frozen=True)
class TradeoffPoint:
    """Generation vs transmission at one configuration."""

    device: str
    model: str
    width: int
    height: int
    generation_s: float
    generation_wh: float
    transmission_s: float
    transmission_wh: float

    @property
    def energy_ratio(self) -> float:
        """Generation energy ÷ transmission energy (<1 means SWW wins)."""
        return self.generation_wh / self.transmission_wh

    @property
    def time_ratio(self) -> float:
        return self.generation_s / self.transmission_s

    @property
    def sww_saves_energy(self) -> bool:
        return self.generation_wh < self.transmission_wh


def generation_vs_transmission(
    model: ImageModel,
    device: DeviceProfile,
    width: int = 1024,
    height: int = 1024,
    steps: int = 15,
) -> TradeoffPoint:
    """The §6.4 comparison at an arbitrary configuration."""
    seconds = steps * model.step_time(device, width, height)
    media_bytes = jpeg_size(width, height)
    return TradeoffPoint(
        device=device.name,
        model=model.name,
        width=width,
        height=height,
        generation_s=seconds,
        generation_wh=device.image_energy_wh(seconds),
        transmission_s=transmission_time_s(media_bytes),
        transmission_wh=transmission_energy_wh(media_bytes),
    )


def find_crossover(
    model: ImageModel,
    device: DeviceProfile,
    width: int = 1024,
    height: int = 1024,
    steps: int = 15,
    efficiency_tracks_speed: bool = True,
    max_speedup: float = 16384.0,
) -> float:
    """The combined improvement factor at which SWW starts saving energy.

    Doubles the projection knob until the generation energy at the target
    configuration drops below the transmission energy; then binary-searches
    the boundary. ``efficiency_tracks_speed`` applies the same factor to
    power efficiency (accelerators historically improve perf/W alongside
    perf). Returns the factor, or ``inf`` if ``max_speedup`` isn't enough.
    """
    def energy_ratio(factor: float) -> float:
        future_device = project_device(
            device,
            speedup=factor,
            efficiency_gain=factor if efficiency_tracks_speed else 1.0,
        )
        point = generation_vs_transmission(model, future_device, width, height, steps)
        return point.energy_ratio

    if energy_ratio(1.0) < 1.0:
        return 1.0
    low, high = 1.0, 2.0
    while energy_ratio(high) >= 1.0:
        low, high = high, high * 2
        if high > max_speedup:
            return float("inf")
    for _ in range(40):
        mid = (low + high) / 2
        if energy_ratio(mid) >= 1.0:
            low = mid
        else:
            high = mid
    return high
