"""Simulated evaluation hardware.

The paper measures on two machines: a MacBook Pro (M1 Pro, 16 GB, FP16,
attention splitting, no large text encoder) and a workstation (Threadripper
Pro, 128 GB, 2×NVIDIA RTX 4000 Ada, FP16, large text encoder, no attention
splitting). Neither is available here, so :mod:`repro.devices.profiles`
models them: performance anchors taken from the paper's published numbers
(Tables 1-2, §6.2-6.3 prose) with power-law interpolation between anchors,
and per-task power draw integrated over simulated time for energy.

All timing in the repository is *simulated seconds* metered by
:class:`~repro.devices.clock.SimClock` — wall-clock speed of the host never
affects results, which keeps benchmarks deterministic.
"""

from repro.devices.clock import SimClock, EnergyMeter, TaskRecord
from repro.devices.profiles import (
    DeviceProfile,
    LAPTOP,
    WORKSTATION,
    MOBILE,
    CLOUD,
    DEVICES,
    get_device,
)
from repro.devices.future import (
    project_device,
    project_model,
    generation_vs_transmission,
    find_crossover,
)
from repro.devices.energy import (
    TRANSMISSION_WH_PER_MB,
    transmission_energy_wh,
    transmission_time_s,
    embodied_carbon_kg,
    SSD_EMBODIED_KG_CO2E_PER_TB,
)

__all__ = [
    "SimClock",
    "EnergyMeter",
    "TaskRecord",
    "DeviceProfile",
    "LAPTOP",
    "WORKSTATION",
    "MOBILE",
    "CLOUD",
    "DEVICES",
    "get_device",
    "TRANSMISSION_WH_PER_MB",
    "transmission_energy_wh",
    "transmission_time_s",
    "embodied_carbon_kg",
    "SSD_EMBODIED_KG_CO2E_PER_TB",
    "project_device",
    "project_model",
    "generation_vs_transmission",
    "find_crossover",
]
