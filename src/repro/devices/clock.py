"""Virtual time and energy metering.

Every simulated operation (model inference, network transfer) reports how
long it *would* take on the modelled hardware; the clock accumulates those
durations. Using simulated rather than wall-clock time makes results exact,
deterministic and host-independent, while still letting the benchmark
harness compare "who is slower and by what factor" the way the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TaskRecord:
    """One metered operation."""

    label: str
    seconds: float
    energy_wh: float
    device: str = ""

    @property
    def average_power_w(self) -> float:
        return self.energy_wh * 3600.0 / self.seconds if self.seconds else 0.0


class SimClock:
    """Accumulates simulated seconds across operations."""

    def __init__(self) -> None:
        self._now = 0.0
        self.records: list[TaskRecord] = []

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float, label: str = "", energy_wh: float = 0.0, device: str = "") -> TaskRecord:
        """Account for an operation that takes ``seconds`` of simulated time."""
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        self._now += seconds
        record = TaskRecord(label=label, seconds=seconds, energy_wh=energy_wh, device=device)
        self.records.append(record)
        return record

    def elapsed_for(self, label_prefix: str) -> float:
        """Total simulated seconds of records whose label has the prefix."""
        return sum(r.seconds for r in self.records if r.label.startswith(label_prefix))

    def reset(self) -> None:
        self._now = 0.0
        self.records.clear()


class EnergyMeter:
    """Accumulates energy (Wh) by category, e.g. generation vs transmission."""

    def __init__(self) -> None:
        self.totals_wh: dict[str, float] = {}

    def add(self, category: str, energy_wh: float) -> None:
        if energy_wh < 0:
            raise ValueError("negative energy")
        self.totals_wh[category] = self.totals_wh.get(category, 0.0) + energy_wh

    def total(self, category: str | None = None) -> float:
        if category is None:
            return sum(self.totals_wh.values())
        return self.totals_wh.get(category, 0.0)

    def reset(self) -> None:
        self.totals_wh.clear()
