"""Calibrated device performance models.

Each :class:`DeviceProfile` answers two questions for the generation
simulators:

* how long does one diffusion step take at a given resolution? — a
  reference step time at 224×224 (per model, from Table 1) scaled by the
  device's *resolution curve*: measured slowdown factors anchored on the
  paper's SD 3 Medium data (Table 2), interpolated power-law in pixel
  count between anchors. The laptop's curve blows up super-linearly at
  1024² (16 GB + attention splitting, §6.3.1); the workstation's stays
  near-linear.
* how much energy does a task draw? — a per-task-class power model:
  ``E = P·t + F`` where ``F`` is a fixed spin-up term (noticeable on the
  workstation's short runs).

Calibration sources (all from the paper):

=================  =========================================================
anchor             source
=================  =========================================================
step times @224²   Table 1 (SD 2.1 / SD 3 / SD 3.5 on laptop & workstation)
resolution curve   Table 2 SD 3 Med generation times (7/19/310 s laptop,
                   1.0/1.7/6.2 s workstation at 15 steps)
laptop img power   Table 2 energies: 0.02/0.05/0.90 Wh → ≈10.45 W constant
wk img power       Table 2 energies: fit E = 0.0333·t + 0.0033 → 120 W + 12 J
text power         Table 2 text row: laptop 0.01 Wh/32 s ≈ 1.125 W,
                   workstation 0.51 Wh/13 s ≈ 141 W
=================  =========================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

REFERENCE_PIXELS = 224 * 224  # Table 1's CLIP-score evaluation resolution


@dataclass(frozen=True)
class PowerModel:
    """Energy for a task: ``E [Wh] = power_w * t / 3600 + fixed_wh``."""

    power_w: float
    fixed_wh: float = 0.0

    def energy_wh(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("negative duration")
        return self.power_w * seconds / 3600.0 + (self.fixed_wh if seconds > 0 else 0.0)


@dataclass(frozen=True)
class DeviceProfile:
    """A simulated evaluation machine."""

    name: str
    description: str
    #: (pixel_count, slowdown_factor) anchors, factor 1.0 at REFERENCE_PIXELS.
    resolution_curve: tuple[tuple[int, float], ...]
    image_power: PowerModel
    text_power: PowerModel
    #: Multiplier on text-model base generation time (workstation == 1.0).
    text_speed_factor: float
    #: Large text encoder available (paper's workstation yes, laptop no).
    large_text_encoder: bool
    #: Needs attention splitting (the laptop's 16 GB constraint).
    attention_splitting: bool
    #: Approximate idle/system overhead, used by the CDN edge experiment.
    idle_power_w: float = 0.0

    def resolution_factor(self, pixels: int) -> float:
        """Slowdown relative to 224×224, interpolated between anchors.

        Interpolation is power-law (linear in log-log space), matching how
        inference cost scales; beyond the last anchor the final segment's
        exponent is extrapolated.
        """
        if pixels <= 0:
            raise ValueError("pixel count must be positive")
        curve = self.resolution_curve
        if pixels <= curve[0][0]:
            # Below the smallest anchor, scale ~linearly with pixels.
            return curve[0][1] * pixels / curve[0][0]
        for (x0, y0), (x1, y1) in zip(curve, curve[1:]):
            if pixels <= x1:
                exponent = math.log(y1 / y0) / math.log(x1 / x0)
                return y0 * (pixels / x0) ** exponent
        (x0, y0), (x1, y1) = curve[-2], curve[-1]
        exponent = math.log(y1 / y0) / math.log(x1 / x0)
        return y1 * (pixels / x1) ** exponent

    def image_step_time(self, reference_step_time_s: float, width: int, height: int) -> float:
        """Seconds per diffusion step at the given resolution."""
        return reference_step_time_s * self.resolution_factor(width * height)

    def image_energy_wh(self, seconds: float) -> float:
        return self.image_power.energy_wh(seconds)

    def text_energy_wh(self, seconds: float) -> float:
        return self.text_power.energy_wh(seconds)


def _curve(anchors: dict[int, float]) -> tuple[tuple[int, float], ...]:
    return tuple(sorted(anchors.items()))


#: MacBook Pro M1 Pro, 16 GB — §6.1. Resolution curve from Table 2 SD 3
#: rows: 15 steps × 0.38 s/step = 5.7 s predicted at 224², measured 7 s at
#: 256² (×1.23), 19 s at 512² (×3.33) and 310 s at 1024² (×54.4 — the
#: attention-splitting blow-up).
LAPTOP = DeviceProfile(
    name="laptop",
    description="MacBook Pro, M1 Pro, 16GB LPDDR5, 16-core GPU, FP16, attention splitting",
    resolution_curve=_curve(
        {
            224 * 224: 1.0,
            256 * 256: 7.0 / (15 * 0.38),  # ≈1.228
            512 * 512: 19.0 / (15 * 0.38),  # ≈3.333
            1024 * 1024: 310.0 / (15 * 0.38),  # ≈54.39
        }
    ),
    image_power=PowerModel(power_w=10.45),
    text_power=PowerModel(power_w=1.125),
    text_speed_factor=2.5,  # §6.3.2: workstation is only 2.5× faster
    large_text_encoder=False,
    attention_splitting=True,
    idle_power_w=5.0,
)

#: Threadripper Pro + 2× NVIDIA RTX 4000 Ada — §6.1. Near-linear resolution
#: scaling; fixed ≈12 J spin-up fitted from the Table 2 energy column.
WORKSTATION = DeviceProfile(
    name="workstation",
    description="AMD Threadripper Pro 5, 128GB DDR5, 2x NVIDIA RTX 4000 Ada, FP16",
    resolution_curve=_curve(
        {
            224 * 224: 1.0,
            256 * 256: 1.0 / (15 * 0.05),  # ≈1.333
            512 * 512: 1.7 / (15 * 0.05),  # ≈2.267
            1024 * 1024: 6.2 / (15 * 0.05),  # ≈8.267
        }
    ),
    image_power=PowerModel(power_w=120.0, fixed_wh=0.0033),
    text_power=PowerModel(power_w=141.0),
    text_speed_factor=1.0,
    large_text_encoder=True,
    attention_splitting=False,
    idle_power_w=60.0,
)

#: A projected phone-class device (§7 "Generation on Mobile Devices"):
#: roughly 3× slower than the M1 laptop with a harder memory cliff, at
#: phone power budgets. Used by forward-looking sweeps, not by the paper's
#: published tables.
MOBILE = DeviceProfile(
    name="mobile",
    description="projected smartphone NPU: ~3x laptop step time, 8GB memory ceiling",
    resolution_curve=_curve(
        {
            224 * 224: 1.0,
            256 * 256: 1.30,
            512 * 512: 4.2,
            1024 * 1024: 110.0,
        }
    ),
    image_power=PowerModel(power_w=4.5),
    text_power=PowerModel(power_w=1.0),
    text_speed_factor=6.0,
    large_text_encoder=False,
    attention_splitting=True,
    idle_power_w=0.5,
)

#: The provider-side datacenter device that runs DALL·E-3-class models
#: (Table 1 shows no local times for DALLE 3: it is server-run). Times are
#: modelled as workstation-class; energy at datacenter GPU power.
CLOUD = DeviceProfile(
    name="cloud",
    description="datacenter inference service (server-run models, e.g. DALLE 3)",
    resolution_curve=WORKSTATION.resolution_curve,
    image_power=PowerModel(power_w=350.0, fixed_wh=0.0033),
    text_power=PowerModel(power_w=350.0),
    text_speed_factor=0.8,
    large_text_encoder=True,
    attention_splitting=False,
    idle_power_w=150.0,
)

DEVICES: dict[str, DeviceProfile] = {d.name: d for d in (LAPTOP, WORKSTATION, MOBILE, CLOUD)}


def get_device(name: str) -> DeviceProfile:
    """Look up a device profile by name."""
    try:
        return DEVICES[name]
    except KeyError:
        raise KeyError(f"unknown device {name!r}; available: {sorted(DEVICES)}") from None
