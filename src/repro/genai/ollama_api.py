"""An Ollama-shaped local text-generation API.

The paper's prototype reaches its text-to-text models "by sending requests
to the Ollama API using the requests library" (§4.1). To mirror that access
path without the real daemon, :class:`OllamaEndpoint` exposes the same
request/response shapes (``/api/generate``, ``/api/tags``) as plain-Python
calls, backed by the text simulator. :class:`OllamaClient` is the
requests-style caller the media generator uses, so swapping in a real
Ollama deployment means changing one constructor.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass

from repro.devices.profiles import DeviceProfile, WORKSTATION
from repro.genai.registry import TEXT_MODELS, get_text_model
from repro.genai.text import expand_text
from repro.obs import MetricsRegistry, Tracer, get_registry, get_tracer

_WORDS_RE = re.compile(r"(\d+)\s*words?", re.IGNORECASE)
DEFAULT_TARGET_WORDS = 150


@dataclass
class OllamaResponse:
    """Mirror of Ollama's /api/generate response fields we consume."""

    model: str
    response: str
    done: bool
    total_duration_ns: int
    eval_count: int

    def to_json(self) -> str:
        return json.dumps(
            {
                "model": self.model,
                "response": self.response,
                "done": self.done,
                "total_duration": self.total_duration_ns,
                "eval_count": self.eval_count,
            }
        )


class OllamaEndpoint:
    """The server side: dispatches generate calls to the simulator."""

    def __init__(
        self,
        device: DeviceProfile = WORKSTATION,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.device = device
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.requests_served = 0
        self.last_energy_wh = 0.0

    def tags(self) -> dict:
        """Equivalent of GET /api/tags — the installed model list."""
        return {"models": [{"name": name, "model": name} for name in sorted(TEXT_MODELS)]}

    def generate(self, payload: dict) -> OllamaResponse:
        """Equivalent of POST /api/generate.

        The prompt is expected to contain bullet points and optionally a
        "... N words" instruction, the shape the SWW metadata produces.
        """
        model_name = payload.get("model", "")
        prompt = payload.get("prompt", "")
        if not prompt:
            raise ValueError("empty prompt")
        model = get_text_model(model_name)
        match = _WORDS_RE.search(prompt)
        target = int(match.group(1)) if match else DEFAULT_TARGET_WORDS
        topic = payload.get("options", {}).get("topic", "technology")
        result = expand_text(
            model, self.device, prompt, target, topic, registry=self.registry, tracer=self.tracer
        )
        self.requests_served += 1
        self.last_energy_wh = result.energy_wh
        return OllamaResponse(
            model=model_name,
            response=result.text,
            done=True,
            total_duration_ns=int(result.sim_time_s * 1e9),
            eval_count=result.actual_words,
        )


class OllamaClient:
    """The client side, mirroring ``requests.post(url, json=...)`` usage."""

    def __init__(self, endpoint: OllamaEndpoint) -> None:
        self.endpoint = endpoint

    def post_generate(self, model: str, prompt: str, options: dict | None = None) -> dict:
        """Send a generate request; returns the decoded JSON response."""
        payload = {"model": model, "prompt": prompt, "stream": False}
        if options:
            payload["options"] = options
        response = self.endpoint.generate(payload)
        return json.loads(response.to_json())

    def list_models(self) -> list[str]:
        return [entry["name"] for entry in self.endpoint.tags()["models"]]
