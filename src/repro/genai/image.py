"""The latent-diffusion simulator.

What the real pipeline does: encode the prompt, run N denoising steps in a
latent space, decode to pixels. What this simulator preserves:

* **prompt → content**: the prompt's embedding, perturbed by
  model-dependent noise, becomes the image's *content vector*, rendered
  into the pixels so that a CLIP-style metric can recover it
  (:mod:`repro.genai.embeddings`). Higher-fidelity models add less noise,
  which is what separates SD 2.1 from SD 3/3.5 from DALL·E 3 in Table 1.
* **steps → time and quality**: generation time is
  ``steps × step_time(model, device, resolution)``; more steps slightly
  reduce residual noise (the paper: "only minor changes to CLIP score" as
  steps scale from 10 to 60).
* **resolution → time**: per-device resolution curves from
  :mod:`repro.devices.profiles`, including the laptop's 1024² blow-up.
* **device → energy**: power draw integrated over simulated time.

Every output is a real image: an (H, W, 3) uint8 array encodable to PNG.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util.hashing import stable_u64
from repro.devices.profiles import DeviceProfile
from repro.genai.embeddings import (
    EMBED_DIM,
    GRID,
    embed_vector_to_blocks,
    text_embedding,
)
from repro.media.png import encode_png
from repro.obs import MetricsRegistry, Tracer, get_registry, get_tracer

DEFAULT_STEPS = 15  # Table 1 evaluates at 15 inference steps


@dataclass(frozen=True)
class ImageModel:
    """A text-to-image model profile.

    ``fidelity`` is the target cosine alignment between the prompt
    embedding and the generated content vector at the reference step count;
    it is calibrated so the CLIP-sim scores land on Table 1 (DESIGN.md §5).
    ``arena_quality`` is the latent strength used by the simulated
    preference arena that produces ELO ratings.
    """

    name: str
    fidelity: float
    arena_quality: float
    #: Seconds per denoising step at 224×224, keyed by device name (Table 1).
    step_time_224: dict[str, float] = field(default_factory=dict)
    #: Models run provider-side (DALL·E 3) have no on-device step times.
    server_only: bool = False
    default_steps: int = DEFAULT_STEPS

    def step_time(self, device: DeviceProfile, width: int, height: int) -> float:
        """Seconds per step on ``device`` at the given resolution."""
        reference = self.step_time_224.get(device.name)
        if reference is None and "-" in device.name:
            # Projected future devices (repro.devices.future) keep their
            # base device's timing profile key: "laptop-future" → "laptop".
            reference = self.step_time_224.get(device.name.split("-")[0])
        if reference is None:
            raise ValueError(
                f"model {self.name!r} has no timing profile for device {device.name!r}"
                + (" (server-only model)" if self.server_only else "")
            )
        return device.image_step_time(reference, width, height)

    def effective_fidelity(self, steps: int) -> float:
        """Fidelity after ``steps`` denoising steps.

        Converges quickly: below ~8 steps quality degrades noticeably, and
        past the reference count the gain is marginal (the paper's §6.3.1
        observation).
        """
        if steps <= 0:
            raise ValueError("steps must be positive")
        ramp = 1.0 - 0.5 * np.exp(-steps / 5.0)
        return float(np.clip(self.fidelity * ramp / (1.0 - 0.5 * np.exp(-DEFAULT_STEPS / 5.0)), 0.0, 0.99))


@dataclass
class ImageResult:
    """Output of a simulated generation."""

    pixels: np.ndarray
    prompt: str
    model: str
    device: str
    steps: int
    width: int
    height: int
    sim_time_s: float
    energy_wh: float

    _png_cache: bytes | None = None

    def png_bytes(self) -> bytes:
        """Encode (and cache) the pixels as real PNG bytes."""
        if self._png_cache is None:
            self._png_cache = encode_png(self.pixels)
        return self._png_cache


def _content_vector(prompt: str, fidelity: float, seed: int) -> np.ndarray:
    """Mix the prompt embedding with model noise at the target cosine.

    For unit vectors e (prompt) and n (orthogonalised noise), the mixture
    ``f·e + sqrt(1-f²)·n`` has cosine exactly ``f`` with ``e``.
    """
    prompt_vec = text_embedding(prompt)
    rng = np.random.default_rng(seed)
    noise = rng.standard_normal(EMBED_DIM)
    if np.linalg.norm(prompt_vec) == 0:
        out = noise
    else:
        noise -= np.dot(noise, prompt_vec) * prompt_vec  # orthogonalise
        noise /= np.linalg.norm(noise)
        out = fidelity * prompt_vec + np.sqrt(max(0.0, 1.0 - fidelity**2)) * noise
    norm = np.linalg.norm(out)
    return out / norm if norm else out


def render_content(vector: np.ndarray, width: int, height: int, seed: int) -> np.ndarray:
    """Render a content vector into an (H, W, 3) image.

    The red channel carries the vector as per-block means (recoverable by
    :func:`repro.genai.embeddings.image_embedding`); green and blue carry
    decorative gradients and mean-preserving texture so the output looks
    like an image rather than a barcode.
    """
    plane = embed_vector_to_blocks(vector)  # (GRID, GRID) uint8
    bh = max(1, height // GRID)
    bw = max(1, width // GRID)
    red = np.repeat(np.repeat(plane, bh, axis=0), bw, axis=1)
    red = red[:height, :width]
    # Pad if the size is not divisible by GRID (repeat edge blocks).
    if red.shape[0] < height or red.shape[1] < width:
        red = np.pad(
            red,
            ((0, height - red.shape[0]), (0, width - red.shape[1])),
            mode="edge",
        )

    rng = np.random.default_rng(seed ^ 0x5EED)
    ys = np.linspace(0, 2 * np.pi, height)[:, None]
    xs = np.linspace(0, 2 * np.pi, width)[None, :]
    phase_y, phase_x = rng.uniform(0, 2 * np.pi, 2)
    # Smooth low-frequency washes: cheap to compress, decorative to look at.
    green = (127.5 * (1 + np.sin(ys * rng.integers(1, 4) + phase_y)) * np.ones((1, width))).astype(np.uint8)
    blue = (127.5 * (1 + np.sin(xs * rng.integers(1, 3) + phase_x)) * np.ones((height, 1))).astype(np.uint8)

    # Mean-preserving per-block texture on the red channel: visual variety
    # without disturbing the block means the metric recovers.
    if bh >= 2 and bw >= 2:
        texture = rng.integers(-3, 4, size=(height, width)).astype(np.int16)
        gh, gw = (height // GRID) * GRID, (width // GRID) * GRID
        sub = texture[:gh, :gw].reshape(GRID, gh // GRID, GRID, gw // GRID)
        sub -= sub.mean(axis=(1, 3), keepdims=True).astype(np.int16)
        texture[:gh, :gw] = sub.reshape(gh, gw)
        texture[gh:, :] = 0
        texture[:, gw:] = 0
        red = np.clip(red.astype(np.int16) + texture, 0, 255).astype(np.uint8)

    return np.stack([red, green, blue], axis=2)


def generate_image(
    model: ImageModel,
    device: DeviceProfile,
    prompt: str,
    width: int = 256,
    height: int = 256,
    steps: int | None = None,
    seed: int | None = None,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> ImageResult:
    """Run the simulated diffusion pipeline end to end."""
    if width < GRID or height < GRID:
        raise ValueError(f"minimum generatable size is {GRID}x{GRID}")
    steps = steps if steps is not None else model.default_steps
    if steps <= 0:
        raise ValueError("steps must be positive")
    if seed is None:
        seed = stable_u64("image-seed", model.name, prompt, width, height, steps) % 2**32
    registry = registry if registry is not None else get_registry()
    tracer = tracer if tracer is not None else get_tracer()

    with tracer.span("genai.image", model=model.name, size=f"{width}x{height}", steps=steps) as gen_span:
        fidelity = model.effective_fidelity(steps)
        # Per-generation quality jitter: real diffusion output quality varies
        # draw to draw; the model's fidelity profile is the mean, not a
        # constant. Deterministic in the seed, so results stay reproducible.
        rng = np.random.default_rng((seed ^ 0xF1DE11) % 2**32)
        fidelity = float(np.clip(fidelity + rng.normal(0.0, 0.04), 0.05, 0.98))
        vector = _content_vector(prompt, fidelity, seed)
        pixels = render_content(vector, width, height, seed)

        seconds = steps * model.step_time(device, width, height)
        energy = device.image_energy_wh(seconds)
        # Simulated cost on the span itself, so stitched distributed traces
        # can be cross-checked against the metrics registry (report.py).
        gen_span.annotate(sim_s=round(seconds, 6))
    if registry.enabled:
        registry.counter(
            "genai_generations_total",
            "Simulated generations, by modality and model",
            layer="genai",
            operation="image",
            model=model.name,
        ).inc()
        registry.counter(
            "genai_steps_total",
            "Denoising steps executed",
            layer="genai",
            operation="image",
            model=model.name,
        ).inc(steps)
        registry.histogram(
            "genai_generation_seconds",
            "Simulated generation duration",
            layer="genai",
            operation="image",
            model=model.name,
        ).observe(seconds, trace_id=tracer.current_trace_id())
        registry.counter(
            "genai_energy_wh_total",
            "Simulated generation energy",
            layer="genai",
            operation="image",
            model=model.name,
        ).inc(energy)
    return ImageResult(
        pixels=pixels,
        prompt=prompt,
        model=model.name,
        device=device.name,
        steps=steps,
        width=width,
        height=height,
        sim_time_s=seconds,
        energy_wh=energy,
    )


def random_image(width: int = 224, height: int = 224, seed: int = 0) -> np.ndarray:
    """An unprompted image — the paper's CLIP-floor baseline (§6.3.1)."""
    rng = np.random.default_rng(stable_u64("random-image", seed) % 2**32)
    return rng.integers(0, 256, size=(height, width, 3), dtype=np.uint8)
