"""The latent-diffusion simulator.

What the real pipeline does: encode the prompt, run N denoising steps in a
latent space, decode to pixels. What this simulator preserves:

* **prompt → content**: the prompt's embedding, perturbed by
  model-dependent noise, becomes the image's *content vector*, rendered
  into the pixels so that a CLIP-style metric can recover it
  (:mod:`repro.genai.embeddings`). Higher-fidelity models add less noise,
  which is what separates SD 2.1 from SD 3/3.5 from DALL·E 3 in Table 1.
* **steps → time and quality**: generation time is
  ``steps × step_time(model, device, resolution)``; more steps slightly
  reduce residual noise (the paper: "only minor changes to CLIP score" as
  steps scale from 10 to 60).
* **resolution → time**: per-device resolution curves from
  :mod:`repro.devices.profiles`, including the laptop's 1024² blow-up.
* **device → energy**: power draw integrated over simulated time.

Every output is a real image: an (H, W, 3) uint8 array encodable to PNG.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro._util.hashing import stable_u64
from repro.devices.profiles import DeviceProfile
from repro.genai.embeddings import (
    EMBED_DIM,
    GRID,
    PIXEL_GAIN,
    embed_vector_to_blocks,
    text_embedding,
    text_embedding_batch,
)
from repro.media.png import encode_png
from repro.obs import MetricsRegistry, Tracer, get_registry, get_tracer

DEFAULT_STEPS = 15  # Table 1 evaluates at 15 inference steps


@dataclass(frozen=True)
class ImageModel:
    """A text-to-image model profile.

    ``fidelity`` is the target cosine alignment between the prompt
    embedding and the generated content vector at the reference step count;
    it is calibrated so the CLIP-sim scores land on Table 1 (DESIGN.md §5).
    ``arena_quality`` is the latent strength used by the simulated
    preference arena that produces ELO ratings.
    """

    name: str
    fidelity: float
    arena_quality: float
    #: Seconds per denoising step at 224×224, keyed by device name (Table 1).
    step_time_224: dict[str, float] = field(default_factory=dict)
    #: Models run provider-side (DALL·E 3) have no on-device step times.
    server_only: bool = False
    default_steps: int = DEFAULT_STEPS

    def step_time(self, device: DeviceProfile, width: int, height: int) -> float:
        """Seconds per step on ``device`` at the given resolution."""
        reference = self.step_time_224.get(device.name)
        if reference is None and "-" in device.name:
            # Projected future devices (repro.devices.future) keep their
            # base device's timing profile key: "laptop-future" → "laptop".
            reference = self.step_time_224.get(device.name.split("-")[0])
        if reference is None:
            raise ValueError(
                f"model {self.name!r} has no timing profile for device {device.name!r}"
                + (" (server-only model)" if self.server_only else "")
            )
        return device.image_step_time(reference, width, height)

    def effective_fidelity(self, steps: int) -> float:
        """Fidelity after ``steps`` denoising steps.

        Converges quickly: below ~8 steps quality degrades noticeably, and
        past the reference count the gain is marginal (the paper's §6.3.1
        observation).
        """
        if steps <= 0:
            raise ValueError("steps must be positive")
        ramp = 1.0 - 0.5 * np.exp(-steps / 5.0)
        return float(np.clip(self.fidelity * ramp / (1.0 - 0.5 * np.exp(-DEFAULT_STEPS / 5.0)), 0.0, 0.99))


@dataclass
class ImageResult:
    """Output of a simulated generation."""

    pixels: np.ndarray
    prompt: str
    model: str
    device: str
    steps: int
    width: int
    height: int
    sim_time_s: float
    energy_wh: float

    _png_cache: bytes | None = None
    _png_lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def png_bytes(self) -> bytes:
        """Encode (and cache) the pixels as real PNG bytes.

        Thread-safe: the batching engine pipelines encodes on a worker
        pool while page processors may request the same bytes, so the
        cache fill is guarded — exactly one encode per result.
        """
        if self._png_cache is None:
            with self._png_lock:
                if self._png_cache is None:
                    self._png_cache = encode_png(self.pixels)
        return self._png_cache


def _content_vector(prompt: str, fidelity: float, seed: int) -> np.ndarray:
    """Mix the prompt embedding with model noise at the target cosine.

    For unit vectors e (prompt) and n (orthogonalised noise), the mixture
    ``f·e + sqrt(1-f²)·n`` has cosine exactly ``f`` with ``e``.
    """
    prompt_vec = text_embedding(prompt)
    rng = np.random.default_rng(seed)
    noise = rng.standard_normal(EMBED_DIM)
    if np.linalg.norm(prompt_vec) == 0:
        out = noise
    else:
        noise -= np.dot(noise, prompt_vec) * prompt_vec  # orthogonalise
        noise /= np.linalg.norm(noise)
        out = fidelity * prompt_vec + np.sqrt(max(0.0, 1.0 - fidelity**2)) * noise
    norm = np.linalg.norm(out)
    return out / norm if norm else out


def render_content(vector: np.ndarray, width: int, height: int, seed: int) -> np.ndarray:
    """Render a content vector into an (H, W, 3) image.

    The red channel carries the vector as per-block means (recoverable by
    :func:`repro.genai.embeddings.image_embedding`); green and blue carry
    decorative gradients and mean-preserving texture so the output looks
    like an image rather than a barcode.
    """
    plane = embed_vector_to_blocks(vector)  # (GRID, GRID) uint8
    bh = max(1, height // GRID)
    bw = max(1, width // GRID)
    red = np.repeat(np.repeat(plane, bh, axis=0), bw, axis=1)
    red = red[:height, :width]
    # Pad if the size is not divisible by GRID (repeat edge blocks).
    if red.shape[0] < height or red.shape[1] < width:
        red = np.pad(
            red,
            ((0, height - red.shape[0]), (0, width - red.shape[1])),
            mode="edge",
        )

    rng = np.random.default_rng(seed ^ 0x5EED)
    ys = np.linspace(0, 2 * np.pi, height)[:, None]
    xs = np.linspace(0, 2 * np.pi, width)[None, :]
    phase_y, phase_x = rng.uniform(0, 2 * np.pi, 2)
    # Smooth low-frequency washes: cheap to compress, decorative to look at.
    green = (127.5 * (1 + np.sin(ys * rng.integers(1, 4) + phase_y)) * np.ones((1, width))).astype(np.uint8)
    blue = (127.5 * (1 + np.sin(xs * rng.integers(1, 3) + phase_x)) * np.ones((height, 1))).astype(np.uint8)

    # Mean-preserving per-block texture on the red channel: visual variety
    # without disturbing the block means the metric recovers.
    if bh >= 2 and bw >= 2:
        texture = rng.integers(-3, 4, size=(height, width)).astype(np.int16)
        gh, gw = (height // GRID) * GRID, (width // GRID) * GRID
        sub = texture[:gh, :gw].reshape(GRID, gh // GRID, GRID, gw // GRID)
        sub -= sub.mean(axis=(1, 3), keepdims=True).astype(np.int16)
        texture[:gh, :gw] = sub.reshape(gh, gw)
        texture[gh:, :] = 0
        texture[:, gw:] = 0
        red = np.clip(red.astype(np.int16) + texture, 0, 255).astype(np.uint8)

    return np.stack([red, green, blue], axis=2)


def generate_image(
    model: ImageModel,
    device: DeviceProfile,
    prompt: str,
    width: int = 256,
    height: int = 256,
    steps: int | None = None,
    seed: int | None = None,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> ImageResult:
    """Run the simulated diffusion pipeline end to end."""
    if width < GRID or height < GRID:
        raise ValueError(f"minimum generatable size is {GRID}x{GRID}")
    steps = steps if steps is not None else model.default_steps
    if steps <= 0:
        raise ValueError("steps must be positive")
    if seed is None:
        seed = stable_u64("image-seed", model.name, prompt, width, height, steps) % 2**32
    registry = registry if registry is not None else get_registry()
    tracer = tracer if tracer is not None else get_tracer()

    with tracer.span("genai.image", model=model.name, size=f"{width}x{height}", steps=steps) as gen_span:
        fidelity = model.effective_fidelity(steps)
        # Per-generation quality jitter: real diffusion output quality varies
        # draw to draw; the model's fidelity profile is the mean, not a
        # constant. Deterministic in the seed, so results stay reproducible.
        rng = np.random.default_rng((seed ^ 0xF1DE11) % 2**32)
        fidelity = float(np.clip(fidelity + rng.normal(0.0, 0.04), 0.05, 0.98))
        vector = _content_vector(prompt, fidelity, seed)
        pixels = render_content(vector, width, height, seed)

        seconds = steps * model.step_time(device, width, height)
        energy = device.image_energy_wh(seconds)
        # Simulated cost on the span itself, so stitched distributed traces
        # can be cross-checked against the metrics registry (report.py).
        gen_span.annotate(sim_s=round(seconds, 6))
    if registry.enabled:
        registry.counter(
            "genai_generations_total",
            "Simulated generations, by modality and model",
            layer="genai",
            operation="image",
            model=model.name,
        ).inc()
        registry.counter(
            "genai_steps_total",
            "Denoising steps executed",
            layer="genai",
            operation="image",
            model=model.name,
        ).inc(steps)
        registry.histogram(
            "genai_generation_seconds",
            "Simulated generation duration",
            layer="genai",
            operation="image",
            model=model.name,
        ).observe(seconds, trace_id=tracer.current_trace_id())
        registry.counter(
            "genai_energy_wh_total",
            "Simulated generation energy",
            layer="genai",
            operation="image",
            model=model.name,
        ).inc(energy)
    return ImageResult(
        pixels=pixels,
        prompt=prompt,
        model=model.name,
        device=device.name,
        steps=steps,
        width=width,
        height=height,
        sim_time_s=seconds,
        energy_wh=energy,
    )


def batch_step_share(batch_size: int, alpha: float) -> float:
    """Per-item share of a batched run's step cost: ``(1 + α·(B−1)) / B``.

    ``α`` is the marginal cost of one extra batch lane relative to a solo
    run (0 = free lanes / perfect amortisation, 1 = no amortisation). At
    ``B = 1`` the share is exactly ``1.0`` for every α, which keeps the
    solo path's simulated time bit-identical — multiplying a float by 1.0
    is an identity. Calibration of the default α lives in
    :mod:`repro.batching` (docs/PERFORMANCE.md derives the value).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    return (1.0 + alpha * (batch_size - 1)) / batch_size


def _content_vector_batch(
    prompts: list[str], fidelities: list[float], seeds: list[int]
) -> np.ndarray:
    """Batched :func:`_content_vector`: one (B, EMBED_DIM) stacked mix.

    Per-item work is limited to what must match the solo path bit for bit:
    the RNG draw (one generator per seed, same draw order) and the scalar
    reductions (``np.dot``/``np.linalg.norm`` use BLAS accumulation orders
    that stacked sums do not reproduce). The orthogonalise, mix and
    normalise are single stacked elementwise passes — elementwise float
    ops are bit-exact regardless of batching.
    """
    count = len(prompts)
    vectors = text_embedding_batch(prompts)
    noise = np.empty((count, EMBED_DIM))
    for i, seed in enumerate(seeds):
        noise[i] = np.random.default_rng(seed).standard_normal(EMBED_DIM)

    prompt_norms = np.array([np.linalg.norm(vectors[i]) for i in range(count)])
    dots = np.array([np.dot(noise[i], vectors[i]) for i in range(count)])
    orth = noise - dots[:, None] * vectors  # stacked orthogonalise
    orth_norms = np.array([np.linalg.norm(orth[i]) for i in range(count)])
    safe_orth = np.where(orth_norms == 0.0, 1.0, orth_norms)
    orth = orth / safe_orth[:, None]

    gains = np.array(fidelities)
    residuals = np.array(
        [np.sqrt(max(0.0, 1.0 - fidelity**2)) for fidelity in fidelities]
    )
    mixed = gains[:, None] * vectors + residuals[:, None] * orth  # stacked mix
    # Empty prompts carry no embedding: the solo path falls back to raw noise.
    out = np.where(prompt_norms[:, None] == 0.0, noise, mixed)

    norms = np.array([np.linalg.norm(out[i]) for i in range(count)])
    safe = np.where(norms == 0.0, 1.0, norms)
    return np.where(norms[:, None] == 0.0, out, out / safe[:, None])


def render_content_batch(
    vectors: np.ndarray, width: int, height: int, seeds: list[int]
) -> np.ndarray:
    """Batched :func:`render_content`: a (B, H, W, 3) uint8 array in one pass.

    All images in a micro-batch share a resolution (it is part of the
    group key), so the repeats, gradients, clips and channel stack run
    once over the whole batch. RNG draws stay per item in the solo draw
    order; the per-block texture mean is a float reduction and therefore
    also stays per item.
    """
    count = len(seeds)
    clipped = np.clip(vectors * PIXEL_GAIN, -1.0, 1.0)
    planes = np.round(127.5 * (1.0 + clipped)).astype(np.uint8).reshape(count, GRID, GRID)

    bh = max(1, height // GRID)
    bw = max(1, width // GRID)
    red = np.repeat(np.repeat(planes, bh, axis=1), bw, axis=2)
    red = red[:, :height, :width]
    if red.shape[1] < height or red.shape[2] < width:
        red = np.pad(
            red,
            ((0, 0), (0, height - red.shape[1]), (0, width - red.shape[2])),
            mode="edge",
        )

    ys = np.linspace(0, 2 * np.pi, height)[:, None]
    xs = np.linspace(0, 2 * np.pi, width)[None, :]
    textured = bh >= 2 and bw >= 2
    phase_y = np.empty(count)
    phase_x = np.empty(count)
    freq_y = np.empty(count, dtype=np.int64)
    freq_x = np.empty(count, dtype=np.int64)
    textures = np.zeros((count, height, width), dtype=np.int16) if textured else None
    gh, gw = (height // GRID) * GRID, (width // GRID) * GRID
    for i, seed in enumerate(seeds):
        rng = np.random.default_rng(seed ^ 0x5EED)
        phase_y[i], phase_x[i] = rng.uniform(0, 2 * np.pi, 2)
        freq_y[i] = rng.integers(1, 4)
        freq_x[i] = rng.integers(1, 3)
        if textured:
            texture = rng.integers(-3, 4, size=(height, width)).astype(np.int16)
            sub = texture[:gh, :gw].reshape(GRID, gh // GRID, GRID, gw // GRID)
            sub -= sub.mean(axis=(1, 3), keepdims=True).astype(np.int16)
            texture[:gh, :gw] = sub.reshape(gh, gw)
            texture[gh:, :] = 0
            texture[:, gw:] = 0
            textures[i] = texture

    green = (
        127.5 * (1 + np.sin(ys[None, :, :] * freq_y[:, None, None] + phase_y[:, None, None]))
        * np.ones((1, 1, width))
    ).astype(np.uint8)
    blue = (
        127.5 * (1 + np.sin(xs[None, :, :] * freq_x[:, None, None] + phase_x[:, None, None]))
        * np.ones((1, height, 1))
    ).astype(np.uint8)
    if textured:
        red = np.clip(red.astype(np.int16) + textures, 0, 255).astype(np.uint8)

    return np.stack([red, green, blue], axis=3)


def generate_image_batch(
    model: ImageModel,
    device: DeviceProfile,
    prompts: list[str],
    width: int = 256,
    height: int = 256,
    steps: int | None = None,
    seeds: list[int | None] | None = None,
    alpha: float = 0.0,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> list[ImageResult]:
    """Run one micro-batch through the batched kernels.

    Every per-item output (pixels, seed derivation, fidelity jitter) is
    byte-identical to ``generate_image`` called solo with the same
    arguments. Only the simulated cost differs: per-item seconds are the
    solo cost times :func:`batch_step_share`, modelling accelerator-style
    amortisation. With the default ``alpha=0.0`` each item still pays
    ``share = 1/B``; callers model a real accelerator by passing the
    calibrated α from :mod:`repro.batching`. A batch of one is identical
    to the solo path in both bytes and time for every α.
    """
    if width < GRID or height < GRID:
        raise ValueError(f"minimum generatable size is {GRID}x{GRID}")
    steps = steps if steps is not None else model.default_steps
    if steps <= 0:
        raise ValueError("steps must be positive")
    count = len(prompts)
    if count == 0:
        return []
    if seeds is None:
        seeds = [None] * count
    if len(seeds) != count:
        raise ValueError("seeds must match prompts length")
    resolved = [
        seed
        if seed is not None
        else stable_u64("image-seed", model.name, prompt, width, height, steps) % 2**32
        for prompt, seed in zip(prompts, seeds)
    ]
    registry = registry if registry is not None else get_registry()
    tracer = tracer if tracer is not None else get_tracer()

    with tracer.span(
        "genai.image_batch",
        model=model.name,
        size=f"{width}x{height}",
        steps=steps,
        batch=count,
    ) as gen_span:
        base_fidelity = model.effective_fidelity(steps)
        fidelities = []
        for seed in resolved:
            rng = np.random.default_rng((seed ^ 0xF1DE11) % 2**32)
            fidelities.append(float(np.clip(base_fidelity + rng.normal(0.0, 0.04), 0.05, 0.98)))
        vectors = _content_vector_batch(prompts, fidelities, resolved)
        pixels = render_content_batch(vectors, width, height, resolved)

        share = batch_step_share(count, alpha)
        seconds = steps * model.step_time(device, width, height) * share
        energy = device.image_energy_wh(seconds)
        gen_span.annotate(sim_s=round(seconds * count, 6), share=round(share, 4))

    if registry.enabled:
        registry.counter(
            "genai_generations_total",
            "Simulated generations, by modality and model",
            layer="genai",
            operation="image",
            model=model.name,
        ).inc(count)
        registry.counter(
            "genai_steps_total",
            "Denoising steps executed",
            layer="genai",
            operation="image",
            model=model.name,
        ).inc(steps * count)
        seconds_hist = registry.histogram(
            "genai_generation_seconds",
            "Simulated generation duration",
            layer="genai",
            operation="image",
            model=model.name,
        )
        for _ in range(count):
            seconds_hist.observe(seconds, trace_id=tracer.current_trace_id())
        registry.counter(
            "genai_energy_wh_total",
            "Simulated generation energy",
            layer="genai",
            operation="image",
            model=model.name,
        ).inc(energy * count)
    return [
        ImageResult(
            pixels=pixels[i],
            prompt=prompts[i],
            model=model.name,
            device=device.name,
            steps=steps,
            width=width,
            height=height,
            sim_time_s=seconds,
            energy_wh=energy,
        )
        for i in range(count)
    ]


def random_image(width: int = 224, height: int = 224, seed: int = 0) -> np.ndarray:
    """An unprompted image — the paper's CLIP-floor baseline (§6.3.1)."""
    rng = np.random.default_rng(stable_u64("random-image", seed) % 2**32)
    return rng.integers(0, 256, size=(height, width, 3), dtype=np.uint8)
