"""Content upscaling (paper §2.2).

    "another option is content upscaling, such as turning small images
    into large, high resolution ones. By using content upscaling, the
    storage requirements of unique content can be reduced as well.
    Content upscaling is also usually faster than content generation,
    with sub-second inference."

The simulator models a one-step diffusion super-resolution network (the
OSEDiff-class models the paper cites): the input image's content
embedding is preserved — upscaling never changes *what* the image shows —
while per-pixel detail is hallucinated deterministically. Inference is a
single step, so it runs in well under a second on the workstation and
around a second on the laptop, versus minutes for full generation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util.hashing import stable_u64
from repro.devices.profiles import DeviceProfile


@dataclass(frozen=True)
class UpscaleModel:
    """A super-resolution model profile.

    ``step_time_224`` is the single inference step's cost at 224×224
    *output* resolution per device; like generation it scales with the
    device's resolution curve, but there is exactly one step.
    """

    name: str
    step_time_224: dict[str, float]
    #: How much high-frequency detail is hallucinated (0..1); affects
    #: pixels only, never the recoverable content embedding.
    detail_strength: float = 0.5
    max_scale: int = 4

    def inference_time(self, device: DeviceProfile, out_width: int, out_height: int) -> float:
        reference = self.step_time_224.get(device.name)
        if reference is None:
            raise ValueError(f"model {self.name!r} has no profile for device {device.name!r}")
        return device.image_step_time(reference, out_width, out_height)


#: One-step effective diffusion SR (OSEDiff-class, cited [58]): sub-second
#: on the workstation even at large outputs.
ONE_STEP_SR = UpscaleModel(
    name="one-step-sr",
    step_time_224={"laptop": 0.30, "workstation": 0.035, "mobile": 0.9, "cloud": 0.028},
)

#: A lighter lanczos-style scaler for the video/frame path: near-free.
FAST_SCALER = UpscaleModel(
    name="fast-scaler",
    step_time_224={"laptop": 0.02, "workstation": 0.004, "mobile": 0.05, "cloud": 0.003},
    detail_strength=0.1,
    max_scale=2,
)

UPSCALE_MODELS = {m.name: m for m in (ONE_STEP_SR, FAST_SCALER)}


@dataclass
class UpscaleResult:
    """Output of a simulated upscale."""

    pixels: np.ndarray
    model: str
    device: str
    scale: int
    sim_time_s: float
    energy_wh: float

    def png_bytes(self) -> bytes:
        from repro.media.png import encode_png

        return encode_png(self.pixels)


def upscale_image(
    model: UpscaleModel,
    device: DeviceProfile,
    pixels: np.ndarray,
    scale: int,
    seed: int | None = None,
) -> UpscaleResult:
    """Upscale an (H, W, 3) image by an integer factor.

    Nearest-neighbour expansion keeps every source block's mean intact
    (so :func:`repro.genai.embeddings.image_embedding` recovers the same
    content vector from the output — semantics preserved by construction),
    then mean-preserving detail noise is layered per source pixel.
    """
    if pixels.ndim != 3 or pixels.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) image, got {pixels.shape}")
    if not 2 <= scale <= model.max_scale:
        raise ValueError(f"scale {scale} outside [2, {model.max_scale}] for {model.name}")
    height, width, _ = pixels.shape
    out_h, out_w = height * scale, width * scale
    if seed is None:
        seed = stable_u64("upscale", model.name, height, width, scale) % 2**32

    big = np.repeat(np.repeat(pixels, scale, axis=0), scale, axis=1).astype(np.int16)
    if model.detail_strength > 0:
        rng = np.random.default_rng(seed)
        amplitude = int(round(8 * model.detail_strength))
        if amplitude:
            noise = rng.integers(-amplitude, amplitude + 1, size=(out_h, out_w, 3)).astype(np.int16)
            # Zero the mean within each scale×scale cell so source-pixel
            # (and therefore block) means are exactly preserved.
            cells = noise.reshape(height, scale, width, scale, 3)
            cells -= cells.mean(axis=(1, 3), keepdims=True).astype(np.int16)
            big = big + cells.reshape(out_h, out_w, 3)
    out = np.clip(big, 0, 255).astype(np.uint8)

    seconds = model.inference_time(device, out_w, out_h)
    energy = device.image_energy_wh(seconds)
    return UpscaleResult(
        pixels=out,
        model=model.name,
        device=device.name,
        scale=scale,
        sim_time_s=seconds,
        energy_wh=energy,
    )


def storage_saving_factor(out_width: int, out_height: int, scale: int) -> float:
    """Bytes saved by storing the small original instead of the large one.

    With a linear-in-pixels media size model this is exactly ``scale²`` —
    §2.2's "the storage requirements of unique content can be reduced as
    well".
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    return float(scale * scale)
