"""Topic vocabularies and connective phrases for the text simulator.

The text-expansion engine builds prose from the source bullet points'
content words plus topical vocabulary; the drift mechanism injects generic
filler drawn from :data:`GENERIC_FILLER`. The workload corpus generators
(:mod:`repro.workloads.corpus`) share these banks so that prompts, pages
and generated text inhabit one consistent lexicon.
"""

from __future__ import annotations

TOPIC_BANKS: dict[str, tuple[str, ...]] = {
    "travel": (
        "trail", "summit", "valley", "ridge", "vista", "meadow", "alpine",
        "wilderness", "backpack", "itinerary", "scenic", "panorama",
        "elevation", "switchback", "campsite", "waterfall", "gorge",
        "trailhead", "compass", "expedition", "journey", "horizon",
        "pass", "lodge", "ascent", "descent", "terrain", "route",
    ),
    "landscape": (
        "mountain", "lake", "forest", "river", "cloud", "sunset", "sunrise",
        "glacier", "fjord", "coastline", "prairie", "dune", "canyon",
        "volcano", "rainbow", "reflection", "mist", "snowcap", "pasture",
        "shoreline", "cliff", "island", "waterfall", "meadow", "sky",
    ),
    "food": (
        "menu", "delivery", "cuisine", "flavor", "recipe", "ingredient",
        "appetizer", "entree", "dessert", "seasonal", "organic", "roasted",
        "grilled", "savory", "chef", "kitchen", "portion", "platter",
        "garnish", "sauce", "tasting", "pairing", "artisanal", "fresh",
    ),
    "news": (
        "report", "official", "statement", "announcement", "investigation",
        "policy", "economy", "market", "government", "parliament",
        "minister", "spokesperson", "analysis", "development", "response",
        "measure", "proposal", "impact", "sector", "infrastructure",
        "regulation", "budget", "negotiation", "agreement", "summit",
    ),
    "technology": (
        "network", "protocol", "bandwidth", "latency", "server", "client",
        "browser", "inference", "model", "accelerator", "generation",
        "prompt", "diffusion", "rendering", "pipeline", "storage",
        "compression", "sustainability", "energy", "datacenter", "edge",
        "cache", "throughput", "deployment", "hardware", "silicon",
    ),
    "nature": (
        "wildlife", "habitat", "species", "ecosystem", "conservation",
        "migration", "canopy", "undergrowth", "riverbank", "wetland",
        "grassland", "predator", "songbird", "pollinator", "bloom",
        "foliage", "seedling", "biodiversity", "watershed", "estuary",
    ),
}

CONNECTIVES: tuple[str, ...] = (
    "in addition", "meanwhile", "as a result", "for this reason",
    "beyond that", "at the same time", "in practice", "more broadly",
    "taken together", "in contrast", "on balance", "looking ahead",
)

SENTENCE_OPENERS: tuple[str, ...] = (
    "The", "Along the way, the", "Visitors find that the", "Notably, the",
    "Many agree the", "Here the", "Throughout, the", "Nearby, the",
    "Each year the", "Historically, the",
)

VERBS: tuple[str, ...] = (
    "reveals", "offers", "frames", "captures", "presents", "showcases",
    "suggests", "supports", "shapes", "defines", "anchors", "highlights",
    "surrounds", "complements", "extends", "rewards",
)

ADJECTIVES: tuple[str, ...] = (
    "remarkable", "quiet", "sweeping", "gentle", "dramatic", "vivid",
    "understated", "generous", "memorable", "layered", "expansive",
    "distinct", "familiar", "striking", "unhurried", "luminous",
)

#: Off-topic filler the drifting models inject (generic web boilerplate).
GENERIC_FILLER: tuple[str, ...] = (
    "readers everywhere appreciate dependable guidance and friendly advice",
    "countless options await anyone willing to explore something new today",
    "experts recommend planning carefully and keeping expectations flexible",
    "a little preparation goes a long way toward a satisfying experience",
    "community feedback continues to shape improvements season after season",
    "newcomers and veterans alike discover different perspectives all the time",
)

ALL_TOPICS: tuple[str, ...] = tuple(sorted(TOPIC_BANKS))


def topic_words(topic: str) -> tuple[str, ...]:
    """Vocabulary for a topic, defaulting to the technology bank."""
    return TOPIC_BANKS.get(topic, TOPIC_BANKS["technology"])
