"""Simulated generative models.

Real Stable Diffusion / Ollama models are hardware- and network-gated in
this environment, so this subpackage provides deterministic synthetic
equivalents that exercise the same code paths the paper's prototype uses
(DESIGN.md §2 documents the substitution argument):

* :mod:`repro.genai.embeddings` — deterministic text/image feature vectors;
  the shared latent space that makes CLIP/SBERT-style similarity measurable.
* :mod:`repro.genai.image` — a latent-diffusion *simulator*: prompt →
  (noisy) content embedding → procedurally rendered pixels → real PNG
  bytes, with per-model fidelity and per-device step timing.
* :mod:`repro.genai.text` — bullet-points → prose expansion with per-model
  semantic drift, length-control error and generation-time profiles.
* :mod:`repro.genai.registry` — the model zoo (SD 2.1/3/3.5, DALL·E 3,
  Llama 3.2, DeepSeek-R1 1.5B/8B/14B) with calibrated quality profiles.
* :mod:`repro.genai.pipeline` — the preloaded generation pipeline object
  the paper's §4.1 describes as a performance optimisation.
* :mod:`repro.genai.ollama_api` — an Ollama-shaped local HTTP API wrapper,
  mirroring how the prototype reached its text models.
"""

from repro.genai.embeddings import text_embedding, image_embedding, cosine_similarity
from repro.genai.image import ImageModel, ImageResult, random_image
from repro.genai.text import TextModel, TextResult
from repro.genai.registry import (
    IMAGE_MODELS,
    TEXT_MODELS,
    get_image_model,
    get_text_model,
)
from repro.genai.pipeline import GenerationPipeline, PipelineLoadCost
from repro.genai.upscale import UpscaleModel, UpscaleResult, upscale_image, ONE_STEP_SR, FAST_SCALER

__all__ = [
    "text_embedding",
    "image_embedding",
    "cosine_similarity",
    "ImageModel",
    "ImageResult",
    "random_image",
    "TextModel",
    "TextResult",
    "IMAGE_MODELS",
    "TEXT_MODELS",
    "get_image_model",
    "get_text_model",
    "GenerationPipeline",
    "PipelineLoadCost",
    "UpscaleModel",
    "UpscaleResult",
    "upscale_image",
    "ONE_STEP_SR",
    "FAST_SCALER",
]
