"""The preloaded generation pipeline (paper §4.1).

    "The choice to preload the image generation pipeline from a library
    (for example, a Diffusers library) is for performance optimisation.
    Since it is a large object, it would otherwise need to be repeatedly
    deleted and reloaded within the media generator every time it is
    invoked."

:class:`GenerationPipeline` models exactly that: constructing it costs a
one-time simulated load (weights from disk into memory), after which
generations are invoked without reload. A media generator configured
*without* a preloaded pipeline pays the load cost on every invocation —
the A2 ablation benchmark quantifies the difference.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.profiles import DeviceProfile
from repro.genai.image import ImageModel, ImageResult, generate_image
from repro.genai.registry import DEFAULT_IMAGE_MODEL, DEFAULT_TEXT_MODEL
from repro.genai.text import TextModel, TextResult, expand_text
from repro.obs import MetricsRegistry, Tracer, get_registry, get_tracer


@dataclass(frozen=True)
class PipelineLoadCost:
    """Cost of materialising the pipeline object.

    SD 3 Medium weights are ≈4.5 GB at FP16; loading them from NVMe and
    moving to the accelerator is tens of seconds on a laptop and a few
    seconds on a workstation-class disk/GPU pair.
    """

    weights_bytes: int = 4_500_000_000
    #: Effective load bandwidth per device (disk + host-to-device), B/s.
    load_bandwidth: float = 1.2e9

    def load_time_s(self, device: DeviceProfile) -> float:
        slowdown = {"laptop": 3.0, "workstation": 1.0, "mobile": 8.0, "cloud": 0.8}.get(device.name, 2.0)
        return self.weights_bytes / self.load_bandwidth * slowdown

    def load_energy_wh(self, device: DeviceProfile) -> float:
        return device.image_power.energy_wh(self.load_time_s(device))


class GenerationPipeline:
    """Holds loaded models; generation methods never reload.

    The pipeline accrues simulated time/energy into ``overhead_time_s`` /
    ``overhead_energy_wh`` at construction; per-call results carry only the
    inference cost. Set ``preloaded=False`` to model the naive design that
    re-loads per invocation (every call then includes the load cost).
    """

    def __init__(
        self,
        device: DeviceProfile,
        image_model: ImageModel = DEFAULT_IMAGE_MODEL,
        text_model: TextModel = DEFAULT_TEXT_MODEL,
        preloaded: bool = True,
        load_cost: PipelineLoadCost | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.device = device
        #: Observability sinks, threaded into every generation call.
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self.image_model = image_model
        self.text_model = text_model
        self.preloaded = preloaded
        self.load_cost = load_cost or PipelineLoadCost()
        self.invocations = 0
        self.reloads = 0
        self.overhead_time_s = 0.0
        self.overhead_energy_wh = 0.0
        if preloaded:
            self._account_load()

    def _account_load(self) -> None:
        self.reloads += 1
        self.overhead_time_s += self.load_cost.load_time_s(self.device)
        self.overhead_energy_wh += self.load_cost.load_energy_wh(self.device)

    def _maybe_reload(self) -> None:
        if not self.preloaded:
            self._account_load()

    def generate_image(
        self,
        prompt: str,
        width: int = 256,
        height: int = 256,
        steps: int | None = None,
        seed: int | None = None,
    ) -> ImageResult:
        """Generate an image; uses the held (or freshly loaded) weights."""
        self._maybe_reload()
        self.invocations += 1
        return generate_image(
            self.image_model,
            self.device,
            prompt,
            width,
            height,
            steps,
            seed,
            registry=self.registry,
            tracer=self.tracer,
        )

    def expand_text(self, prompt: str, target_words: int, topic: str = "technology") -> TextResult:
        """Expand bullet points to prose via the held text model."""
        self._maybe_reload()
        self.invocations += 1
        return expand_text(
            self.text_model,
            self.device,
            prompt,
            target_words,
            topic,
            registry=self.registry,
            tracer=self.tracer,
        )

    @property
    def total_overhead(self) -> tuple[float, float]:
        """(simulated seconds, Wh) spent on model loading so far."""
        return self.overhead_time_s, self.overhead_energy_wh
