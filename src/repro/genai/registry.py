"""The model zoo with calibrated quality/performance profiles.

Image fidelities are calibrated so the CLIP-sim metric lands on Table 1:
with ``clip = 0.09 + 0.26·cosine`` (see :mod:`repro.metrics.clip`), the
targets 0.19 / 0.27 / 0.27 / 0.32 require cosines ≈ 0.385 / 0.69 / 0.695 /
0.885. Arena qualities are the Table 1 ELO values themselves — the
simulated preference arena (:mod:`repro.metrics.elo`) uses them as latent
strengths and *measures* ratings from simulated pairwise battles.

Text model base times are workstation seconds at 250 words, anchored on
Table 2 (DeepSeek-R1 8B = 13.0 s) with the others placed to reproduce the
§6.3.2 ranges (6.98-14.33 s workstation, 16.06-34.04 s laptop at 2.5×).
"""

from __future__ import annotations

from repro.genai.image import ImageModel
from repro.genai.text import TextModel

SD21 = ImageModel(
    name="sd-2.1-base",
    fidelity=0.385,
    arena_quality=688.0,
    step_time_224={"laptop": 0.18, "workstation": 0.02, "mobile": 0.54, "cloud": 0.016},
)

SD3_MEDIUM = ImageModel(
    name="sd-3-medium",
    fidelity=0.690,
    arena_quality=895.0,
    step_time_224={"laptop": 0.38, "workstation": 0.05, "mobile": 1.14, "cloud": 0.04},
)

SD35_MEDIUM = ImageModel(
    name="sd-3.5-medium",
    fidelity=0.695,
    arena_quality=927.0,
    step_time_224={"laptop": 0.59, "workstation": 0.06, "mobile": 1.77, "cloud": 0.048},
)

DALLE3 = ImageModel(
    name="dalle-3",
    fidelity=0.885,
    arena_quality=923.0,
    step_time_224={"cloud": 0.04},
    server_only=True,
)

#: Reference entry the paper mentions as the arena leader (not evaluated
#: on-device): GPT-4o with ELO 1166.
GPT4O_IMAGE = ImageModel(
    name="gpt-4o-image",
    fidelity=0.92,
    arena_quality=1166.0,
    step_time_224={"cloud": 0.05},
    server_only=True,
)

IMAGE_MODELS: dict[str, ImageModel] = {
    m.name: m for m in (SD21, SD3_MEDIUM, SD35_MEDIUM, DALLE3, GPT4O_IMAGE)
}

LLAMA32 = TextModel(
    name="llama-3.2",
    base_time_s=9.0,
    drift=0.30,
    length_error_scale=0.10,
    reasoning=False,
)

DEEPSEEK_R1_1_5B = TextModel(
    name="deepseek-r1-1.5b",
    base_time_s=8.7,
    drift=0.34,
    length_error_scale=0.13,
)

DEEPSEEK_R1_8B = TextModel(
    name="deepseek-r1-8b",
    base_time_s=13.0,  # Table 2: 250-word block, workstation
    drift=0.12,
    length_error_scale=0.04,
)

DEEPSEEK_R1_14B = TextModel(
    name="deepseek-r1-14b",
    base_time_s=11.5,
    drift=0.15,
    length_error_scale=0.06,
)

TEXT_MODELS: dict[str, TextModel] = {
    m.name: m for m in (LLAMA32, DEEPSEEK_R1_1_5B, DEEPSEEK_R1_8B, DEEPSEEK_R1_14B)
}

#: The prototype's models of choice (§6.3.1, §6.3.2, Table 2).
DEFAULT_IMAGE_MODEL = SD3_MEDIUM
DEFAULT_TEXT_MODEL = DEEPSEEK_R1_8B


def get_image_model(name: str) -> ImageModel:
    try:
        return IMAGE_MODELS[name]
    except KeyError:
        raise KeyError(f"unknown image model {name!r}; available: {sorted(IMAGE_MODELS)}") from None


def get_text_model(name: str) -> TextModel:
    try:
        return TEXT_MODELS[name]
    except KeyError:
        raise KeyError(f"unknown text model {name!r}; available: {sorted(TEXT_MODELS)}") from None
