"""Deterministic text and image embeddings.

These stand in for the CLIP text/image towers and SBERT: fixed-dimension
vectors where *semantic overlap → cosine similarity*. Text embeds as a
hashed bag of words (each token hashed to a signed pseudo-random direction,
summed, L2-normalised), so texts sharing vocabulary align and unrelated
texts are near-orthogonal — the property every similarity experiment in the
paper relies on.

Images carry their content vector in the pixel grid itself: the diffusion
simulator renders the (noisy) prompt embedding into per-block channel
means, and :func:`image_embedding` recovers it by block-averaging. A
random image therefore recovers a random vector, reproducing the paper's
CLIP floor of ≈0.09 for an unprompted image.
"""

from __future__ import annotations

import re

import numpy as np

from repro._util.hashing import stable_hash

EMBED_DIM = 256
#: Image block grid: 16×16 blocks carry the 256 embedding dimensions.
GRID = 16
#: Pixel encoding gain: embedding value v maps to byte 127.5·(1 + GAIN·v).
PIXEL_GAIN = 4.0

_WORD_RE = re.compile(r"[a-z0-9']+")

_STOPWORDS = frozenset(
    """a an the of to in and or is are was were be been it its this that with
    for on at by from as but not no so if then than into over under out up
    down off very just only own same too can will would should may might
    have has had do does did""".split()
)


def tokenize_words(text: str) -> list[str]:
    """Lowercased word tokens, stopwords removed."""
    return [w for w in _WORD_RE.findall(text.lower()) if w not in _STOPWORDS]


def _token_direction(token: str) -> np.ndarray:
    """A stable pseudo-random unit-variance direction for one token."""
    digest = stable_hash("embed-token", token)
    # Expand the 32-byte digest into EMBED_DIM signed values.
    seed = int.from_bytes(digest[:8], "big")
    rng = np.random.default_rng(seed)
    return rng.standard_normal(EMBED_DIM)


# Token directions are pure functions of the token; cache them.
_DIRECTION_CACHE: dict[str, np.ndarray] = {}


def token_direction(token: str) -> np.ndarray:
    cached = _DIRECTION_CACHE.get(token)
    if cached is None:
        cached = _token_direction(token)
        # Bound the cache so pathological inputs cannot grow it unbounded.
        if len(_DIRECTION_CACHE) > 65536:
            _DIRECTION_CACHE.clear()
        _DIRECTION_CACHE[token] = cached
    return cached


def _direction_stack(tokens: list[str]) -> np.ndarray:
    """Gather cached token directions into a C-contiguous (T, DIM) stack."""
    stack = np.empty((len(tokens), EMBED_DIM))
    for i, token in enumerate(tokens):
        stack[i] = token_direction(token)
    return stack


def text_embedding(text: str) -> np.ndarray:
    """Embed text as an L2-normalised hashed bag of words."""
    tokens = tokenize_words(text)
    if not tokens:
        return np.zeros(EMBED_DIM)
    # One C-level reduction over the stacked directions. ``np.add.reduce``
    # over axis 0 of a contiguous stack accumulates row by row in order, so
    # the sum is bit-identical to the per-token accumulation loop it
    # replaces (pinned by tests/genai/test_embedding_vectorised.py).
    total = np.add.reduce(_direction_stack(tokens), axis=0)
    norm = np.linalg.norm(total)
    return total / norm if norm else total


def text_embedding_batch(texts: list[str]) -> np.ndarray:
    """Embed a ragged batch of texts into a (B, EMBED_DIM) array.

    The batched generation kernels embed every prompt in a micro-batch at
    once: directions for the whole batch are gathered into a single stack,
    then reduced per text over contiguous segments. Each row is
    bit-identical to ``text_embedding(texts[i])`` — the per-segment
    ``np.add.reduce`` walks rows in the same order as the solo path, and
    the norm uses the same ``np.linalg.norm`` call (BLAS reductions are
    not interchangeable with stacked sums, so norms stay per-row).
    """
    out = np.zeros((len(texts), EMBED_DIM))
    token_lists = [tokenize_words(text) for text in texts]
    flat = [token for tokens in token_lists for token in tokens]
    if not flat:
        return out
    stack = _direction_stack(flat)
    offset = 0
    for i, tokens in enumerate(token_lists):
        if not tokens:
            continue
        total = np.add.reduce(stack[offset : offset + len(tokens)], axis=0)
        offset += len(tokens)
        norm = np.linalg.norm(total)
        out[i] = total / norm if norm else total
    return out


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity, 0.0 when either vector is zero."""
    na = np.linalg.norm(a)
    nb = np.linalg.norm(b)
    if na == 0 or nb == 0:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


def embed_vector_to_blocks(vector: np.ndarray) -> np.ndarray:
    """Map an embedding to a GRID×GRID byte plane (the image's R channel)."""
    if vector.shape != (EMBED_DIM,):
        raise ValueError(f"expected ({EMBED_DIM},) vector, got {vector.shape}")
    clipped = np.clip(vector * PIXEL_GAIN, -1.0, 1.0)
    bytes_plane = np.round(127.5 * (1.0 + clipped)).astype(np.uint8)
    return bytes_plane.reshape(GRID, GRID)


def blocks_to_embed_vector(plane: np.ndarray) -> np.ndarray:
    """Invert :func:`embed_vector_to_blocks` (up to quantisation)."""
    if plane.shape != (GRID, GRID):
        raise ValueError(f"expected ({GRID}, {GRID}) plane, got {plane.shape}")
    return (plane.astype(np.float64).reshape(EMBED_DIM) / 127.5 - 1.0) / PIXEL_GAIN


def image_embedding(pixels: np.ndarray) -> np.ndarray:
    """Recover an image's content embedding from its pixels.

    Block-averages the red channel over a GRID×GRID tiling and inverts the
    pixel mapping, then L2-normalises. Works for any image size at least
    GRID×GRID; arbitrary (non-generated) images yield incoherent vectors,
    which is exactly the "random image" behaviour the CLIP floor needs.
    """
    if pixels.ndim != 3 or pixels.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) image, got shape {pixels.shape}")
    height, width, _ = pixels.shape
    if height < GRID or width < GRID:
        raise ValueError(f"image smaller than {GRID}x{GRID} cannot carry an embedding")
    red = pixels[:, :, 0].astype(np.float64)
    # Average within each block; handle sizes not divisible by GRID by
    # trimming the remainder (generation always uses divisible sizes).
    bh, bw = height // GRID, width // GRID
    trimmed = red[: bh * GRID, : bw * GRID]
    blocks = trimmed.reshape(GRID, bh, GRID, bw).mean(axis=(1, 3))
    vector = blocks_to_embed_vector(np.round(blocks).astype(np.uint8).astype(np.float64).reshape(GRID, GRID))
    norm = np.linalg.norm(vector)
    return vector / norm if norm else vector
