"""The text-expansion simulator (bullet points → prose).

The paper's text path sends bullet points as the prompt; the client's LLM
expands them to a paragraph of a requested word count "without loss of
information" (§2.1). The simulator preserves what the evaluation measures:

* **semantic similarity** — the expansion reuses the bullets' content
  words; each model's *drift* rate injects generic filler, lowering the
  SBERT-sim score by a calibrated amount (§6.3.2: means 0.82-0.91, with
  DeepSeek-R1 8B consistently high).
* **length control** — the produced word count misses the target by a
  model-dependent error (overshoot up to 20%; good models ≈ ±4%).
* **generation time** — base time per (model, device) with a weak,
  non-monotonic length dependence: short prompts pay a "reasoning
  overhead" floor (three of the four models take longer for 50 words than
  for 100/150, as the paper observes), longer outputs follow a shallow
  power law anchored on Table 2's 250-word row.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util.hashing import stable_unit
from repro._util.rng import DeterministicRNG
from repro.devices.profiles import DeviceProfile
from repro.genai import vocab
from repro.genai.embeddings import tokenize_words
from repro.obs import MetricsRegistry, Tracer, get_registry, get_tracer

#: Word count at which a model's ``base_time_s`` is defined (Table 2 row).
REFERENCE_WORDS = 250
#: Exponent of the weak length dependence for outputs beyond 100 words.
LENGTH_EXPONENT = 0.35


@dataclass(frozen=True)
class TextModel:
    """A text-to-text model profile.

    ``base_time_s`` is the workstation generation time at 250 words
    (Table 2 anchors DeepSeek-R1 8B at 13.0 s); other devices scale by
    their ``text_speed_factor``. ``drift`` is the fraction of generated
    sentences that are generic filler; ``length_error_scale`` is the
    standard deviation of the word-count overshoot.
    """

    name: str
    base_time_s: float
    drift: float
    length_error_scale: float
    #: Reasoning models burn a thinking budget even for tiny outputs.
    reasoning: bool = True

    def length_factor(self, words: int) -> float:
        """Relative time vs. the 250-word reference — weak & non-monotonic."""
        if words <= 0:
            raise ValueError("word target must be positive")
        if words <= 100:
            # Thinking-dominated regime: a deterministic per-(model, words)
            # floor in [0.85, 1.10] of the reference time.
            return 0.85 + 0.25 * stable_unit(self.name, "short-think", words)
        wobble = 1.0 + 0.08 * (stable_unit(self.name, "len-jitter", words) - 0.5)
        return (words / REFERENCE_WORDS) ** LENGTH_EXPONENT * wobble

    def generation_time_s(self, device: DeviceProfile, words: int) -> float:
        """Simulated seconds to expand to ``words`` words on ``device``."""
        return self.base_time_s * device.text_speed_factor * self.length_factor(words)

    def length_error(self, prompt: str, words: int) -> float:
        """Signed relative word-count error for this request, clipped ±20%."""
        rng = DeterministicRNG("length-error", self.name, prompt, words)
        error = rng.gauss(0.0, self.length_error_scale)
        return max(-0.20, min(0.20, error))


@dataclass
class TextResult:
    """Output of a simulated text expansion."""

    text: str
    prompt: str
    model: str
    device: str
    requested_words: int
    actual_words: int
    sim_time_s: float
    energy_wh: float

    @property
    def overshoot(self) -> float:
        """Signed relative deviation from the requested word count."""
        if self.requested_words == 0:
            return 0.0
        return (self.actual_words - self.requested_words) / self.requested_words


def _sentence(rng: DeterministicRNG, content_words: list[str], topic: str) -> str:
    """Compose one on-topic sentence reusing source content words."""
    bank = vocab.topic_words(topic)
    opener = rng.choice(vocab.SENTENCE_OPENERS)
    adjective = rng.choice(vocab.ADJECTIVES)
    verb = rng.choice(vocab.VERBS)
    subject = rng.choice(content_words) if content_words else rng.choice(bank)
    complement = rng.choice(content_words) if content_words else rng.choice(bank)
    tail = rng.choice(content_words) if content_words and rng.random() < 0.5 else rng.choice(bank)
    parts = [opener, adjective, subject, verb, "the", complement, "and", "the", tail]
    if rng.random() < 0.5:
        parts += [rng.choice(vocab.CONNECTIVES).split()[0], "the", rng.choice(content_words or bank)]
    sentence = " ".join(parts)
    return sentence[0].upper() + sentence[1:] + "."


def _filler_sentence(rng: DeterministicRNG) -> str:
    filler = rng.choice(vocab.GENERIC_FILLER)
    return filler[0].upper() + filler[1:] + "."


def expand_text(
    model: TextModel,
    device: DeviceProfile,
    prompt: str,
    target_words: int,
    topic: str = "technology",
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
) -> TextResult:
    """Expand bullet-point ``prompt`` text into a ~``target_words`` passage."""
    if target_words <= 0:
        raise ValueError("target word count must be positive")
    registry = registry if registry is not None else get_registry()
    tracer = tracer if tracer is not None else get_tracer()
    content_words = [w for w in tokenize_words(prompt) if len(w) > 3]
    rng = DeterministicRNG("text-expand", model.name, prompt, target_words)

    error = model.length_error(prompt, target_words)
    goal = max(8, round(target_words * (1.0 + error)))

    with tracer.span("genai.text", model=model.name, words=target_words) as gen_span:
        sentences: list[str] = []
        word_count = 0
        while word_count < goal:
            if rng.random() < model.drift:
                sentence = _filler_sentence(rng)
            else:
                sentence = _sentence(rng, content_words, topic)
            room = goal - word_count
            words = sentence.split()
            if len(words) > room and sentences:
                # Trim the final sentence to land on the (erroneous) goal.
                words = words[:room]
                sentence = " ".join(words).rstrip(".,") + "."
            sentences.append(sentence)
            word_count += len(words)

        text = " ".join(sentences)
        seconds = model.generation_time_s(device, target_words)
        energy = device.text_energy_wh(seconds)
        gen_span.annotate(sim_s=round(seconds, 6))
    if registry.enabled:
        registry.counter(
            "genai_generations_total",
            "Simulated generations, by modality and model",
            layer="genai",
            operation="text",
            model=model.name,
        ).inc()
        registry.counter(
            "genai_words_total",
            "Words produced by text expansion",
            layer="genai",
            operation="text",
            model=model.name,
        ).inc(len(text.split()))
        registry.histogram(
            "genai_generation_seconds",
            "Simulated generation duration",
            layer="genai",
            operation="text",
            model=model.name,
        ).observe(seconds, trace_id=tracer.current_trace_id())
        registry.counter(
            "genai_energy_wh_total",
            "Simulated generation energy",
            layer="genai",
            operation="text",
            model=model.name,
        ).inc(energy)
    return TextResult(
        text=text,
        prompt=prompt,
        model=model.name,
        device=device.name,
        requested_words=target_words,
        actual_words=len(text.split()),
        sim_time_s=seconds,
        energy_wh=energy,
    )
