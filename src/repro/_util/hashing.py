"""Stable, process-independent hashing.

Python's built-in ``hash`` is salted per process (PYTHONHASHSEED), which
would make the simulated models nondeterministic across runs. All seed
material therefore flows through SHA-256.
"""

from __future__ import annotations

import hashlib


def stable_hash(*parts: object) -> bytes:
    """Return a 32-byte digest of the given parts.

    Parts are converted to ``str`` and joined with an unambiguous separator;
    ``bytes`` parts are hashed raw. The same inputs always produce the same
    digest on every platform and in every process.
    """
    h = hashlib.sha256()
    for part in parts:
        if isinstance(part, bytes):
            h.update(b"\x00B")
            h.update(part)
        else:
            h.update(b"\x00S")
            h.update(str(part).encode("utf-8", errors="surrogatepass"))
    return h.digest()


def stable_u64(*parts: object) -> int:
    """Return a stable unsigned 64-bit integer derived from the parts."""
    return int.from_bytes(stable_hash(*parts)[:8], "big")


def stable_unit(*parts: object) -> float:
    """Return a stable float uniformly distributed in [0, 1)."""
    return stable_u64(*parts) / 2**64
