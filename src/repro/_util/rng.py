"""A small deterministic pseudo-random generator.

Wraps a counter-mode SHA-256 stream so that simulated noise (diffusion
residuals, arena preferences, timing jitter) is reproducible from a string
seed and independent of global random state.
"""

from __future__ import annotations

import math

from repro._util.hashing import stable_hash


class DeterministicRNG:
    """Counter-mode deterministic random stream seeded by arbitrary parts."""

    def __init__(self, *seed_parts: object) -> None:
        self._seed = stable_hash(*seed_parts)
        self._counter = 0
        self._spare_gauss: float | None = None

    def _next_block(self) -> bytes:
        block = stable_hash(self._seed, self._counter)
        self._counter += 1
        return block

    def u64(self) -> int:
        """Next unsigned 64-bit integer."""
        return int.from_bytes(self._next_block()[:8], "big")

    def random(self) -> float:
        """Next float in [0, 1)."""
        return self.u64() / 2**64

    def uniform(self, low: float, high: float) -> float:
        """Next float in [low, high)."""
        return low + (high - low) * self.random()

    def randint(self, low: int, high: int) -> int:
        """Next integer in [low, high] inclusive."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        return low + self.u64() % span

    def gauss(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        """Next normal variate via the Box-Muller transform."""
        if self._spare_gauss is not None:
            z = self._spare_gauss
            self._spare_gauss = None
            return mu + sigma * z
        # Avoid log(0) by nudging u1 away from zero.
        u1 = max(self.random(), 1e-12)
        u2 = self.random()
        r = math.sqrt(-2.0 * math.log(u1))
        self._spare_gauss = r * math.sin(2.0 * math.pi * u2)
        return mu + sigma * r * math.cos(2.0 * math.pi * u2)

    def choice(self, seq):
        """Pick one element of a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.u64() % len(seq)]

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.u64() % (i + 1)
            items[i], items[j] = items[j], items[i]

    def sample(self, seq, k: int) -> list:
        """Return k distinct elements (order deterministic)."""
        if k > len(seq):
            raise ValueError(f"sample size {k} exceeds population {len(seq)}")
        pool = list(seq)
        self.shuffle(pool)
        return pool[:k]

    def bytes(self, n: int) -> bytes:
        """Return n pseudo-random bytes."""
        out = bytearray()
        while len(out) < n:
            out.extend(self._next_block())
        return bytes(out[:n])
