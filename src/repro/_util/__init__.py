"""Shared low-level utilities: stable hashing, deterministic RNG, bit I/O.

Everything in the simulation must be deterministic: pixels, prose, timing
jitter and arena outcomes are all derived from stable hashes rather than
process-level randomness, so every test and benchmark reproduces bit-for-bit.
"""

from repro._util.hashing import stable_hash, stable_u64, stable_unit
from repro._util.rng import DeterministicRNG
from repro._util.bitio import BitReader, BitWriter

__all__ = [
    "stable_hash",
    "stable_u64",
    "stable_unit",
    "DeterministicRNG",
    "BitReader",
    "BitWriter",
]
