"""Bit-level I/O used by the HPACK Huffman codec (RFC 7541 §5.2)."""

from __future__ import annotations


class BitWriter:
    """Accumulates big-endian bit strings into bytes.

    HPACK Huffman output is padded to a byte boundary with the
    most-significant bits of the EOS symbol (all ones).
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._bit_count = 0  # bits used in the trailing partial byte

    def write(self, code: int, length: int) -> None:
        """Append ``length`` bits of ``code`` (MSB first)."""
        if length < 0 or (length and code >> length):
            raise ValueError(f"code {code:#x} does not fit in {length} bits")
        for shift in range(length - 1, -1, -1):
            bit = (code >> shift) & 1
            if self._bit_count == 0:
                self._buffer.append(0)
            self._buffer[-1] |= bit << (7 - self._bit_count)
            self._bit_count = (self._bit_count + 1) % 8

    def getvalue(self, pad_with_ones: bool = True) -> bytes:
        """Return the written bytes, padding any partial byte."""
        if self._bit_count and pad_with_ones:
            pad_bits = 8 - self._bit_count
            self._buffer[-1] |= (1 << pad_bits) - 1
            self._bit_count = 0
        return bytes(self._buffer)

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far (before padding)."""
        full = len(self._buffer) * 8
        if self._bit_count:
            full -= 8 - self._bit_count
        return full


class BitReader:
    """Reads a byte string bit by bit (MSB first)."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0  # absolute bit offset

    @property
    def remaining_bits(self) -> int:
        return len(self._data) * 8 - self._position

    def read_bit(self) -> int:
        """Return the next bit; raises EOFError at the end of input."""
        if self._position >= len(self._data) * 8:
            raise EOFError("bit stream exhausted")
        byte = self._data[self._position // 8]
        bit = (byte >> (7 - self._position % 8)) & 1
        self._position += 1
        return bit
