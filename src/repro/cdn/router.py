"""Region→edge request routing for the geo-distributed fleet.

Every simulated user belongs to a region (see
:class:`~repro.workloads.traffic.RegionSpec`); their fetches go to the
region's *home edge*. Homing rides the same consistent-hash machinery as
key placement — regions hash onto the ring of edges — so growing the
fleet re-homes only ~``1/(N+1)`` of the regions instead of reshuffling
the planet, and the router and the fleet agree on the mapping without a
control plane.

The router is also where the topology's propagation delays live: the
user↔edge hop comes from the region spec (metro vs. intercontinental),
while the edge↔edge peering hop, the edge↔shield hop and the
shield↔origin hop are fleet-wide constants. These are one-way RTT-style
costs; bandwidth-induced transfer time is intentionally out of scope
(the fleet model prices generation and queueing, not link capacity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cdn.placement import HashRing
from repro.workloads.traffic import RegionSpec


@dataclass(frozen=True)
class LatencyModel:
    """Fleet-wide propagation delays, seconds (round-trip per hop)."""

    #: Edge↔edge peering hop (probe + transfer of a cached artifact).
    peer_rtt_s: float = 0.012
    #: Edge↔origin-shield hop.
    shield_rtt_s: float = 0.020
    #: Shield↔origin hop (the long haul the shield exists to amortise).
    origin_rtt_s: float = 0.080


@dataclass
class FleetRouter:
    """Maps regions to home edges over the fleet's hash ring."""

    regions: Sequence[RegionSpec]
    ring: HashRing
    latency: LatencyModel = field(default_factory=LatencyModel)

    def __post_init__(self) -> None:
        if not self.regions:
            raise ValueError("router needs at least one region")
        if not len(self.ring):
            raise LookupError("router needs a non-empty edge ring")
        self._by_name = {spec.name: spec for spec in self.regions}
        #: Region name → home edge, frozen at construction so one run's
        #: routing is stable even if the caller later mutates the ring.
        self._home = {
            spec.name: self.ring.owner(f"region:{spec.name}") for spec in self.regions
        }

    def region(self, name: str) -> RegionSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown region {name!r}") from None

    def home_edge(self, region: str) -> str:
        """The edge serving ``region``'s users."""
        try:
            return self._home[region]
        except KeyError:
            raise KeyError(f"unknown region {region!r}") from None

    def user_rtt_s(self, region: str) -> float:
        return self.region(region).user_rtt_s

    def homes(self) -> dict[str, list[str]]:
        """Edge → regions homed there (for topology dumps and tests)."""
        out: dict[str, list[str]] = {edge: [] for edge in self.ring.nodes}
        for region, edge in sorted(self._home.items()):
            out[edge].append(region)
        return out
