"""The SWW edge node (paper §2.2).

Two operating modes for the same catalog of media objects:

* **blob mode** (traditional CDN): the edge caches materialised media;
  misses fetch the full object from the origin.
* **prompt mode** (SWW CDN): the edge caches prompts; misses fetch only
  the prompt from the origin, and every user request pays an on-edge
  generation (time + energy) before the materialised media is sent to the
  user. "This approach maintains the storage benefits, but loses data
  transmission benefits" — user-side egress is media-sized either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.devices.energy import transmission_energy_wh
from repro.devices.profiles import DeviceProfile, WORKSTATION
from repro.genai.image import generate_image
from repro.genai.registry import DEFAULT_IMAGE_MODEL, ImageModel
from repro.cdn.cache import CacheEntry, EdgeCache
from repro.metrics.compression import prompt_metadata_size
from repro.obs import (
    MetricsRegistry,
    TraceContext,
    Tracer,
    encode_traceparent,
    get_event_log,
    get_registry,
    get_tracer,
    parse_traceparent,
)


@dataclass(frozen=True)
class CatalogItem:
    """One media object at the origin."""

    key: str
    prompt: str
    width: int
    height: int
    media_bytes: int

    def prompt_bytes(self) -> int:
        return prompt_metadata_size(
            {"prompt": self.prompt, "name": self.key, "width": self.width, "height": self.height}
        )


@dataclass
class OriginCatalog:
    """The content provider's object catalog.

    The origin is its own process in the CDN scenario; give it a
    ``tracer`` and edge cache misses show up as ``origin.fetch`` remote
    children of the edge's span (via the re-injected ``traceparent``).
    """

    items: dict[str, CatalogItem] = field(default_factory=dict)
    tracer: Tracer | None = None

    def add(self, item: CatalogItem) -> None:
        self.items[item.key] = item

    def get(self, key: str) -> CatalogItem:
        try:
            return self.items[key]
        except KeyError:
            raise KeyError(f"no catalog item {key!r}") from None

    def fetch(self, key: str, traceparent: bytes | str | None = None) -> CatalogItem:
        """One edge→origin pull, joining the propagated trace if any."""
        tracer = self.tracer if self.tracer is not None else get_tracer()
        ctx = parse_traceparent(traceparent)
        with tracer.span("origin.fetch", remote=ctx, key=key):
            return self.get(key)

    def total_media_bytes(self) -> int:
        return sum(item.media_bytes for item in self.items.values())

    def total_prompt_bytes(self) -> int:
        return sum(item.prompt_bytes() for item in self.items.values())


@dataclass
class EdgeServeResult:
    """Cost breakdown of serving one user request from the edge."""

    key: str
    cache_hit: bool
    #: Bytes pulled from the origin over the backbone (miss cost).
    backbone_bytes: int
    #: Bytes sent to the requesting user.
    egress_bytes: int
    #: On-edge generation cost (prompt mode only).
    generation_time_s: float = 0.0
    generation_energy_wh: float = 0.0
    #: True when prompt-mode generation was answered by the shared
    #: content-addressed generation cache (lookup cost, not step cost).
    gencache_hit: bool = False

    @property
    def transmission_energy_wh(self) -> float:
        return transmission_energy_wh(self.backbone_bytes + self.egress_bytes)

    @property
    def total_energy_wh(self) -> float:
        return self.transmission_energy_wh + self.generation_energy_wh


class EdgeNode:
    """An edge server in blob or prompt mode."""

    def __init__(
        self,
        origin: OriginCatalog,
        cache_capacity_bytes: int,
        mode: str = "blob",
        device: DeviceProfile = WORKSTATION,
        model: ImageModel = DEFAULT_IMAGE_MODEL,
        steps: int = 15,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        gencache=None,
        engine=None,
        events=None,
    ) -> None:
        if mode not in ("blob", "prompt"):
            raise ValueError(f"mode must be 'blob' or 'prompt', got {mode!r}")
        self.origin = origin
        self.cache = EdgeCache(cache_capacity_bytes)
        self.mode = mode
        #: Optional :class:`~repro.batching.BatchingEngine`: prompt-mode
        #: materialisations from concurrent user requests are admitted to
        #: its micro-batching window instead of generating solo.
        self.engine = engine
        #: Optional :class:`~repro.gencache.GenerationCache`: prompt-mode
        #: edges memoise materialised media under the same
        #: content-addressed keys the client/server layers use, restoring
        #: the "generate once, serve many" economics §2.2 gives up.
        self.gencache = gencache
        self.device = device
        self.model = model
        self.steps = steps
        #: Observability sinks (no-ops unless injected or configured).
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer if tracer is not None else get_tracer()
        #: Wide-event log: one cdn.serve event per user request.
        self.events = events if events is not None else get_event_log()
        self.results: list[EdgeServeResult] = []

    def serve(self, key: str, traceparent: bytes | str | TraceContext | None = None) -> EdgeServeResult:
        """Serve one user request for ``key``.

        ``traceparent`` is the requesting client's propagated trace
        context (raw header bytes/str, an already-parsed
        :class:`~repro.obs.TraceContext`, or None): the edge's span joins
        that trace as a remote child, and cache misses re-inject the
        edge's own context on the edge→origin hop so the whole
        client→edge→origin chain stitches into one trace.
        """
        ctx = traceparent if isinstance(traceparent, (TraceContext, type(None))) else parse_traceparent(traceparent)
        record = self.events.begin("cdn.serve", cache_key=key, serve_mode=self.mode)
        try:
            with self.tracer.span("cdn.serve", remote=ctx, key=key, mode=self.mode) as edge_span:
                if edge_span.trace_id:
                    record.set(trace_id=edge_span.trace_id)
                cached = self.cache.get(key)
                hit = cached is not None
                item = self.origin.get(key) if hit else self._origin_pull(key, edge_span)
                edge_span.annotate(hit=hit)
                if self.mode == "blob":
                    backbone = 0 if hit else item.media_bytes
                    if not hit:
                        self.cache.put(CacheEntry(key, item.media_bytes, kind="blob"))
                    result = EdgeServeResult(
                        key=key, cache_hit=hit, backbone_bytes=backbone, egress_bytes=item.media_bytes
                    )
                else:
                    backbone = 0 if hit else item.prompt_bytes()
                    if not hit:
                        self.cache.put(CacheEntry(key, item.prompt_bytes(), kind="prompt"))
                    # Every request regenerates at the edge (the paper's model)
                    # unless a generation cache memoised the materialised media
                    # under its content-addressed key.
                    with record.bind():
                        gen_time, gen_energy, gencache_hit = self._generate(item, edge_span)
                    result = EdgeServeResult(
                        key=key,
                        cache_hit=hit,
                        backbone_bytes=backbone,
                        egress_bytes=item.media_bytes,
                        generation_time_s=gen_time,
                        generation_energy_wh=gen_energy,
                        gencache_hit=gencache_hit,
                    )
        except Exception as exc:
            record.finish(status=404 if isinstance(exc, KeyError) else 500, error=type(exc).__name__)
            raise
        record.set(
            cache_hit=hit,
            backbone_bytes=result.backbone_bytes,
            egress_bytes=result.egress_bytes,
            sim_time_s=result.generation_time_s,
            energy_wh=result.total_energy_wh,
            device=self.device.name,
            model=self.model.name,
        )
        if result.gencache_hit:
            record.set(gencache_outcome="hit", gencache_hits=1)
        record.finish(status=200)
        if self.registry.enabled:
            trace_id = edge_span.trace_id if edge_span.sampled else None
            self._count(result, trace_id or None)
        self.results.append(result)
        return result

    def _generate(self, item: CatalogItem, edge_span) -> tuple[float, float, bool]:
        """Materialise one prompt-mode item, via the gencache when attached.

        Returns ``(sim_time_s, energy_wh, gencache_hit)``. Cache entries
        are accounted at the catalog's modelled media size
        (``item.media_bytes``) but carry the real PNG payload, so a cache
        shared with the client/server layers is never poisoned.
        """
        if self.gencache is None:
            generation = self._materialise(item)
            return generation.sim_time_s, generation.energy_wh, False
        from repro.gencache import image_key

        gkey = image_key(self.model.name, item.prompt, item.width, item.height, steps=self.steps)
        record = self.gencache.lookup(gkey)
        if record is not None:
            edge_span.annotate(gencache="hit")
            return self.gencache.hit_time_s, 0.0, True
        edge_span.annotate(gencache="miss")
        generation = self._materialise(item, gkey)
        self.gencache.insert(
            gkey,
            payload=generation.png_bytes(),
            sim_time_s=generation.sim_time_s,
            energy_wh=generation.energy_wh,
            size_bytes=item.media_bytes,
        )
        return generation.sim_time_s, generation.energy_wh, False

    def _materialise(self, item: CatalogItem, gkey=None):
        """Run one on-edge generation, micro-batched when an engine is set."""
        if self.engine is not None:
            return self.engine.generate_image(
                self.model, item.prompt, item.width, item.height, self.steps, key=gkey
            )
        return generate_image(
            self.model,
            self.device,
            item.prompt,
            item.width,
            item.height,
            self.steps,
            registry=self.registry,
            tracer=self.tracer,
        )

    def _origin_pull(self, key: str, edge_span) -> CatalogItem:
        """The edge→origin hop on a cache miss, trace context re-injected.

        The hop carries an RFC 9218 priority matching its payload class:
        a prompt-mode pull is a tiny metadata fetch (agent class, urgency
        0 — it must never queue behind media on a shared backbone
        connection), a blob-mode pull is bulk media (below-the-fold class,
        urgency 5, incremental).
        """
        from repro.sww.priorities import AGENT, BELOW_FOLD

        priority = AGENT if self.mode == "prompt" else BELOW_FOLD
        edge_span.annotate(pull_urgency=priority.urgency)
        if self.registry.enabled:
            self.registry.counter(
                "cdn_origin_pulls_total",
                "Origin pulls by the RFC 9218 urgency they are fetched at",
                layer="cdn",
                operation=f"u{priority.urgency}",
            ).inc()
        header = encode_traceparent(edge_span.context) if edge_span.trace_id else None
        return self.origin.fetch(key, traceparent=header)

    def _count(self, result: EdgeServeResult, trace_id: str | None = None) -> None:
        """Cache/byte/energy accounting for one served request."""
        self.registry.counter(
            "cdn_requests_total",
            "Edge requests, by cache outcome",
            layer="cdn",
            operation="hit" if result.cache_hit else "miss",
        ).inc()
        self.registry.counter(
            "cdn_bytes_total",
            "Bytes moved by the edge, backbone (origin pull) vs egress (to user)",
            layer="cdn",
            operation="backbone",
        ).inc(result.backbone_bytes)
        self.registry.counter(
            "cdn_bytes_total",
            "Bytes moved by the edge, backbone (origin pull) vs egress (to user)",
            layer="cdn",
            operation="egress",
        ).inc(result.egress_bytes)
        if result.generation_energy_wh:
            self.registry.counter(
                "cdn_generation_energy_wh_total",
                "On-edge generation energy (prompt mode)",
                layer="cdn",
                operation=self.mode,
            ).inc(result.generation_energy_wh)
            self.registry.histogram(
                "cdn_generation_seconds",
                "On-edge generation time per request (prompt mode)",
                layer="cdn",
                operation=self.mode,
            ).observe(result.generation_time_s, trace_id=trace_id)

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #

    @property
    def backbone_bytes_total(self) -> int:
        return sum(r.backbone_bytes for r in self.results)

    @property
    def egress_bytes_total(self) -> int:
        return sum(r.egress_bytes for r in self.results)

    @property
    def generation_energy_total_wh(self) -> float:
        return sum(r.generation_energy_wh for r in self.results)

    @property
    def storage_used_bytes(self) -> int:
        return self.cache.used_bytes
