"""Cache placement under backbone constraints (paper §7, Sustainability).

    "traffic reduction on the network provides more flexibility in cache
    placement, without breaching backbone traffic constraints. While the
    main limitation to cache location was often the latency to the user,
    in SWW the network latency is a minor problem."

Two placement layers live here:

* **Site planning** (:func:`plan_placement`): candidate cache sites sit
  at different depths of the network; deeper (closer-to-user) sites give
  lower latency but filling them consumes backbone capacity proportional
  to the catalog size shipped. A greedy planner picks the deepest
  feasible site per region; with prompt-sized catalogs, far more regions
  fit deep placements within the same backbone budget — the quantitative
  form of the paper's flexibility claim.
* **Key placement** (:class:`HashRing`): once a fleet of edges exists,
  each :class:`~repro.gencache.key.GenerationKey` digest needs a stable
  owner so cross-edge peering knows where a generated artifact lives.
  The ring hashes virtual nodes onto a circle (many points per edge so
  arcs even out) and assigns each key to the first point clockwise.
  Adding an edge to an ``N``-edge ring therefore moves only ~``1/(N+1)``
  of the keys — the property the fleet benchmark gates at ``≤ 2/N``.
  The bounded-load variant (Mirrokni et al.'s consistent hashing with
  bounded loads) walks past owners that are already at capacity, so one
  viral key cannot pin a whole region's generation demand to one edge.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro._util.hashing import stable_u64


@dataclass(frozen=True)
class CandidateSite:
    """A place a cache replica could go."""

    name: str
    region: str
    #: One-way user latency when served from this site, ms.
    user_latency_ms: float
    #: Backbone bytes consumed per byte of catalog placed here (deeper
    #: sites traverse more of the backbone to fill).
    fill_cost_factor: float


@dataclass
class PlacementProblem:
    """Inputs to the planner."""

    sites: list[CandidateSite]
    catalog_bytes: int
    #: Total backbone budget for replica fills, bytes.
    backbone_budget_bytes: int

    def regions(self) -> list[str]:
        seen: list[str] = []
        for site in self.sites:
            if site.region not in seen:
                seen.append(site.region)
        return seen


@dataclass
class PlacementResult:
    """Chosen site per region plus aggregate metrics."""

    chosen: dict[str, CandidateSite]
    backbone_bytes_used: int
    regions_unserved: list[str]

    @property
    def mean_latency_ms(self) -> float:
        if not self.chosen:
            return float("inf")
        return sum(site.user_latency_ms for site in self.chosen.values()) / len(self.chosen)

    @property
    def coverage(self) -> float:
        total = len(self.chosen) + len(self.regions_unserved)
        return len(self.chosen) / total if total else 0.0


def plan_placement(problem: PlacementProblem) -> PlacementResult:
    """Coverage-first placement, then deep upgrades, within the budget.

    Pass 1 gives every region its cheapest-fill site (typically a core
    site), so no budget is burned on depth while regions go unserved.
    Pass 2 spends the remaining budget upgrading regions to their
    lowest-latency affordable site, ordered by how much latency the
    upgrade buys (largest gap first).
    """
    if problem.catalog_bytes < 0 or problem.backbone_budget_bytes < 0:
        raise ValueError("sizes cannot be negative")
    by_region: dict[str, list[CandidateSite]] = {}
    for site in problem.sites:
        by_region.setdefault(site.region, []).append(site)
    for sites in by_region.values():
        sites.sort(key=lambda s: s.user_latency_ms)  # best (deepest) first

    def fill_cost(site: CandidateSite) -> int:
        return int(problem.catalog_bytes * site.fill_cost_factor)

    chosen: dict[str, CandidateSite] = {}
    unserved: list[str] = []
    budget = problem.backbone_budget_bytes

    # Pass 1: cover every region as cheaply as possible.
    for region, sites in by_region.items():
        cheapest = min(sites, key=fill_cost)
        if fill_cost(cheapest) <= budget:
            chosen[region] = cheapest
            budget -= fill_cost(cheapest)
        else:
            unserved.append(region)

    # Pass 2: upgrade toward low latency, biggest win first.
    def upgrade_gain(region: str) -> float:
        return chosen[region].user_latency_ms - by_region[region][0].user_latency_ms

    for region in sorted(chosen, key=upgrade_gain, reverse=True):
        current = chosen[region]
        for site in by_region[region]:
            if site.user_latency_ms >= current.user_latency_ms:
                break
            extra = fill_cost(site) - fill_cost(current)
            if extra <= budget:
                chosen[region] = site
                budget -= extra
                break

    used = problem.backbone_budget_bytes - budget
    return PlacementResult(chosen=chosen, backbone_bytes_used=used, regions_unserved=unserved)


#: Virtual nodes per physical edge. More points → more even arcs →
#: lower variance in both load split and rebalancing churn.
DEFAULT_VNODES = 128


class HashRing:
    """Consistent-hash ring with virtual nodes and a bounded-load walk.

    Nodes are plain strings (edge names). Every node contributes
    ``vnodes`` points to the circle, each at
    ``stable_u64("ring-point", node, i)`` — process-independent, so the
    same fleet always produces the same placement (the property that
    lets a router and a cache agree without talking). Keys map to the
    first point clockwise from ``stable_u64("ring-key", key)``.
    """

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        #: Sorted (point, node) pairs — the circle.
        self._points: list[tuple[int, str]] = []
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for i in range(self.vnodes):
            insort(self._points, (stable_u64("ring-point", node, i), node))

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise KeyError(f"node {node!r} not on the ring")
        self._nodes.discard(node)
        self._points = [(p, n) for p, n in self._points if n != node]

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def owner(self, key: str) -> str:
        """The node owning ``key``: first ring point clockwise."""
        return self.preference(key, 1)[0]

    def preference(self, key: str, k: int) -> list[str]:
        """The first ``k`` *distinct* nodes clockwise from ``key``.

        ``preference(key, 1)[0]`` is the owner; subsequent entries are the
        natural spill/replica targets (each key gets its own, roughly
        uniform, backup order — unlike a static "next edge" rule that
        would double the successor's load).
        """
        if not self._points:
            raise LookupError("hash ring is empty")
        k = min(k, len(self._nodes))
        # (h,) sorts before any (h, node) pair, so this lands on the first
        # ring point at or clockwise-after the key's position.
        start = bisect_right(self._points, (stable_u64("ring-key", key),))
        seen: list[str] = []
        for i in range(len(self._points)):
            node = self._points[(start + i) % len(self._points)][1]
            if node not in seen:
                seen.append(node)
                if len(seen) == k:
                    break
        return seen

    def owner_bounded(
        self, key: str, load: Mapping[str, float], capacity: float
    ) -> str:
        """Bounded-load owner: first node on ``key``'s preference walk
        whose current ``load`` is below ``capacity``.

        Falls back to the least-loaded node on the walk when every node
        is at or over capacity (the work has to land somewhere); ties
        break toward ring order, so the choice is deterministic.
        """
        walk = self.preference(key, len(self._nodes))
        for node in walk:
            if load.get(node, 0.0) < capacity:
                return node
        return min(walk, key=lambda node: load.get(node, 0.0))

    def assign_bounded(
        self,
        keys: Sequence[str],
        load_factor: float = 1.25,
        weight: Callable[[str], float] | None = None,
    ) -> dict[str, str]:
        """Place ``keys`` with the bounded-load guarantee.

        No node ends up with more than ``load_factor`` times its fair
        share of the total weight (``len(keys)`` when ``weight`` is
        None), the classic c-bound. Assignment order is the caller's key
        order, so the result is deterministic.
        """
        if load_factor <= 1.0:
            raise ValueError("load_factor must exceed 1.0")
        if not self._nodes:
            raise LookupError("hash ring is empty")
        total = sum(weight(k) for k in keys) if weight else float(len(keys))
        capacity = load_factor * total / len(self._nodes)
        load: dict[str, float] = {}
        placed: dict[str, str] = {}
        for key in keys:
            node = self.owner_bounded(key, load, capacity)
            placed[key] = node
            load[node] = load.get(node, 0.0) + (weight(key) if weight else 1.0)
        return placed


def moved_share(before: HashRing, after: HashRing, keys: Sequence[str]) -> float:
    """Fraction of ``keys`` whose owner differs between two rings.

    The consistent-hashing contract: growing an ``N``-node ring by one
    should move ~``1/(N+1)`` of the keys; anything near ``2/N`` means the
    ring is misbehaving (the fleet benchmark's rebalancing gate).
    """
    if not keys:
        return 0.0
    return sum(1 for key in keys if before.owner(key) != after.owner(key)) / len(keys)
