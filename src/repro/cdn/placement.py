"""Cache placement under backbone constraints (paper §7, Sustainability).

    "traffic reduction on the network provides more flexibility in cache
    placement, without breaching backbone traffic constraints. While the
    main limitation to cache location was often the latency to the user,
    in SWW the network latency is a minor problem."

The model: candidate cache sites sit at different depths of the network;
deeper (closer-to-user) sites give lower latency but filling them consumes
backbone capacity proportional to the catalog size shipped. A greedy
planner picks the deepest feasible site per region; with prompt-sized
catalogs, far more regions fit deep placements within the same backbone
budget — the quantitative form of the paper's flexibility claim.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CandidateSite:
    """A place a cache replica could go."""

    name: str
    region: str
    #: One-way user latency when served from this site, ms.
    user_latency_ms: float
    #: Backbone bytes consumed per byte of catalog placed here (deeper
    #: sites traverse more of the backbone to fill).
    fill_cost_factor: float


@dataclass
class PlacementProblem:
    """Inputs to the planner."""

    sites: list[CandidateSite]
    catalog_bytes: int
    #: Total backbone budget for replica fills, bytes.
    backbone_budget_bytes: int

    def regions(self) -> list[str]:
        seen: list[str] = []
        for site in self.sites:
            if site.region not in seen:
                seen.append(site.region)
        return seen


@dataclass
class PlacementResult:
    """Chosen site per region plus aggregate metrics."""

    chosen: dict[str, CandidateSite]
    backbone_bytes_used: int
    regions_unserved: list[str]

    @property
    def mean_latency_ms(self) -> float:
        if not self.chosen:
            return float("inf")
        return sum(site.user_latency_ms for site in self.chosen.values()) / len(self.chosen)

    @property
    def coverage(self) -> float:
        total = len(self.chosen) + len(self.regions_unserved)
        return len(self.chosen) / total if total else 0.0


def plan_placement(problem: PlacementProblem) -> PlacementResult:
    """Coverage-first placement, then deep upgrades, within the budget.

    Pass 1 gives every region its cheapest-fill site (typically a core
    site), so no budget is burned on depth while regions go unserved.
    Pass 2 spends the remaining budget upgrading regions to their
    lowest-latency affordable site, ordered by how much latency the
    upgrade buys (largest gap first).
    """
    if problem.catalog_bytes < 0 or problem.backbone_budget_bytes < 0:
        raise ValueError("sizes cannot be negative")
    by_region: dict[str, list[CandidateSite]] = {}
    for site in problem.sites:
        by_region.setdefault(site.region, []).append(site)
    for sites in by_region.values():
        sites.sort(key=lambda s: s.user_latency_ms)  # best (deepest) first

    def fill_cost(site: CandidateSite) -> int:
        return int(problem.catalog_bytes * site.fill_cost_factor)

    chosen: dict[str, CandidateSite] = {}
    unserved: list[str] = []
    budget = problem.backbone_budget_bytes

    # Pass 1: cover every region as cheaply as possible.
    for region, sites in by_region.items():
        cheapest = min(sites, key=fill_cost)
        if fill_cost(cheapest) <= budget:
            chosen[region] = cheapest
            budget -= fill_cost(cheapest)
        else:
            unserved.append(region)

    # Pass 2: upgrade toward low latency, biggest win first.
    def upgrade_gain(region: str) -> float:
        return chosen[region].user_latency_ms - by_region[region][0].user_latency_ms

    for region in sorted(chosen, key=upgrade_gain, reverse=True):
        current = chosen[region]
        for site in by_region[region]:
            if site.user_latency_ms >= current.user_latency_ms:
                break
            extra = fill_cost(site) - fill_cost(current)
            if extra <= budget:
                chosen[region] = site
                budget -= extra
                break

    used = problem.backbone_budget_bytes - budget
    return PlacementResult(chosen=chosen, backbone_bytes_used=used, regions_unserved=unserved)
