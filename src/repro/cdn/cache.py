"""A byte-accounted LRU edge cache.

Entries are either full media blobs (traditional CDN), prompts (SWW
CDN), or content-addressed generated media (``repro.gencache``); the
cache does not care, it counts bytes. The storage-saving claim of §2.2
falls out of the same capacity holding ~2 orders of magnitude more
prompt entries than blob entries.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class CacheEntry:
    """One cached object."""

    key: str
    size_bytes: int
    #: "blob" (materialised media), "prompt" (SWW metadata), or
    #: "genblob" (content-addressed generated media).
    kind: str = "blob"
    payload: object = None


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Entries refused because they exceed the whole cache capacity.
    rejected: int = 0
    inserted_bytes: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class EdgeCache:
    """LRU cache with a byte capacity."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._used = 0
        self.stats = CacheStats()

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> CacheEntry | None:
        """Look up (and touch) an entry; records hit/miss.

        The recency touch happens exactly once per ``get``; use
        :meth:`peek` for lookups that must not disturb eviction order.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def peek(self, key: str) -> CacheEntry | None:
        """Look up an entry without touching recency or hit/miss stats."""
        return self._entries.get(key)

    def try_put(self, entry: CacheEntry) -> bool:
        """Insert an entry, evicting LRU victims to fit.

        An entry larger than the whole cache is rejected (counted in
        ``stats.rejected``) and returns False, leaving the cache state —
        including any existing entry under the same key and the
        ``used_bytes`` accounting — untouched.
        """
        if entry.size_bytes < 0:
            raise ValueError("negative entry size")
        if entry.size_bytes > self.capacity_bytes:
            self.stats.rejected += 1
            return False
        old = self._entries.pop(entry.key, None)
        if old is not None:
            self._used -= old.size_bytes
        while self._used + entry.size_bytes > self.capacity_bytes:
            _victim_key, victim = self._entries.popitem(last=False)
            self._used -= victim.size_bytes
            self.stats.evictions += 1
        self._entries[entry.key] = entry
        self._used += entry.size_bytes
        self.stats.inserted_bytes += entry.size_bytes
        return True

    def put(self, entry: CacheEntry) -> None:
        """Insert an entry, raising on entries larger than the capacity."""
        if not self.try_put(entry):
            raise ValueError(
                f"entry of {entry.size_bytes} B exceeds cache capacity {self.capacity_bytes} B"
            )

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0

    def lru_keys(self) -> list[str]:
        """Keys from least- to most-recently used (for tests/diagnostics)."""
        return list(self._entries)
