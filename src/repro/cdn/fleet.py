"""The geo-distributed edge fleet (ROADMAP item 2).

The single :class:`~repro.cdn.edge.EdgeNode` prices one edge's trade-offs;
the paper's §7 sustainability argument is about a *planet* of them. This
module simulates that fleet as a discrete-event system driven by the
open-loop request tape from :func:`~repro.workloads.traffic.open_loop_requests`:

* **Consistent-hash placement** — every
  :class:`~repro.gencache.key.GenerationKey` digest has a ring owner
  (:class:`~repro.cdn.placement.HashRing`), the edge whose generation
  cache is the canonical home of that artifact.
* **Home-edge routing** — each user's fetch lands on their region's home
  edge (:class:`~repro.cdn.router.FleetRouter`).
* **Cross-edge gencache peering** — a miss at the home edge probes the
  ring owner before paying generation; a peer hit ships the materialised
  media edge-to-edge (media-sized intra-CDN bytes, far cheaper than the
  steps it avoids).
* **Generation with bounded load** — misses generate at the ring owner,
  unless its backlog exceeds :attr:`FleetConfig.max_backlog_s`, in which
  case the bounded-load walk spills to the next preference node. When
  every candidate is saturated, the fleet falls back to pulling the
  materialised media from the origin — generation capacity, not
  bandwidth, is the scarce resource (PixLift / "Rethinking Image
  Compression" in PAPERS.md), and placement decides who pays it.
* **Origin shield** — all origin traffic funnels through a shield tier
  whose in-flight table collapses concurrent cross-region pulls for the
  same key into one origin transfer, and whose prompt cache absorbs
  repeat prompt fills. (Concurrent *generations* are already collapsed
  fleet-wide by the flight table, so at most one prompt pull per key is
  ever in flight.)

Accounting reuses the PR-8 cache-tier protocol: one outcome per request —
``hit`` (home or peer), ``lead`` (pays generation or an origin pull), or
``coalesced`` (parked on an in-flight generation/pull) — checked
flight-first exactly like :class:`~repro.serving.cachetier.CacheTierServer`,
with every cache probe an uncounted :meth:`~repro.gencache.GenerationCache.peek`.
A peered hit is therefore never double-counted as a home miss plus an
owner hit, and a parked waiter never counts a miss.

Time is simulated: requests must arrive in nondecreasing tape order, and
each edge's generation lanes are busy-until clocks, so queueing delay at
a saturated edge is finally a first-class, measurable quantity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cdn.cache import CacheEntry, EdgeCache
from repro.cdn.edge import CatalogItem, OriginCatalog
from repro.cdn.placement import HashRing
from repro.cdn.router import FleetRouter, LatencyModel
from repro.devices.profiles import DeviceProfile, WORKSTATION
from repro.genai.registry import DEFAULT_IMAGE_MODEL, ImageModel
from repro.gencache import GenerationCache, GenerationKey, image_key
from repro.gencache.store import GenCacheStats, HIT_LOOKUP_TIME_S
from repro.obs import MetricsRegistry, get_registry

#: Request outcomes, in cache-tier vocabulary order. ``edge`` and
#: ``peer`` are hits, ``coalesced`` parked on an in-flight lead, and
#: ``generated`` / ``origin`` are the two ways a lead pays for a miss.
TIERS = ("edge", "peer", "coalesced", "generated", "origin")


@dataclass(frozen=True)
class FleetConfig:
    """Shape of the simulated fleet."""

    edges: int = 4
    #: Generation-cache capacity per edge, bytes. Deliberately much
    #: smaller than catalog × media size: partitioning the keyspace
    #: across the ring is what makes the fleet's aggregate capacity
    #: cover the working set where a single edge thrashes.
    gencache_bytes: int = 32 * 1024 * 1024
    #: Prompt-cache capacity per edge (prompts are ~100× smaller).
    prompt_cache_bytes: int = 1024 * 1024
    #: Concurrent generation lanes per edge.
    gen_lanes: int = 1
    #: Queue backlog at which the bounded-load walk skips an edge; when
    #: every preference node exceeds it, the miss falls back to an
    #: origin media pull instead of queueing without bound.
    max_backlog_s: float = 5.0
    #: Virtual nodes per edge on the placement ring.
    vnodes: int = 128
    device: DeviceProfile = WORKSTATION
    model: ImageModel = DEFAULT_IMAGE_MODEL
    steps: int = 15

    def edge_names(self) -> list[str]:
        return [f"edge-{i:02d}" for i in range(self.edges)]


@dataclass(frozen=True)
class _ItemProfile:
    """Pre-computed per-item costs (the modelled, not-executed generation)."""

    item: CatalogItem
    gkey: GenerationKey
    digest: str
    gen_time_s: float
    gen_energy_wh: float
    prompt_bytes: int


@dataclass
class _Flight:
    """One in-flight lead (a generation at an edge, or an origin pull)."""

    done_s: float
    #: Edge paying the generation, or None for an origin pull.
    edge: str | None
    item: _ItemProfile
    waiters: int = 0


class SimEdge:
    """One edge's caches and generation lanes."""

    def __init__(self, name: str, config: FleetConfig, registry: MetricsRegistry) -> None:
        self.name = name
        self.gencache = GenerationCache(config.gencache_bytes, registry=registry)
        self.prompts = EdgeCache(config.prompt_cache_bytes)
        #: Busy-until clock per generation lane, simulated seconds.
        self.lanes = [0.0] * config.gen_lanes
        self.generations = 0
        self.generation_sim_s = 0.0

    def backlog_s(self, now_s: float) -> float:
        """Wait until the next free lane, from ``now_s``."""
        return max(0.0, min(self.lanes) - now_s)

    def occupy(self, start_s: float, service_s: float) -> float:
        """Claim the earliest-free lane; returns the completion time."""
        lane = self.lanes.index(min(self.lanes))
        done = max(self.lanes[lane], start_s) + service_s
        self.lanes[lane] = done
        return done


@dataclass
class FleetServeResult:
    """One request's outcome and cost breakdown."""

    key: str
    region: str
    home_edge: str
    tier: str
    #: End-to-end user-perceived latency, simulated seconds.
    latency_s: float
    #: Time spent queued behind other generations (generated tier only).
    queue_s: float = 0.0
    gen_time_s: float = 0.0
    gen_energy_wh: float = 0.0
    #: Edge that paid the generation (may differ from home under spill).
    gen_edge: str | None = None
    egress_bytes: int = 0
    peer_bytes: int = 0
    shield_bytes: int = 0
    origin_bytes: int = 0

    @property
    def served_from_fleet(self) -> bool:
        """True when no origin media transfer was needed."""
        return self.tier in ("edge", "peer", "coalesced", "generated")


class EdgeFleet:
    """N simulated edges behind one router, ring, and origin shield."""

    def __init__(
        self,
        catalog: OriginCatalog,
        config: FleetConfig,
        router: FleetRouter,
        ring: HashRing | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if config.edges <= 0:
            raise ValueError("fleet needs at least one edge")
        self.catalog = catalog
        self.config = config
        self.registry = registry if registry is not None else get_registry()
        self.ring = ring if ring is not None else HashRing(config.edge_names(), config.vnodes)
        self.router = router
        self.latency = router.latency
        self.edges: dict[str, SimEdge] = {
            name: SimEdge(name, config, self.registry) for name in self.ring.nodes
        }
        #: digest → in-flight lead; checked before any cache probe.
        self._flights: dict[str, _Flight] = {}
        #: Fleet-wide request ledger in cache-tier accounting terms.
        self.ledger = GenCacheStats()
        self.tier_counts: dict[str, int] = {tier: 0 for tier in TIERS}
        self.origin_media_pulls = 0
        self.origin_prompt_pulls = 0
        self.shield_coalesced = 0
        self.shield_prompt_hits = 0
        self._shield_prompts: set[str] = set()
        self._profiles: dict[str, _ItemProfile] = {}
        self._last_time_s = float("-inf")
        self.results_served = 0

    # ------------------------------------------------------------------ #
    # Item cost model
    # ------------------------------------------------------------------ #

    def profile(self, key: str) -> _ItemProfile:
        """The item's digest and modelled generation cost (memoised)."""
        cached = self._profiles.get(key)
        if cached is not None:
            return cached
        item = self.catalog.get(key)
        gkey = image_key(
            self.config.model.name, item.prompt, item.width, item.height, steps=self.config.steps
        )
        seconds = self.config.steps * self.config.model.step_time(
            self.config.device, item.width, item.height
        )
        prof = _ItemProfile(
            item=item,
            gkey=gkey,
            digest=gkey.digest,
            gen_time_s=seconds,
            gen_energy_wh=self.config.device.image_energy_wh(seconds),
            prompt_bytes=item.prompt_bytes(),
        )
        self._profiles[key] = prof
        return prof

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #

    def serve(self, region: str, key: str, now_s: float) -> FleetServeResult:
        """Serve one open-loop arrival; must be called in tape order."""
        if now_s < self._last_time_s:
            raise ValueError(
                f"arrivals must be nondecreasing (got {now_s} after {self._last_time_s})"
            )
        self._last_time_s = now_s
        home = self.edges[self.router.home_edge(region)]
        user_rtt = self.router.user_rtt_s(region)
        prof = self.profile(key)
        media = prof.item.media_bytes

        # 1. Flight check FIRST (the cache-tier rule): a live lead means
        # the artifact is not ready yet, and this request parks on it —
        # counted coalesced, never a miss, never a premature cache hit.
        flight = self._flights.get(prof.digest)
        if flight is not None:
            if now_s < flight.done_s:
                flight.waiters += 1
                cross_edge = flight.edge != home.name
                result = FleetServeResult(
                    key=key,
                    region=region,
                    home_edge=home.name,
                    tier="coalesced",
                    latency_s=(flight.done_s - now_s)
                    + user_rtt
                    + (self.latency.peer_rtt_s if cross_edge else 0.0)
                    + HIT_LOOKUP_TIME_S,
                    egress_bytes=media,
                    peer_bytes=media if cross_edge else 0,
                )
                if flight.edge is None:
                    # Joined an origin pull the shield is collapsing.
                    self.shield_coalesced += 1
                    self.ledger.coalesced += 1
                else:
                    self.ledger.coalesced += 1
                    saved = max(0.0, prof.gen_time_s - HIT_LOOKUP_TIME_S)
                    self.ledger.saved_sim_seconds += saved
                    self.ledger.saved_energy_wh += prof.gen_energy_wh
                return self._finish(result)
            # The lead published before this arrival: the flight is over
            # and its artifact is in cache; fall through to the probes.
            del self._flights[prof.digest]

        # 2. Home-edge probe (uncounted peek; the ledger is the counter).
        if home.gencache.peek(prof.gkey, touch=True) is not None:
            self._record_hit(prof)
            return self._finish(
                FleetServeResult(
                    key=key,
                    region=region,
                    home_edge=home.name,
                    tier="edge",
                    latency_s=user_rtt + HIT_LOOKUP_TIME_S,
                    egress_bytes=media,
                )
            )

        # 3. Ring-owner probe: cross-edge peering before paying anything.
        owner = self.edges[self.ring.owner(prof.digest)]
        if owner.name != home.name and owner.gencache.peek(prof.gkey, touch=True) is not None:
            self._record_hit(prof)
            self._insert(home, prof)  # pull-through replica at the home edge
            return self._finish(
                FleetServeResult(
                    key=key,
                    region=region,
                    home_edge=home.name,
                    tier="peer",
                    latency_s=user_rtt + self.latency.peer_rtt_s + HIT_LOOKUP_TIME_S,
                    egress_bytes=media,
                    peer_bytes=media,
                )
            )

        # 4. Miss everywhere: this request leads.
        self.ledger.misses += 1
        backlog = {name: edge.backlog_s(now_s) for name, edge in self.edges.items()}
        site_name = self.ring.owner_bounded(prof.digest, backlog, self.config.max_backlog_s)
        if backlog[site_name] >= self.config.max_backlog_s:
            return self._finish(self._origin_pull(region, prof, home, now_s, user_rtt))
        return self._finish(self._generate(region, prof, home, self.edges[site_name], now_s, user_rtt))

    # ------------------------------------------------------------------ #
    # Lead paths
    # ------------------------------------------------------------------ #

    def _generate(
        self,
        region: str,
        prof: _ItemProfile,
        home: SimEdge,
        site: SimEdge,
        now_s: float,
        user_rtt: float,
    ) -> FleetServeResult:
        cross_edge = site.name != home.name
        prompt_latency, shield_bytes, origin_bytes = self._fetch_prompt(site, prof)
        ready = now_s + (self.latency.peer_rtt_s if cross_edge else 0.0) + prompt_latency
        done = site.occupy(ready, prof.gen_time_s)
        queue_s = done - ready - prof.gen_time_s
        site.generations += 1
        site.generation_sim_s += prof.gen_time_s
        self._flights[prof.digest] = _Flight(done_s=done, edge=site.name, item=prof)
        # The artifact lands at its canonical ring owner and the home
        # edge; inserts are safe pre-completion because the flight masks
        # every probe until ``done``.
        owner = self.edges[self.ring.owner(prof.digest)]
        for edge in {site.name, owner.name, home.name}:
            self._insert(self.edges[edge], prof)
        peer_bytes = prof.item.media_bytes if cross_edge else 0
        if owner.name not in (site.name, home.name):
            peer_bytes += prof.item.media_bytes  # ship the owner its copy
        return FleetServeResult(
            key=prof.item.key,
            region=region,
            home_edge=home.name,
            tier="generated",
            latency_s=(done - now_s) + user_rtt,
            queue_s=queue_s,
            gen_time_s=prof.gen_time_s,
            gen_energy_wh=prof.gen_energy_wh,
            gen_edge=site.name,
            egress_bytes=prof.item.media_bytes,
            peer_bytes=peer_bytes,
            shield_bytes=shield_bytes,
            origin_bytes=origin_bytes,
        )

    def _origin_pull(
        self,
        region: str,
        prof: _ItemProfile,
        home: SimEdge,
        now_s: float,
        user_rtt: float,
    ) -> FleetServeResult:
        """Generation capacity exhausted fleet-wide for this key's walk:
        pull the materialised media from the origin through the shield."""
        done = now_s + self.latency.shield_rtt_s + self.latency.origin_rtt_s
        self._flights[prof.digest] = _Flight(done_s=done, edge=None, item=prof)
        self.origin_media_pulls += 1
        self._insert(home, prof)  # pull-through: the home edge caches it
        media = prof.item.media_bytes
        return FleetServeResult(
            key=prof.item.key,
            region=region,
            home_edge=home.name,
            tier="origin",
            latency_s=(done - now_s) + user_rtt,
            egress_bytes=media,
            shield_bytes=media,
            origin_bytes=media,
        )

    def _fetch_prompt(self, site: SimEdge, prof: _ItemProfile) -> tuple[float, int, int]:
        """Prompt for a generation: edge cache → shield cache → origin.

        Returns ``(latency_s, shield_bytes, origin_bytes)``.
        """
        if site.prompts.get(prof.digest) is not None:
            return 0.0, 0, 0
        size = prof.prompt_bytes
        # try_put: a prompt larger than the whole cache just isn't kept.
        site.prompts.try_put(CacheEntry(prof.digest, size, kind="prompt"))
        if prof.digest in self._shield_prompts:
            self.shield_prompt_hits += 1
            return self.latency.shield_rtt_s, size, 0
        self._shield_prompts.add(prof.digest)
        self.origin_prompt_pulls += 1
        return self.latency.shield_rtt_s + self.latency.origin_rtt_s, size, size

    # ------------------------------------------------------------------ #
    # Accounting plumbing
    # ------------------------------------------------------------------ #

    def _record_hit(self, prof: _ItemProfile) -> None:
        self.ledger.hits += 1
        saved = max(0.0, prof.gen_time_s - HIT_LOOKUP_TIME_S)
        self.ledger.saved_sim_seconds += saved
        self.ledger.saved_energy_wh += prof.gen_energy_wh

    def _insert(self, edge: SimEdge, prof: _ItemProfile) -> None:
        """Cache the artifact at ``edge``, accounted at modelled media size
        (the §2.2 storage model; the sim never materialises pixels)."""
        edge.gencache.insert(
            prof.gkey,
            payload=b"",
            sim_time_s=prof.gen_time_s,
            energy_wh=prof.gen_energy_wh,
            size_bytes=prof.item.media_bytes,
        )

    def _finish(self, result: FleetServeResult) -> FleetServeResult:
        self.tier_counts[result.tier] += 1
        self.results_served += 1
        if self.registry.enabled:
            self._count(result)
        return result

    def _count(self, result: FleetServeResult) -> None:
        self.registry.counter(
            "cdn_fleet_requests_total",
            "Fleet requests, by serving tier",
            layer="cdn",
            operation=result.tier,
        ).inc()
        self.registry.histogram(
            "cdn_fleet_latency_seconds",
            "User-perceived latency per fleet request, by serving tier",
            layer="cdn",
            operation=result.tier,
        ).observe(result.latency_s)
        if result.queue_s > 0:
            self.registry.histogram(
                "cdn_fleet_queue_seconds",
                "Time spent queued behind other generations at an edge",
                layer="cdn",
            ).observe(result.queue_s)
        if result.origin_bytes:
            self.registry.counter(
                "cdn_fleet_origin_pulls_total",
                "Media/prompt transfers that reached the origin",
                layer="cdn",
            ).inc()
        for operation, amount in (
            ("egress", result.egress_bytes),
            ("peer", result.peer_bytes),
            ("shield", result.shield_bytes),
            ("origin", result.origin_bytes),
        ):
            if amount:
                self.registry.counter(
                    "cdn_fleet_bytes_total",
                    "Bytes moved by the fleet, by channel",
                    layer="cdn",
                    operation=operation,
                ).inc(amount)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def combined_hit_rate(self) -> float:
        """Share of requests served without new origin/generation work:
        home hits, peer hits, and coalesced joins."""
        total = self.results_served
        if not total:
            return 0.0
        fleet = (
            self.tier_counts["edge"] + self.tier_counts["peer"] + self.tier_counts["coalesced"]
        )
        return fleet / total

    def debug_state(self, now_s: float | None = None) -> dict:
        """Topology + per-edge occupancy, for the CLI and tests."""
        now = now_s if now_s is not None else self._last_time_s
        return {
            "edges": {
                name: {
                    "backlog_s": round(edge.backlog_s(now), 6) if now > float("-inf") else 0.0,
                    "generations": edge.generations,
                    "generation_sim_s": round(edge.generation_sim_s, 6),
                    "gencache_entries": edge.gencache.entry_count,
                    "gencache_used_bytes": edge.gencache.used_bytes,
                    "prompt_entries": edge.prompts.entry_count,
                }
                for name, edge in sorted(self.edges.items())
            },
            "homes": self.router.homes(),
            "tiers": dict(self.tier_counts),
            "flights": len(self._flights),
            "origin_media_pulls": self.origin_media_pulls,
            "origin_prompt_pulls": self.origin_prompt_pulls,
            "shield_coalesced": self.shield_coalesced,
            "shield_prompt_hits": self.shield_prompt_hits,
        }


def build_fleet_catalog(
    items: int,
    media_bytes: int = 750_000,
    width: int = 256,
    height: int = 256,
    seed: object = "fleet-catalog",
) -> OriginCatalog:
    """A synthetic origin catalog of ``items`` prompt-addressable objects.

    Prompts vary by a stable suffix so every item has a distinct
    generation key; media size is the modelled JPEG-scale payload the
    §2.2 storage argument uses.
    """
    if items <= 0:
        raise ValueError("catalog needs at least one item")
    catalog = OriginCatalog()
    for i in range(items):
        catalog.add(
            CatalogItem(
                key=f"item-{i:04d}",
                prompt=f"stock media artwork {seed} variant {i:04d}",
                width=width,
                height=height,
                media_bytes=media_bytes,
            )
        )
    return catalog
