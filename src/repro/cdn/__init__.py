"""The CDN scenario (paper §2.2).

    "media is sent from the content provider to caching locations or edge
    servers as prompts, and only the prompts are saved at the edge. At a
    request of a user, the edge server uses the prompt to generate the
    content and sends it to the requester. This approach maintains the
    storage benefits, but loses data transmission benefits."

* :mod:`repro.cdn.cache` — an LRU edge cache that can store either blobs
  or prompts, with byte-accurate capacity accounting.
* :mod:`repro.cdn.edge` — an edge node that serves from cache, generating
  from prompts on demand (with the energy/time trade-off §2.2 flags).
* :mod:`repro.cdn.placement` — cache placement under backbone-traffic
  constraints (§7: SWW "provides more flexibility in cache placement"),
  plus the consistent-hash ring that places generation keys across a
  fleet of edges.
* :mod:`repro.cdn.router` — region→home-edge routing and the fleet's
  propagation-latency model.
* :mod:`repro.cdn.fleet` — the geo-distributed edge fleet: cross-edge
  gencache peering, bounded-load generation placement, and the origin
  shield, driven by the open-loop per-region request tape.
"""

from repro.cdn.cache import EdgeCache, CacheEntry, CacheStats
from repro.cdn.edge import EdgeNode, EdgeServeResult, OriginCatalog, CatalogItem
from repro.cdn.placement import (
    HashRing,
    PlacementProblem,
    PlacementResult,
    moved_share,
    plan_placement,
)
from repro.cdn.router import FleetRouter, LatencyModel

#: Fleet names resolved lazily: repro.cdn.fleet pulls in repro.gencache,
#: whose store is built on repro.cdn.cache — importing it eagerly here
#: would close that loop into a circular import.
_FLEET_EXPORTS = ("EdgeFleet", "FleetConfig", "FleetServeResult", "build_fleet_catalog")


def __getattr__(name: str):
    if name in _FLEET_EXPORTS:
        from repro.cdn import fleet

        return getattr(fleet, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "EdgeCache",
    "CacheEntry",
    "CacheStats",
    "EdgeNode",
    "EdgeServeResult",
    "OriginCatalog",
    "CatalogItem",
    "EdgeFleet",
    "FleetConfig",
    "FleetServeResult",
    "build_fleet_catalog",
    "HashRing",
    "moved_share",
    "FleetRouter",
    "LatencyModel",
    "PlacementProblem",
    "PlacementResult",
    "plan_placement",
]
