"""The CDN scenario (paper §2.2).

    "media is sent from the content provider to caching locations or edge
    servers as prompts, and only the prompts are saved at the edge. At a
    request of a user, the edge server uses the prompt to generate the
    content and sends it to the requester. This approach maintains the
    storage benefits, but loses data transmission benefits."

* :mod:`repro.cdn.cache` — an LRU edge cache that can store either blobs
  or prompts, with byte-accurate capacity accounting.
* :mod:`repro.cdn.edge` — an edge node that serves from cache, generating
  from prompts on demand (with the energy/time trade-off §2.2 flags).
* :mod:`repro.cdn.placement` — cache placement under backbone-traffic
  constraints (§7: SWW "provides more flexibility in cache placement").
"""

from repro.cdn.cache import EdgeCache, CacheEntry, CacheStats
from repro.cdn.edge import EdgeNode, EdgeServeResult, OriginCatalog, CatalogItem
from repro.cdn.placement import PlacementProblem, PlacementResult, plan_placement

__all__ = [
    "EdgeCache",
    "CacheEntry",
    "CacheStats",
    "EdgeNode",
    "EdgeServeResult",
    "OriginCatalog",
    "CatalogItem",
    "PlacementProblem",
    "PlacementResult",
    "plan_placement",
]
