"""Command-line tools for the SWW reproduction.

The subcommands mirror the workflows a site operator or researcher runs:

* ``sww serve``   — start the generative server on TCP (§5.1).
* ``sww fetch``   — run the generative client flow against a server and
  render the page to stdout (§5.2).
* ``sww convert`` — convert a traditional HTML file to SWW form (§4.2)
  and report the compression achieved.
* ``sww demo``    — run a built-in corpus page end-to-end in-process and
  print the experiment summary (no network needed).
* ``sww report``  — measure the paper's headline numbers live and print a
  paper-vs-measured table.
* ``sww stats``   — run a demo flow with metrics enabled and dump the
  collected registry (Prometheus/OpenMetrics text, JSON lines, or a table);
  ``--watch`` polls a live server's admin plane instead.
* ``sww top``     — live terminal view of a running server's telemetry
  plane (throughput, latency quantiles, cache hit rate, SLO burn).
* ``sww incidents`` — list, show or export the flight recorder's captured
  incident bundles (from a live server's admin plane, or offline from a
  directory of bundle JSON artifacts with ``--from-artifacts``).
* ``sww trace``   — run one fetch with per-process tracers (client, server
  and optionally CDN edge + origin), stitch the ``traceparent``-linked
  fragments into one distributed trace, and print/export it
  (``--export`` writes Chrome trace-event JSON for Perfetto).

``fetch`` and ``demo`` accept ``--trace`` to print the nested span tree of
the flow they ran. Installed as the ``sww`` console script; also runnable
via ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.devices import DEVICES, get_device
from repro.obs import (
    IdSource,
    MetricsRegistry,
    Tracer,
    logging_setup,
    render_metrics_table,
    render_span_tree,
    stitch_spans,
    to_chrome_trace,
    to_jsonl,
    to_openmetrics,
    to_prometheus,
)
from repro.sww.client import GenerativeClient, connect_in_memory
from repro.sww.server import GenerativeServer, PageResource, SiteStore
from repro.workloads import (
    build_harbour_gallery,
    build_news_article,
    build_travel_blog,
    build_uniform_pages,
    build_wikimedia_landscape_page,
)
from repro.workloads.corpus import populate_traditional_assets

PAGES = {
    "wikimedia": build_wikimedia_landscape_page,
    "travel-blog": build_travel_blog,
    "news": build_news_article,
    "gallery": build_harbour_gallery,
}


def _add_gencache_flags(cmd: argparse.ArgumentParser) -> None:
    from repro.gencache import DEFAULT_GENCACHE_BYTES

    cmd.add_argument(
        "--gencache-bytes",
        type=int,
        default=DEFAULT_GENCACHE_BYTES,
        metavar="N",
        help="capacity of the content-addressed generation cache "
             f"(default {DEFAULT_GENCACHE_BYTES})",
    )
    cmd.add_argument(
        "--gencache-off",
        action="store_true",
        help="disable the generation cache (regenerate everything, the paper's cold behaviour)",
    )


def _make_gencache(args: argparse.Namespace, registry: MetricsRegistry | None = None):
    """Build the shared generation cache the flags describe (or None)."""
    if args.gencache_off:
        return None
    from repro.gencache import GenerationCache

    if registry is not None:
        return GenerationCache(args.gencache_bytes, registry=registry)
    return GenerationCache(args.gencache_bytes)


def _add_batching_flags(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--max-batch",
        type=int,
        default=1,
        metavar="B",
        help="micro-batch window size for generation (1 = batching off, the "
             "paper's solo behaviour; >1 enables the repro.batching engine)",
    )
    cmd.add_argument(
        "--batch-wait-ms",
        type=float,
        default=4.0,
        metavar="MS",
        help="how long the batching window holds for compatible requests (default 4.0)",
    )


def _make_engine(args: argparse.Namespace, device, registry=None, tracer=None):
    """Build the micro-batching engine the flags describe (or None)."""
    if args.max_batch <= 1:
        return None
    from repro.batching import BatchingEngine

    kwargs = {}
    if registry is not None:
        kwargs["registry"] = registry
    if tracer is not None:
        kwargs["tracer"] = tracer
    return BatchingEngine(
        device, max_batch=args.max_batch, max_wait_s=args.batch_wait_ms / 1000.0, **kwargs
    )


def _build_store(page_names: list[str]) -> SiteStore:
    store = SiteStore()
    for name in page_names:
        # "uniform:N" expands to N distinct equal-cost single-image pages
        # (the worker-scaling benchmark's unit of parallel work).
        if name.startswith("uniform:"):
            try:
                count = int(name.split(":", 1)[1])
            except ValueError:
                raise SystemExit(f"bad page spec {name!r}; want uniform:<count>")
            for page in build_uniform_pages(count):
                store.add_page(PageResource(page.path, page.sww_html, page.traditional_html))
                populate_traditional_assets(store, page)
            continue
        try:
            page = PAGES[name]()
        except KeyError:
            raise SystemExit(f"unknown page {name!r}; available: {sorted(PAGES)}")
        store.add_page(PageResource(page.path, page.sww_html, page.traditional_html))
        populate_traditional_assets(store, page)
    return store


def cmd_serve(args: argparse.Namespace) -> int:
    if args.workers > 1:
        return _serve_multiworker(args)
    store = _build_store(args.pages)
    device = get_device(args.device)
    registry = None
    admin = None
    events = None
    recorder = None
    tracer = None
    if not args.no_telemetry:
        from repro.obs import (
            EventLog,
            FlightRecorder,
            SLOTracker,
            TailSampler,
            TimeSeriesSampler,
        )
        from repro.sww.admin import AdminPlane

        registry = MetricsRegistry()
        events = EventLog(registry=registry)
        tracer = Tracer(registry=registry, tail=TailSampler(registry=registry))
        sampler = TimeSeriesSampler(registry, interval_s=args.sample_interval)
        slo = SLOTracker(registry)
        recorder = FlightRecorder(
            registry=registry, events=events, tracer=tracer, slo=slo
        ).attach(sampler)
        admin = AdminPlane(
            registry, sampler=sampler, slo=slo, events=events, recorder=recorder
        )
    server = GenerativeServer(
        store,
        device=device,
        gen_ability=not args.no_gen_ability,
        push_assets=args.push,
        registry=registry,
        tracer=tracer,
        gencache=_make_gencache(args, registry),
        engine=_make_engine(args, device, registry=registry),
        concurrent_streams=not args.serial_streams,
        events=events,
        recorder=recorder,
        memoise_pages=not args.no_page_memo,
        priorities_enabled=not args.no_priorities,
        max_concurrent_streams=args.max_concurrent_streams,
    )
    if admin is not None:
        admin.bind(server)
    if recorder is not None:
        recorder.server = server

    async def run() -> None:
        listener = await server.serve_forever(args.host, args.port)
        port = listener.sockets[0].getsockname()[1]
        paths = ", ".join(sorted(store.pages))
        print(f"sww generative server on {args.host}:{port} (device={args.device}, "
              f"gen_ability={server.gen_ability}); pages: {paths}", flush=True)
        if admin is not None:
            print(f"telemetry plane on :authority={admin.authority} "
                  "(/metrics /healthz /debug/streams /debug/timeseries /debug/profile "
                  "/debug/events /incidents); "
                  f"watch live with: sww top --port {port}", flush=True)
        async with listener:
            await listener.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _serve_multiworker(args: argparse.Namespace) -> int:
    """``serve --workers N``: a pre-fork arbiter masters N serving workers.

    The store is built once pre-fork (read-only after construction, so
    copy-on-write shares it); everything stateful — registry, event log,
    sampler, server, cache facade — is built per worker inside
    ``runtime_factory``, which runs in the child after fork.
    """
    import os

    from repro.serving import Arbiter, ArbiterConfig
    from repro.serving.worker import WorkerRuntime

    store = _build_store(args.pages)
    device = get_device(args.device)
    cache_tier = not (args.no_cache_tier or args.gencache_off)

    def runtime_factory(worker_id: int, cache_address):
        registry = None
        events = None
        tracer = None
        sampler = None
        if not args.no_telemetry:
            from repro.obs import EventLog, TailSampler, TimeSeriesSampler

            registry = MetricsRegistry()
            # Key the event stream by pid: merged jsonl orders by
            # (worker, seq) and respawned workers never collide.
            events = EventLog(registry=registry, worker_id=os.getpid())
            tracer = Tracer(registry=registry, tail=TailSampler(registry=registry))
            sampler = TimeSeriesSampler(registry, interval_s=args.sample_interval)
        remote = None
        if cache_address is not None:
            from repro.serving import RemoteGenerationCache

            gencache = remote = RemoteGenerationCache(cache_address[0], cache_address[1])
        else:
            gencache = _make_gencache(args, registry)
        server = GenerativeServer(
            store,
            device=device,
            gen_ability=not args.no_gen_ability,
            push_assets=args.push,
            registry=registry,
            tracer=tracer,
            gencache=gencache,
            engine=_make_engine(args, device, registry=registry, tracer=tracer),
            concurrent_streams=not args.serial_streams,
            events=events,
            memoise_pages=not args.no_page_memo,
            priorities_enabled=not args.no_priorities,
            max_concurrent_streams=args.max_concurrent_streams,
        )
        return WorkerRuntime(
            server=server, registry=registry, events=events, sampler=sampler, gencache=remote
        )

    config = ArbiterConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        worker_timeout_s=args.worker_timeout,
        heartbeat_interval_s=args.heartbeat_interval,
        max_requests=args.max_requests,
        connection_limit=args.worker_connections,
        admin_host=args.host,
        admin_port=args.admin_port,
        cache_tier=cache_tier,
        cache_port=args.cache_port,
        cache_capacity_bytes=args.gencache_bytes,
    )
    try:
        return Arbiter(config, runtime_factory).run()
    except KeyboardInterrupt:
        return 0


def cmd_fetch(args: argparse.Namespace) -> int:
    tracer = Tracer() if args.trace else None
    device = get_device(args.device)
    engine = _make_engine(args, device, tracer=tracer)
    client = GenerativeClient(
        device=device,
        gen_ability=not args.no_gen_ability,
        tracer=tracer,
        gencache=_make_gencache(args),
        gen_workers=args.gen_workers,
        engine=engine,
        send_priorities=not args.no_priorities,
        adaptive_window=not args.no_bdp,
    )

    async def run():
        return await client.fetch_tcp(args.host, args.port, args.path)

    result = asyncio.run(run())
    print(f"status {result.status}; served as "
          f"{'SWW prompts' if result.sww_mode else 'traditional HTML'}; "
          f"{result.wire_bytes:,} bytes on the wire")
    if result.report:
        print(f"generated {result.report.generated_images} images and "
              f"{result.report.generated_texts} texts locally in "
              f"{result.generation_time_s:.1f} simulated s "
              f"({result.generation_energy_wh:.3f} Wh)")
        if result.report.cache_hits or result.report.coalesced:
            print(f"generation cache answered {result.report.cache_hits} items "
                  f"({result.report.coalesced} coalesced in flight)")
    if engine is not None:
        stats = engine.stats
        print(f"micro-batching: {stats.requests} requests in {stats.batches} batches "
              f"(mean {stats.mean_batch:.1f}, max {stats.largest_batch}; "
              f"saved {stats.saved_sim_s:.1f} simulated s)")
        engine.close()
    if tracer is not None:
        print()
        print(render_span_tree(tracer))
    print()
    print(result.rendered)
    return 0 if result.status == 200 else 1


def cmd_convert(args: argparse.Namespace) -> int:
    from repro.html import parse_html, serialize
    from repro.sww.cms import ContentManagementSystem
    from repro.sww.conversion import PageConverter, PromptInverter

    source = sys.stdin.read() if args.input == "-" else open(args.input, encoding="utf-8").read()
    document = parse_html(source)
    cms = (
        ContentManagementSystem.for_template(args.template)
        if args.template
        else ContentManagementSystem()
    )
    converter = PageConverter(inverter=PromptInverter(fidelity=args.fidelity), cms=cms)
    report = converter.convert(document, topic=args.topic)
    converted = serialize(document)
    if args.output == "-":
        sys.stdout.write(converted)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(converted)
    print(
        f"converted {report.converted_images} images and {report.converted_texts} "
        f"text blocks ({report.kept_unique} kept unique); compression "
        f"{report.account.ratio:.1f}x on converted content",
        file=sys.stderr,
    )
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    try:
        page = PAGES[args.page]()
    except KeyError:
        raise SystemExit(f"unknown page {args.page!r}; available: {sorted(PAGES)}")
    store = SiteStore()
    store.add_page(PageResource(page.path, page.sww_html, page.traditional_html))
    populate_traditional_assets(store, page)
    tracer = Tracer() if args.trace else None
    gencache = _make_gencache(args)
    device = get_device(args.device)
    engine = _make_engine(args, device, tracer=tracer)
    server = GenerativeServer(store, tracer=tracer, priorities_enabled=not args.no_priorities)
    client = GenerativeClient(
        device=device,
        tracer=tracer,
        gencache=gencache,
        gen_workers=args.gen_workers,
        engine=engine,
        send_priorities=not args.no_priorities,
        adaptive_window=not args.no_bdp,
    )
    pair = connect_in_memory(client, server)
    result = client.fetch_via_pair(pair, page.path)
    account = page.account
    print(f"page: {page.title}")
    print(f"original content : {account.original_total:,} B")
    print(f"SWW wire bytes   : {result.wire_bytes:,} B")
    if account.metadata:
        print(f"compression      : {account.ratio:.1f}x on generatable content")
    if result.report:
        print(f"generated        : {result.report.generated_images} images, "
              f"{result.report.generated_texts} texts on the {args.device}")
        print(f"generation cost  : {result.generation_time_s:.1f} simulated s, "
              f"{result.generation_energy_wh:.3f} Wh (cold)")
    if gencache is not None and result.report:
        # A second fetch of the same page: every item now hits the cache.
        # The cold line above is untouched; warm cost is reported beside it.
        warm = client.fetch_via_pair(connect_in_memory(client, server), page.path)
        if warm.report:
            print(f"warm re-fetch    : {warm.generation_time_s:.3f} simulated s, "
                  f"{warm.report.cache_hits}/{warm.report.generated_total} items from cache "
                  f"(saved {gencache.stats.saved_sim_seconds:.1f} s)")
    if engine is not None:
        stats = engine.stats
        print(f"micro-batching   : {stats.requests} requests in {stats.batches} batches "
              f"(mean {stats.mean_batch:.1f}, saved {stats.saved_sim_s:.1f} simulated s)")
        engine.close()
    if tracer is not None:
        print()
        print(render_span_tree(tracer))
    if args.render:
        print()
        print(result.rendered)
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Simulate the geo-distributed edge fleet under open-loop load."""
    import json

    from repro.cdn.fleet import EdgeFleet, FleetConfig, build_fleet_catalog
    from repro.cdn.placement import HashRing
    from repro.cdn.router import FleetRouter
    from repro.workloads.session import OpenLoopSession
    from repro.workloads.traffic import default_regions

    config = FleetConfig(
        edges=args.edges,
        gencache_bytes=int(args.gencache_mib * 1024 * 1024),
        gen_lanes=args.lanes,
        max_backlog_s=args.max_backlog,
    )
    catalog = build_fleet_catalog(args.catalog)
    ring = HashRing(config.edge_names(), config.vnodes)
    regions = default_regions(args.regions, rate_per_s=args.rate)
    router = FleetRouter(regions, ring)
    fleet = EdgeFleet(catalog, config, router, ring=ring)
    session = OpenLoopSession(fleet, regions, args.duration, seed=args.seed)

    passes = [session.run() for _ in range(max(1, args.passes))]
    final = passes[-1]

    if args.json:
        payload = {
            "config": {
                "edges": args.edges,
                "regions": args.regions,
                "rate_per_s": args.rate,
                "duration_s": args.duration,
                "catalog_items": args.catalog,
                "gencache_mib": args.gencache_mib,
                "passes": len(passes),
                "seed": args.seed,
            },
            "passes": [p.summary() for p in passes],
            "fleet": fleet.debug_state(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    label = "warm" if len(passes) > 1 else "cold"
    summary = final.summary()
    print(f"fleet: {args.edges} edges, {args.regions} regions @ {args.rate:.1f} req/s each, "
          f"{args.duration:.0f} s tape x {len(passes)} pass(es)")
    print(f"requests         : {summary['requests']:,} ({label} pass shown)")
    print(f"fleet hit rate   : {100 * summary['fleet_hit_rate']:.1f}% "
          f"(edge+peer+coalesced, one outcome per request)")
    for tier in ("edge", "peer", "coalesced", "generated", "origin"):
        stats = summary["tiers"].get(tier)
        if stats:
            print(f"  {tier:<14} : {stats['count']:>6,}  "
                  f"p50 {stats['p50_s'] * 1000:7.1f} ms  p99 {stats['p99_s'] * 1000:8.1f} ms")
    offload = summary["origin_offload"]
    offload_text = "inf (no origin bytes)" if offload is None else f"{offload:.1f}x"
    print(f"origin offload   : {offload_text} "
          f"({summary['origin_bytes']:,} B from origin vs {summary['egress_bytes']:,} B egress)")
    print(f"latency          : p50 {summary['p50_s'] * 1000:.1f} ms, "
          f"p99 {summary['p99_s'] * 1000:.1f} ms, "
          f"mean queue {summary['mean_queue_s'] * 1000:.1f} ms")
    print(f"generation       : {summary['generation_sim_s']:.1f} simulated s, "
          f"{summary['generation_energy_wh']:.2f} Wh this pass; "
          f"saved {fleet.ledger.saved_sim_seconds:.1f} s / "
          f"{fleet.ledger.saved_energy_wh:.2f} Wh total")
    state = fleet.debug_state()
    busiest = max(state["edges"].items(), key=lambda kv: kv[1]["generations"])
    print(f"edges            : busiest {busiest[0]} with {busiest[1]['generations']} generations; "
          f"shield collapsed {state['shield_coalesced']} pulls, "
          f"{state['origin_media_pulls']} media / {state['origin_prompt_pulls']} prompt origin pulls")
    return 0


def _top_frame(snap: dict, health: dict, window_ticks: int) -> str:
    """Render one `sww top` frame from a timeseries snapshot + healthz."""
    from repro.obs import snapshot_last, snapshot_quantile, snapshot_rate

    def fmt(value, spec=".1f", suffix=""):
        return "-" if value is None else f"{value:{spec}}{suffix}"

    def delta_ratio(numerator: str, denominator: str):
        num = snapshot_rate(snap, numerator, window_ticks)
        den = snapshot_rate(snap, denominator, window_ticks)
        return None if not den else (num or 0.0) / den

    hits = snapshot_last(snap, "gencache_hits_total") or 0.0
    misses = snapshot_last(snap, "gencache_misses_total") or 0.0
    lookups = hits + misses
    loop = health.get("loop_stall", {})
    lines = [
        f"sww top — tick {snap.get('tick', -1)} "
        f"(interval {snap.get('interval_s', 0):g}s, window {window_ticks} ticks) "
        f"— status {health.get('status', '?')}",
        "",
        f"  requests    {fmt(snapshot_rate(snap, 'sww_requests_total', window_ticks), '.2f', '/s')}"
        f"   inflight {fmt(snapshot_last(snap, 'sww_server_inflight_streams'), '.0f')}"
        f"   connections {health.get('connections', 0)}",
        f"  latency     p50 {fmt(snapshot_quantile(snap, 'sww_request_seconds', 0.5, window_ticks), '.3f', 's')}"
        f"   p99 {fmt(snapshot_quantile(snap, 'sww_request_seconds', 0.99, window_ticks), '.3f', 's')}",
        f"  loop stall  recent {loop.get('recent_max_s', 0) * 1000:.1f}ms"
        f"   worst {loop.get('worst_s', 0) * 1000:.1f}ms",
        f"  gencache    hit rate {fmt(hits / lookups if lookups else None, '.0%')}"
        f"   ({hits:.0f} hits / {misses:.0f} misses)",
        f"  batching    occupancy {fmt(delta_ratio('batching_requests_total', 'batching_batches_total'), '.2f')}"
        f"   queue {fmt(snapshot_last(snap, 'batching_queue_wait_seconds'), '.2f', 's-sum')}",
        f"  writer      stalls {fmt(snapshot_last(snap, 'http2_writer_stalls_total'), '.0f')}"
        f"   ({fmt(snapshot_rate(snap, 'http2_writer_stalls_total', window_ticks), '.2f', '/s')})"
        f"   buffered {fmt(snapshot_last(snap, 'http2_writer_buffered_bytes'), '.0f', 'B')}",
    ]
    slo = health.get("slo", {})
    for name, entry in sorted(slo.items()):
        windows = entry.get("windows", {})
        burns = "  ".join(f"{label} {burn:g}x" for label, burn in sorted(windows.items()))
        flag = "" if entry.get("healthy", True) else "  ** BURNING **"
        budget = entry.get("budget_remaining")
        budget_text = f"  budget {budget:.0%}" if budget is not None else ""
        lines.append(f"  slo         {name}: {burns or 'no data'}{budget_text}{flag}")
    return "\n".join(lines)


#: Watch loops (`sww top`, `sww stats --watch`) tolerate transient admin
#: outages (server restart, connection reset) once they have connected:
#: a failed poll prints a reconnecting row and retries with linear
#: backoff, giving up after this many consecutive failures. A failure
#: before the *first* successful poll stays fatal — that is a wrong
#: host/port, not a blip.
WATCH_MAX_RETRIES = 5
WATCH_BACKOFF_S = 0.5


class _WatchGaveUp(Exception):
    """The watch loop exhausted its reconnect attempts."""


async def _watch_poll(poll, host: str, port: int, ever_connected: bool):
    """One watch-loop poll; retries transient failures with backoff."""
    attempt = 0
    while True:
        try:
            return await poll()
        except (ConnectionError, OSError) as exc:
            if not ever_connected:
                print(f"cannot reach {host}:{port}: {exc}", file=sys.stderr)
                raise _WatchGaveUp from exc
            attempt += 1
            if attempt > WATCH_MAX_RETRIES:
                print(
                    f"cannot reach {host}:{port} after {WATCH_MAX_RETRIES} retries: {exc}",
                    file=sys.stderr,
                )
                raise _WatchGaveUp from exc
            print(
                f"  reconnecting to {host}:{port} "
                f"(attempt {attempt}/{WATCH_MAX_RETRIES}): {exc}",
                file=sys.stderr,
                flush=True,
            )
            await asyncio.sleep(WATCH_BACKOFF_S * attempt)


def cmd_top(args: argparse.Namespace) -> int:
    """Live terminal view of a running server's telemetry plane."""
    from repro.sww.admin import admin_fetch_json

    window_ticks = max(1, round(args.window / args.interval))

    async def run() -> int:
        iteration = 0
        connected = False
        while True:
            try:
                snap = await _watch_poll(
                    lambda: admin_fetch_json(args.host, args.port, "/debug/timeseries"),
                    args.host, args.port, connected,
                )
                health = await _watch_poll(
                    lambda: admin_fetch_json(args.host, args.port, "/healthz"),
                    args.host, args.port, connected,
                )
            except _WatchGaveUp:
                return 1
            connected = True
            frame = _top_frame(snap, health, window_ticks)
            if sys.stdout.isatty():
                print("\x1b[2J\x1b[H" + frame, flush=True)
            else:
                print(frame + "\n", flush=True)
            iteration += 1
            if args.iterations and iteration >= args.iterations:
                return 0
            await asyncio.sleep(args.interval)

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def _stats_watch(args: argparse.Namespace) -> int:
    """`sww stats --watch`: poll a live server's /metrics exposition."""
    from repro.sww.admin import admin_fetch

    async def run() -> int:
        iteration = 0
        connected = False
        while True:
            try:
                status, body = await _watch_poll(
                    lambda: admin_fetch(args.host, args.port, "/metrics"),
                    args.host, args.port, connected,
                )
            except _WatchGaveUp:
                return 1
            connected = True
            if status != 200:
                print(f"/metrics returned {status}", file=sys.stderr)
                return 1
            print(body.decode("utf-8").rstrip("\n"), flush=True)
            iteration += 1
            if args.iterations and iteration >= args.iterations:
                return 0
            await asyncio.sleep(args.interval)

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Exercise one demo page with metrics enabled and dump the registry.

    Runs a capable-client fetch and a naive-client fetch against the same
    in-process server so the dump covers the negotiation, generation,
    fallback and HTTP/2 framing metric families. With ``--watch`` it
    instead polls a live server's admin plane for its exposition.
    """
    if args.watch:
        return _stats_watch(args)
    try:
        page = PAGES[args.page]()
    except KeyError:
        raise SystemExit(f"unknown page {args.page!r}; available: {sorted(PAGES)}")
    registry = MetricsRegistry()
    tracer = Tracer()
    store = SiteStore()
    store.add_page(PageResource(page.path, page.sww_html, page.traditional_html))
    populate_traditional_assets(store, page)
    print(f"measuring one capable and one naive fetch of {page.path}...", file=sys.stderr)
    # One cache shared by the capable client and the server's fallback
    # path: the naive fetch's server-side materialisation reuses what the
    # capable client already generated, so the gencache_* families show
    # real cross-layer hits.
    gencache = _make_gencache(args, registry)
    device = get_device(args.device)
    engine = _make_engine(args, device, registry=registry, tracer=tracer)
    server = GenerativeServer(store, registry=registry, tracer=tracer, gencache=gencache)
    capable = GenerativeClient(
        device=device, registry=registry, tracer=tracer, gencache=gencache, engine=engine
    )
    capable.fetch_via_pair(connect_in_memory(capable, server), page.path)
    naive = GenerativeClient(
        device=device, gen_ability=False, registry=registry, tracer=tracer
    )
    naive.fetch_via_pair(connect_in_memory(naive, server), page.path)
    if engine is not None:
        engine.close()  # drain so the batching_* families are settled
    if args.format == "prom":
        output = to_prometheus(registry)
    elif args.format == "openmetrics":
        output = to_openmetrics(registry)
    elif args.format == "jsonl":
        output = to_jsonl(registry)
    else:
        output = render_metrics_table(registry)
    print(output.rstrip("\n"))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """One fetch, traced across simulated process boundaries.

    Client and server (and, with ``--cdn``, edge and origin) each get
    their *own* tracer — four ring buffers standing in for four
    processes. Causality crosses the wire only through the
    ``traceparent`` request header, so the stitched output demonstrates
    the propagation path end to end. Seeded id sources keep trace/span
    ids identical run to run.
    """
    try:
        page = PAGES[args.page]()
    except KeyError:
        raise SystemExit(f"unknown page {args.page!r}; available: {sorted(PAGES)}")
    path = args.path or page.path
    registry = MetricsRegistry()
    client_tracer = Tracer(ids=IdSource(args.seed), sample_rate=args.sample_rate, registry=registry)
    server_tracer = Tracer(ids=IdSource(args.seed + 1), registry=registry)

    store = SiteStore()
    store.add_page(PageResource(page.path, page.sww_html, page.traditional_html))
    populate_traditional_assets(store, page)
    server = GenerativeServer(store, registry=registry, tracer=server_tracer, push_assets=True)

    print(f"tracing a generative and a naive fetch of {path}...", file=sys.stderr)
    capable = GenerativeClient(device=get_device(args.device), registry=registry, tracer=client_tracer)
    capable.fetch_via_pair(connect_in_memory(capable, server), path)
    # The naive fetch exercises the negotiation-fallback and server-push
    # paths: the server materialises the page (genai spans land server-side)
    # and pushes the generated media.
    naive = GenerativeClient(
        device=get_device(args.device), gen_ability=False, registry=registry, tracer=client_tracer
    )
    naive.fetch_via_pair(connect_in_memory(naive, server), path)

    tracers = [client_tracer, server_tracer]
    if args.cdn:
        from repro.cdn.edge import CatalogItem, EdgeNode, OriginCatalog
        from repro.media.jpeg_model import jpeg_size
        from repro.obs import encode_traceparent

        edge_tracer = Tracer(ids=IdSource(args.seed + 2), registry=registry)
        origin_tracer = Tracer(ids=IdSource(args.seed + 3), registry=registry)
        catalog = OriginCatalog(tracer=origin_tracer)
        key = "/media/alpine-meadow-512.jpg"
        catalog.add(
            CatalogItem(
                key=key,
                prompt="a sunlit alpine meadow below a glacier tongue",
                width=512,
                height=512,
                media_bytes=jpeg_size(512, 512),
            )
        )
        edge = EdgeNode(
            catalog,
            cache_capacity_bytes=1 << 20,
            mode="prompt",
            registry=registry,
            tracer=edge_tracer,
        )
        # Two user requests: the first misses (edge→origin hop with the
        # re-injected traceparent, then on-edge generation), the second hits.
        for _ in range(2):
            with client_tracer.span("client.fetch", key=key, transport="cdn") as span:
                edge.serve(key, traceparent=encode_traceparent(span.context))
        tracers += [edge_tracer, origin_tracer]

    stitched = stitch_spans([root for tracer in tracers for root in tracer.roots()])
    for root in stitched:
        print(f"\ntrace {root.trace_id}")
        print(render_span_tree([root]))

    exemplars = [
        (name, inst, exemplar)
        for name, kind, _help, instruments in registry.collect()
        if kind == "histogram"
        for inst in instruments
        for exemplar in inst.exemplars()
    ]
    if exemplars:
        print("\nexemplars (histogram bucket -> trace):")
        for name, inst, (bound, trace_id, value) in exemplars:
            labels = " ".join(f"{k}={v}" for k, v in inst.labels)
            print(f"  {name}{{{labels}}} le={bound:g}: {value:.3f} @ trace {trace_id}")

    if args.export:
        with open(args.export, "w", encoding="utf-8") as handle:
            handle.write(to_chrome_trace(stitched))
        print(f"\nwrote Chrome trace-event JSON to {args.export} "
              "(open at https://ui.perfetto.dev or chrome://tracing)", file=sys.stderr)
    return 0


def _incident_rows(bundles: list[dict]) -> str:
    """One aligned row per incident bundle for `sww incidents list`."""
    lines = []
    for bundle in bundles:
        trigger = bundle.get("trigger", {})
        detail = trigger.get("detail") or "-"
        lines.append(
            f"{bundle.get('incident', '?'):<14} {trigger.get('kind', '?'):<20} "
            f"events={len(bundle.get('events', [])):<5} "
            f"traces={len(bundle.get('traces', [])):<4} {detail}"
        )
    return "\n".join(lines)


def _load_artifact_bundles(directory: str) -> list[dict]:
    """Offline mode: read `<dir>/*.json` incident bundles (CI artifacts)."""
    import json
    from pathlib import Path

    from repro.obs import BUNDLE_FORMAT

    bundles = []
    root = Path(directory)
    if not root.is_dir():
        raise SystemExit(f"no artifact directory {directory!r}")
    for path in sorted(root.glob("*.json")):
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if isinstance(document, dict) and document.get("format") == BUNDLE_FORMAT:
            bundles.append(document)
    return bundles


def cmd_incidents(args: argparse.Namespace) -> int:
    """`sww incidents list|show|export` — flight-recorder bundles.

    Live mode polls a running server's admin plane; ``--from-artifacts``
    reads bundle JSON files from a directory instead (the shape CI's
    failure-export step and the benchmark artifacts write), so bundles
    remain inspectable after the process that captured them is gone.
    """
    import json

    if args.from_artifacts is not None:
        bundles = _load_artifact_bundles(args.from_artifacts)
    else:
        from repro.sww.admin import admin_fetch_json

        async def fetch_all() -> list[dict]:
            listing = await admin_fetch_json(args.host, args.port, "/incidents")
            return [
                await admin_fetch_json(
                    args.host, args.port, f"/incidents/{row['incident']}"
                )
                for row in listing.get("incidents", [])
            ]

        try:
            bundles = asyncio.run(fetch_all())
        except (ConnectionError, OSError, RuntimeError) as exc:
            print(f"cannot reach {args.host}:{args.port}: {exc}", file=sys.stderr)
            return 1
    if args.action == "list":
        if not bundles:
            print("no incidents captured")
            return 0
        print(_incident_rows(bundles))
        return 0
    if args.action == "show":
        if not args.incident:
            raise SystemExit("incidents show requires an incident id")
        for bundle in bundles:
            if bundle.get("incident") == args.incident:
                print(json.dumps(bundle, sort_keys=True, indent=2))
                return 0
        print(f"no incident {args.incident!r}", file=sys.stderr)
        return 1
    # export
    from pathlib import Path

    target = Path(args.dir)
    target.mkdir(parents=True, exist_ok=True)
    written = []
    for bundle in bundles:
        path = target / f"{bundle.get('incident', 'incident')}.json"
        path.write_text(json.dumps(bundle, sort_keys=True, indent=2) + "\n")
        written.append(path)
    print(f"exported {len(written)} incident bundle(s) to {target}")
    for path in written:
        print(f"  {path}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.report import format_report, run_headline_experiments

    print("running the headline experiments (simulated time; ~10 s wall)...", file=sys.stderr)
    print(format_report(run_headline_experiments()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="sww", description=__doc__.splitlines()[0])
    parser.add_argument(
        "--log-level",
        default="warning",
        choices=["debug", "info", "warning", "error"],
        help="threshold for the repro.* logger hierarchy",
    )
    parser.add_argument(
        "--log-format",
        default="text",
        choices=["text", "json"],
        help="log line shape: classic text, or one JSON object per line "
             "(field names shared with the wide-event schema)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="start the generative server on TCP")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8443)
    serve.add_argument("--device", default="workstation", choices=sorted(DEVICES))
    serve.add_argument("--pages", nargs="+", default=list(PAGES), metavar="PAGE")
    serve.add_argument("--no-gen-ability", action="store_true", help="run as a naive HTTP/2 server")
    serve.add_argument("--push", action="store_true", help="server-push generated assets to naive clients")
    serve.add_argument(
        "--serial-streams",
        action="store_true",
        help="disable the concurrent stream scheduler (serve one request at "
             "a time on the event loop, the paper's seed behaviour)",
    )
    serve.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable the metrics registry, admin plane and time-series sampler",
    )
    serve.add_argument(
        "--sample-interval",
        type=float,
        default=1.0,
        metavar="S",
        help="time-series sampler tick interval in seconds (default 1.0)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="pre-fork N serving workers under an arbiter (1 = the "
             "single-process path, unchanged)",
    )
    serve.add_argument(
        "--worker-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="SIGKILL a worker whose heartbeat is older than this (default 30)",
    )
    serve.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        metavar="S",
        help="worker heartbeat/telemetry shipping interval (default 1.0)",
    )
    serve.add_argument(
        "--max-requests",
        type=int,
        default=0,
        metavar="N",
        help="gracefully recycle a worker after N requests plus up to 10%% "
             "deterministic jitter (0 = never)",
    )
    serve.add_argument(
        "--worker-connections",
        type=int,
        default=0,
        metavar="N",
        help="cap concurrently held connections per worker; 1 makes the "
             "shared-socket accept least-loaded (0 = unlimited)",
    )
    serve.add_argument(
        "--admin-port",
        type=int,
        default=0,
        metavar="PORT",
        help="arbiter admin plane port (multi-worker only; 0 = ephemeral)",
    )
    serve.add_argument(
        "--cache-port",
        type=int,
        default=0,
        metavar="PORT",
        help="shared gencache tier port (multi-worker only; 0 = ephemeral)",
    )
    serve.add_argument(
        "--no-cache-tier",
        action="store_true",
        help="multi-worker: give each worker its own process-local gencache "
             "instead of the arbiter's shared tier",
    )
    serve.add_argument(
        "--no-page-memo",
        action="store_true",
        help="disable the server-generated page memo (every request "
             "re-materialises through the gencache)",
    )
    serve.add_argument(
        "--no-priorities",
        action="store_true",
        help="ignore RFC 9218 priority signals (restore the flat "
             "round-robin writer schedule)",
    )
    serve.add_argument(
        "--max-concurrent-streams",
        type=int,
        default=None,
        metavar="N",
        help="advertise and enforce SETTINGS_MAX_CONCURRENT_STREAMS; "
             "excess streams are refused with REFUSED_STREAM "
             "(default: unlimited)",
    )
    _add_gencache_flags(serve)
    _add_batching_flags(serve)
    serve.set_defaults(func=cmd_serve)

    top = sub.add_parser(
        "top", help="live terminal view of a running server's telemetry plane"
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=8443)
    top.add_argument("--interval", type=float, default=2.0, metavar="S",
                     help="refresh interval in seconds (default 2.0)")
    top.add_argument("--window", type=float, default=10.0, metavar="S",
                     help="trailing window for rates/quantiles (default 10.0)")
    top.add_argument("--iterations", type=int, default=0, metavar="N",
                     help="stop after N frames (0 = run until interrupted)")
    top.set_defaults(func=cmd_top)

    fetch = sub.add_parser("fetch", help="fetch a page with the generative client")
    fetch.add_argument("path")
    fetch.add_argument("--host", default="127.0.0.1")
    fetch.add_argument("--port", type=int, default=8443)
    fetch.add_argument("--device", default="laptop", choices=sorted(DEVICES))
    fetch.add_argument("--no-gen-ability", action="store_true", help="fetch as a naive client")
    fetch.add_argument("--trace", action="store_true", help="print the span tree of the fetch")
    fetch.add_argument("--gen-workers", type=int, default=1, metavar="N",
                       help="worker pool width for page generation (single-flight when > 1)")
    fetch.add_argument("--no-priorities", action="store_true",
                       help="do not send RFC 9218 priority signals")
    fetch.add_argument("--no-bdp", action="store_true",
                       help="disable BDP-adaptive receive-window tuning "
                            "(keep the fixed initial window)")
    _add_gencache_flags(fetch)
    _add_batching_flags(fetch)
    fetch.set_defaults(func=cmd_fetch)

    convert = sub.add_parser("convert", help="convert a traditional HTML file to SWW form")
    convert.add_argument("input", help="input HTML file, or - for stdin")
    convert.add_argument("output", help="output HTML file, or - for stdout")
    convert.add_argument("--fidelity", type=float, default=0.85)
    convert.add_argument("--topic", default="technology")
    convert.add_argument("--template", default=None, help="CMS template (blog/company/gallery/news)")
    convert.set_defaults(func=cmd_convert)

    demo = sub.add_parser("demo", help="run a corpus page end-to-end in-process")
    demo.add_argument("--page", default="travel-blog", choices=sorted(PAGES))
    demo.add_argument("--device", default="laptop", choices=sorted(DEVICES))
    demo.add_argument("--render", action="store_true", help="print the rendered page")
    demo.add_argument("--trace", action="store_true", help="print the span tree of the flow")
    demo.add_argument("--gen-workers", type=int, default=1, metavar="N",
                      help="worker pool width for page generation (single-flight when > 1)")
    demo.add_argument("--no-priorities", action="store_true",
                      help="disable RFC 9218 priority signalling and scheduling")
    demo.add_argument("--no-bdp", action="store_true",
                      help="disable BDP-adaptive receive-window tuning")
    _add_gencache_flags(demo)
    _add_batching_flags(demo)
    demo.set_defaults(func=cmd_demo)

    report = sub.add_parser("report", help="measure the paper's headline numbers live")
    report.set_defaults(func=cmd_report)

    fleet = sub.add_parser(
        "fleet", help="simulate the geo-distributed edge fleet under open-loop load"
    )
    fleet.add_argument("--edges", type=int, default=4, metavar="N",
                       help="edge count on the consistent-hash ring (default 4)")
    fleet.add_argument("--regions", type=int, default=8, metavar="N",
                       help="user regions, each homed on an edge (default 8)")
    fleet.add_argument("--rate", type=float, default=2.0, metavar="R",
                       help="open-loop Poisson arrivals per second per region (default 2.0)")
    fleet.add_argument("--duration", type=float, default=60.0, metavar="S",
                       help="simulated seconds of tape per pass (default 60)")
    fleet.add_argument("--catalog", type=int, default=240, metavar="N",
                       help="origin catalog size in items (default 240)")
    fleet.add_argument("--gencache-mib", type=float, default=24.0, metavar="MIB",
                       help="generation-cache capacity per edge (default 24 MiB)")
    fleet.add_argument("--lanes", type=int, default=1, metavar="N",
                       help="concurrent generation lanes per edge (default 1)")
    fleet.add_argument("--max-backlog", type=float, default=5.0, metavar="S",
                       help="queue backlog before the bounded-load walk spills and "
                            "the origin fallback engages (default 5.0)")
    fleet.add_argument("--passes", type=int, default=2, metavar="N",
                       help="tape replays; pass 2+ measures warm caches (default 2)")
    fleet.add_argument("--seed", type=int, default=0, help="workload seed")
    fleet.add_argument("--json", action="store_true", help="emit JSON instead of the summary")
    fleet.set_defaults(func=cmd_fleet)

    incidents = sub.add_parser(
        "incidents", help="list, show or export flight-recorder incident bundles"
    )
    incidents.add_argument("action", choices=["list", "show", "export"])
    incidents.add_argument("incident", nargs="?", default=None,
                           help="incident id (required for show)")
    incidents.add_argument("--host", default="127.0.0.1")
    incidents.add_argument("--port", type=int, default=8443)
    incidents.add_argument("--from-artifacts", metavar="DIR", default=None,
                           help="read bundle JSON files from DIR instead of a live "
                                "server (CI / benchmark artifacts)")
    incidents.add_argument("--dir", default="incidents", metavar="DIR",
                           help="output directory for export (default ./incidents)")
    incidents.set_defaults(func=cmd_incidents)

    stats = sub.add_parser("stats", help="run a demo flow with metrics on and dump the registry")
    stats.add_argument("--page", default="travel-blog", choices=sorted(PAGES))
    stats.add_argument("--device", default="laptop", choices=sorted(DEVICES))
    stats.add_argument("--format", default="prom", choices=["prom", "openmetrics", "jsonl", "table"],
                       help="output format: Prometheus text, OpenMetrics text (with "
                            "exemplars), JSON lines, or aligned table")
    stats.add_argument("--watch", action="store_true",
                       help="poll a live server's /metrics exposition instead of "
                            "running the in-process demo flow")
    stats.add_argument("--host", default="127.0.0.1")
    stats.add_argument("--port", type=int, default=8443)
    stats.add_argument("--interval", type=float, default=2.0, metavar="S",
                       help="refresh interval for --watch (default 2.0)")
    stats.add_argument("--iterations", type=int, default=0, metavar="N",
                       help="stop --watch after N polls (0 = run until interrupted)")
    _add_gencache_flags(stats)
    _add_batching_flags(stats)
    stats.set_defaults(func=cmd_stats)

    trace = sub.add_parser(
        "trace", help="run a traced fetch and print the stitched cross-process trace"
    )
    trace.add_argument("path", nargs="?", default=None,
                       help="page path to fetch (default: the --page demo page's path)")
    trace.add_argument("--page", default="travel-blog", choices=sorted(PAGES))
    trace.add_argument("--device", default="laptop", choices=sorted(DEVICES))
    trace.add_argument("--cdn", action="store_true",
                       help="also trace a client->edge->origin CDN flow (prompt-mode edge)")
    trace.add_argument("--seed", type=int, default=0,
                       help="id-source seed; trace/span ids are deterministic per seed")
    trace.add_argument("--sample-rate", type=float, default=1.0,
                       help="head-based sampling probability for client-started traces")
    trace.add_argument("--export", metavar="FILE", default=None,
                       help="write the stitched trace as Chrome trace-event JSON (Perfetto-loadable)")
    trace.set_defaults(func=cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_format == "json":
        from repro.obs import JSON_LOG_FORMAT

        logging_setup(args.log_level, fmt=JSON_LOG_FORMAT)
    else:
        logging_setup(args.log_level)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
