"""SBERT-style sentence similarity (Reimers & Gurevych, cited §6.3.2).

Used to compare bullet-point prompts with their expanded paragraphs. The
simulated encoder is the hashed bag-of-words embedding; raw cosines
between a ~20-word bullet list and a 100-250 word expansion that reuses
its content words land well below 1 even for faithful expansions (sheer
length dilutes the overlap), so an affine calibration maps the observed
cosine range onto the SBERT-score range the paper reports (0.82-0.91
means, with drift-heavy models at the bottom).
"""

from __future__ import annotations

import numpy as np

from repro.genai.embeddings import cosine_similarity, text_embedding

#: Affine calibration: sbert = BASE + SPAN * cosine, clipped to [0, 1].
#: A fully unrelated pair (cosine ≈ 0) scores ≈ 0.54, matching the floor
#: real SBERT models give to same-register but off-topic English prose;
#: the span places the drift-calibrated text models on the paper's
#: 0.82-0.91 per-model means (measured per-model mean cosines ≈ 0.54-0.71
#: on the §6.3.2-style bullet-expansion battery).
SBERT_BASE = 0.54
SBERT_SPAN = 0.52


def sbert_similarity(reference: str, candidate: str) -> float:
    """Semantic similarity between two texts on the SBERT scale."""
    ref_vec = text_embedding(reference)
    cand_vec = text_embedding(candidate)
    cosine = cosine_similarity(ref_vec, cand_vec)
    return float(np.clip(SBERT_BASE + SBERT_SPAN * cosine, 0.0, 1.0))
