"""Word-length overshoot statistics (paper §6.3.2).

"Word Length Overshoot represents the percentage of words above or below
the requested number of words." The paper reports per-model means near
1.3% with 25th/75th percentiles over 10% for most models and a maximum
reaching 20%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class OvershootStats:
    """Summary of signed relative word-count deviations."""

    mean: float
    mean_abs: float
    p25: float
    p75: float
    max_abs: float
    count: int


def overshoot_stats(overshoots: list[float]) -> OvershootStats:
    """Summarise a list of signed relative deviations (e.g. +0.08 = 8% over)."""
    if not overshoots:
        raise ValueError("no overshoot samples")
    arr = np.asarray(overshoots, dtype=np.float64)
    return OvershootStats(
        mean=float(arr.mean()),
        mean_abs=float(np.abs(arr).mean()),
        p25=float(np.percentile(arr, 25)),
        p75=float(np.percentile(arr, 75)),
        max_abs=float(np.abs(arr).max()),
        count=len(overshoots),
    )
