"""ELO ratings and a simulated preference arena.

Table 1's ELO column comes from the Artificial Analysis text-to-image
arena: humans see two images for the same prompt and pick one; ratings
follow from the ELO update rule. We reproduce the *mechanism*: each model
has a latent strength (its ``arena_quality`` profile), battles are decided
by a logistic preference model over the strength gap, and ratings are
measured from thousands of simulated battles — the published numbers are
inputs to the latent strengths, but the ratings the benchmark reports are
genuinely computed from the arena.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util.rng import DeterministicRNG

#: Standard logistic base-10 ELO scale divisor.
ELO_SCALE = 400.0
DEFAULT_K = 24.0
DEFAULT_INITIAL = 1000.0


def expected_score(rating_a: float, rating_b: float) -> float:
    """P(A beats B) under the ELO logistic model."""
    return 1.0 / (1.0 + 10 ** ((rating_b - rating_a) / ELO_SCALE))


@dataclass
class EloRating:
    """Mutable rating state for one competitor."""

    name: str
    rating: float = DEFAULT_INITIAL
    games: int = 0
    wins: int = 0

    def update(self, opponent_rating: float, score: float, k: float = DEFAULT_K) -> None:
        """Apply one game result (score 1 = win, 0.5 = draw, 0 = loss)."""
        if not 0.0 <= score <= 1.0:
            raise ValueError("score must be in [0, 1]")
        expected = expected_score(self.rating, opponent_rating)
        self.rating += k * (score - expected)
        self.games += 1
        if score > 0.5:
            self.wins += 1


class EloLadder:
    """A set of competitors with pairwise updates."""

    def __init__(self, names: list[str], k: float = DEFAULT_K, initial: float = DEFAULT_INITIAL) -> None:
        if len(set(names)) != len(names):
            raise ValueError("duplicate competitor names")
        self.k = k
        self.ratings = {name: EloRating(name, initial) for name in names}

    def record(self, winner: str, loser: str, draw: bool = False) -> None:
        a = self.ratings[winner]
        b = self.ratings[loser]
        score_a = 0.5 if draw else 1.0
        # Both updates use the pre-game ratings.
        ra, rb = a.rating, b.rating
        a.update(rb, score_a, self.k)
        b.update(ra, 1.0 - score_a, self.k)

    def rating_of(self, name: str) -> float:
        return self.ratings[name].rating

    def standings(self) -> list[tuple[str, float]]:
        return sorted(((r.name, r.rating) for r in self.ratings.values()), key=lambda x: -x[1])


@dataclass
class ArenaResult:
    """Outcome of a simulated arena run."""

    ratings: dict[str, float]
    battles: int
    anchor: str | None = None

    def ordered(self) -> list[tuple[str, float]]:
        return sorted(self.ratings.items(), key=lambda item: -item[1])


class PreferenceArena:
    """Simulates human pairwise preference battles between models.

    ``latent`` maps model name → latent strength on the ELO scale. A battle
    between A and B is won by A with probability
    ``1 / (1 + 10^((latent_B - latent_A)/400))`` — i.e. latent strengths
    *are* true ELOs, and a long arena run recovers them up to the usual
    zero-point indeterminacy, which we fix by re-anchoring the mean of the
    measured ratings onto the mean of the latent strengths (arenas such as
    Artificial Analysis pin their scale the same way, via anchor models).
    """

    def __init__(self, latent: dict[str, float], k: float = DEFAULT_K, seed: str = "arena") -> None:
        if len(latent) < 2:
            raise ValueError("an arena needs at least two models")
        self.latent = dict(latent)
        self.k = k
        self.seed = seed

    def run(self, battles_per_pair: int = 800) -> ArenaResult:
        """Round-robin arena; returns measured (re-anchored) ratings."""
        names = sorted(self.latent)
        ladder = EloLadder(names, k=self.k)
        rng = DeterministicRNG(self.seed, battles_per_pair)
        pairs = [(a, b) for i, a in enumerate(names) for b in names[i + 1 :]]
        total = 0
        for round_index in range(battles_per_pair):
            for a, b in pairs:
                p_a = expected_score(self.latent[a], self.latent[b])
                if rng.random() < p_a:
                    ladder.record(a, b)
                else:
                    ladder.record(b, a)
                total += 1
            # Anneal K so late rounds refine rather than oscillate; a long
            # low-K tail is what lets extreme ratings escape the pull to the
            # field mean that short round-robins exhibit.
            if round_index == battles_per_pair // 3:
                ladder.k = max(6.0, self.k / 3)
            elif round_index == (2 * battles_per_pair) // 3:
                ladder.k = 2.0
        measured = {name: ladder.rating_of(name) for name in names}
        latent_mean = sum(self.latent.values()) / len(self.latent)
        measured_mean = sum(measured.values()) / len(measured)
        shift = latent_mean - measured_mean
        anchored = {name: rating + shift for name, rating in measured.items()}
        return ArenaResult(ratings=anchored, battles=total)
