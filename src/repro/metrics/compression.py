"""Compression-ratio accounting (paper §6.2, §6.4, Table 2).

The paper's compression factor is "original media bytes ÷ metadata bytes".
The worst-case metadata budget it uses for an image is 428 B: 400 B for
the prompt, 20 B for the name and 4 B for each of height and width.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Table 2 footnote: worst-case image metadata budget, in bytes.
WORST_CASE_PROMPT_BYTES = 400
WORST_CASE_NAME_BYTES = 20
WORST_CASE_DIMENSION_BYTES = 4
WORST_CASE_IMAGE_METADATA = (
    WORST_CASE_PROMPT_BYTES + WORST_CASE_NAME_BYTES + 2 * WORST_CASE_DIMENSION_BYTES
)  # = 428


def compression_ratio(original_bytes: float, compressed_bytes: float) -> float:
    """Original ÷ compressed; infinite when compressed is zero."""
    if original_bytes < 0 or compressed_bytes < 0:
        raise ValueError("sizes cannot be negative")
    if compressed_bytes == 0:
        return float("inf")
    return original_bytes / compressed_bytes


def prompt_metadata_size(metadata: dict) -> int:
    """Wire size of a generated-content metadata dictionary (JSON bytes)."""
    return len(json.dumps(metadata, separators=(",", ":")).encode("utf-8"))


def worst_case_image_metadata_size() -> int:
    """The paper's 428-byte worst-case image metadata budget."""
    return WORST_CASE_IMAGE_METADATA


@dataclass
class SizeAccount:
    """Tallies original vs. SWW wire/storage bytes for a page or corpus."""

    original_media: int = 0
    original_text: int = 0
    metadata: int = 0
    unique_content: int = 0
    items: int = 0
    per_item: list[tuple[str, int, int]] = field(default_factory=list)

    def add_item(self, label: str, original_bytes: int, sww_bytes: int, kind: str = "media") -> None:
        """Record one content item (an image or a text block)."""
        if original_bytes < 0 or sww_bytes < 0:
            raise ValueError("sizes cannot be negative")
        if kind == "media":
            self.original_media += original_bytes
        elif kind == "text":
            self.original_text += original_bytes
        else:
            raise ValueError(f"unknown kind {kind!r}")
        self.metadata += sww_bytes
        self.items += 1
        self.per_item.append((label, original_bytes, sww_bytes))

    def add_unique(self, size_bytes: int) -> None:
        """Unique (non-generatable) content travels unchanged both ways."""
        if size_bytes < 0:
            raise ValueError("sizes cannot be negative")
        self.unique_content += size_bytes

    @property
    def original_total(self) -> int:
        return self.original_media + self.original_text + self.unique_content

    @property
    def sww_total(self) -> int:
        return self.metadata + self.unique_content

    @property
    def ratio(self) -> float:
        """Compression over the *generatable* content (paper's figure)."""
        generatable_original = self.original_media + self.original_text
        return compression_ratio(generatable_original, self.metadata)

    @property
    def page_ratio(self) -> float:
        """End-to-end ratio including unique content on both sides."""
        return compression_ratio(self.original_total, self.sww_total)
