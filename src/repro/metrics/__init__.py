"""Evaluation metrics used by the paper's §6.

* :mod:`repro.metrics.clip` — CLIPScore-style prompt↔image similarity.
* :mod:`repro.metrics.sbert` — SBERT-style text↔text semantic similarity.
* :mod:`repro.metrics.elo` — an ELO rating engine plus a simulated
  preference arena (the Artificial Analysis leaderboard stand-in).
* :mod:`repro.metrics.overshoot` — word-length overshoot statistics.
* :mod:`repro.metrics.compression` — compression-ratio accounting for
  pages, media and metadata.
"""

from repro.metrics.clip import clip_score, CLIP_FLOOR, CLIP_CEILING
from repro.metrics.sbert import sbert_similarity
from repro.metrics.elo import EloRating, EloLadder, PreferenceArena, ArenaResult
from repro.metrics.overshoot import overshoot_stats, OvershootStats
from repro.metrics.compression import (
    compression_ratio,
    SizeAccount,
    prompt_metadata_size,
)

__all__ = [
    "clip_score",
    "CLIP_FLOOR",
    "CLIP_CEILING",
    "sbert_similarity",
    "EloRating",
    "EloLadder",
    "PreferenceArena",
    "ArenaResult",
    "overshoot_stats",
    "OvershootStats",
    "compression_ratio",
    "SizeAccount",
    "prompt_metadata_size",
]
