"""CLIPScore-style prompt↔image similarity (Hessel et al., cited §6.3.1).

Real CLIPScore embeds prompt and image with CLIP's two towers and reports
a scaled cosine. Our simulated towers are
:func:`repro.genai.embeddings.text_embedding` and
:func:`repro.genai.embeddings.image_embedding`; the affine map below
calibrates the score range so that an unrelated (random) image scores at
the paper's measured floor of ≈0.09 and a perfectly faithful generation
approaches 0.35, placing Table 1's models at their published values via
their fidelity profiles.
"""

from __future__ import annotations

import numpy as np

from repro.genai.embeddings import cosine_similarity, image_embedding, text_embedding

#: Score of an image with no semantic relation to the prompt (§6.3.1:
#: "the CLIP score of a randomly generated image (no prompt) was 0.09").
CLIP_FLOOR = 0.09

#: Asymptotic score of a perfectly prompt-faithful image.
CLIP_CEILING = 0.35

_SCALE = CLIP_CEILING - CLIP_FLOOR


def clip_score_from_cosine(cosine: float) -> float:
    """Map a latent-space cosine onto the CLIPScore scale."""
    return CLIP_FLOOR + _SCALE * max(0.0, min(1.0, cosine))


def clip_score(prompt: str, pixels: np.ndarray) -> float:
    """CLIP-sim score between a prompt and an image's pixels.

    The image embedding is *recovered from the pixels* (block means), not
    read from generator state — a random image really does score ≈0.09.
    """
    prompt_vec = text_embedding(prompt)
    image_vec = image_embedding(pixels)
    return clip_score_from_cosine(cosine_similarity(prompt_vec, image_vec))
