"""Programmatic experiment summary (the data behind EXPERIMENTS.md).

:func:`run_headline_experiments` executes the paper's headline
measurements in-process and returns structured rows, so the CLI
(``sww report``) and any downstream tooling can regenerate the
paper-vs-measured comparison without going through pytest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices import LAPTOP, WORKSTATION
from repro.devices.energy import transmission_energy_wh, transmission_time_s
from repro.genai.image import generate_image
from repro.genai.registry import DEEPSEEK_R1_8B, SD3_MEDIUM
from repro.genai.text import expand_text
from repro.media.jpeg_model import jpeg_size
from repro.metrics.compression import WORST_CASE_IMAGE_METADATA
from repro.obs import IdSource, MetricsRegistry, Tracer, stitch_spans
from repro.sww.client import GenerativeClient, connect_in_memory
from repro.sww.server import GenerativeServer, PageResource, SiteStore
from repro.workloads import build_news_article, build_wikimedia_landscape_page


@dataclass(frozen=True)
class ReportRow:
    """One paper-vs-measured line."""

    experiment: str
    metric: str
    paper: str
    measured: str

    def formatted(self, widths: tuple[int, int, int, int] = (8, 34, 18, 18)) -> str:
        cells = (self.experiment, self.metric, self.paper, self.measured)
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))


def _fetch_seconds(page, device) -> float:
    """Run one generative fetch and read its generation time off the metrics
    registry (the same numbers ``sww stats`` exports), rather than
    re-deriving them from the fetch result."""
    registry = MetricsRegistry()
    store = SiteStore()
    store.add_page(PageResource(page.path, page.sww_html, page.traditional_html))
    client = GenerativeClient(device=device, registry=registry)
    pair = connect_in_memory(client, GenerativeServer(store, registry=registry))
    client.fetch_via_pair(pair, page.path)
    return registry.total("genai_generation_seconds")


def run_headline_experiments() -> list[ReportRow]:
    """The Fig. 2 / E3 / Table 2 / §6.4 headline numbers, measured live."""
    rows: list[ReportRow] = []

    page = build_wikimedia_landscape_page()
    account = page.account
    rows.append(ReportRow("Fig.2", "original media", "1400 kB", f"{account.original_media / 1000:.0f} kB"))
    rows.append(ReportRow("Fig.2", "prompt metadata", "8.92 kB", f"{account.metadata / 1000:.2f} kB"))
    rows.append(ReportRow("Fig.2", "compression", "157x", f"{account.ratio:.0f}x"))
    worst = account.items * WORST_CASE_IMAGE_METADATA
    rows.append(ReportRow("Fig.2", "worst-case compression", "68x", f"{account.original_media / worst:.0f}x"))

    laptop_seconds = _fetch_seconds(page, LAPTOP)
    rows.append(ReportRow("Fig.2", "laptop generation", "~310 s", f"{laptop_seconds:.0f} s"))
    rows.append(ReportRow("Fig.2", "per image (laptop)", "6.32 s", f"{laptop_seconds / 49:.2f} s"))
    wk_seconds = _fetch_seconds(page, WORKSTATION)
    rows.append(ReportRow("Fig.2", "workstation generation", "~49 s", f"{wk_seconds:.0f} s"))

    news = build_news_article()
    rows.append(
        ReportRow(
            "E3",
            "article compression",
            "3.1x (2400->778 B)",
            f"{news.account.ratio:.2f}x ({news.account.original_text}->{news.account.metadata} B)",
        )
    )
    news_seconds = _fetch_seconds(news, LAPTOP)
    rows.append(ReportRow("E3", "laptop generation", "41.9 s", f"{news_seconds:.1f} s"))

    for label, side, paper_l, paper_w in (
        ("small", 256, "7 s", "1.0 s"),
        ("medium", 512, "19 s", "1.7 s"),
        ("large", 1024, "310 s", "6.2 s"),
    ):
        lt = generate_image(SD3_MEDIUM, LAPTOP, "x", side, side, 15).sim_time_s
        wt = generate_image(SD3_MEDIUM, WORKSTATION, "x", side, side, 15).sim_time_s
        rows.append(
            ReportRow("Table2", f"{label} image gen (laptop/wk)", f"{paper_l} / {paper_w}", f"{lt:.1f} s / {wt:.2f} s")
        )
    text = expand_text(DEEPSEEK_R1_8B, LAPTOP, "- a\n- b", 250)
    rows.append(ReportRow("Table2", "250-word text (laptop)", "32 s / 0.01 Wh", f"{text.sim_time_s:.1f} s / {text.energy_wh:.3f} Wh"))

    large = jpeg_size(1024, 1024)
    rows.append(
        ReportRow(
            "E8",
            "send vs generate (energy)",
            "2.5%",
            f"{transmission_energy_wh(large) / 0.21:.1%}",
        )
    )
    rows.append(
        ReportRow("E8", "send large image @100Mbps", "~10 ms", f"{transmission_time_s(large) * 1000:.1f} ms")
    )

    rows.extend(trace_crosscheck_rows())
    rows.extend(gencache_rows())
    rows.extend(batching_rows())
    return rows


def gencache_rows() -> list[ReportRow]:
    """Warm-scenario rows for the content-addressed generation cache.

    A *separate* experiment appended after the paper's numbers: one cold
    fetch fills a shared :class:`~repro.gencache.GenerationCache`, a
    second fetch of the same page replays against it. The cold rows above
    are measured without any cache (the paper has none), so these rows
    only ever add information — they never replace the cold figures.
    """
    from repro.gencache import GenerationCache

    page = build_news_article()
    registry = MetricsRegistry()
    store = SiteStore()
    store.add_page(PageResource(page.path, page.sww_html, page.traditional_html))
    gencache = GenerationCache(registry=registry)
    client = GenerativeClient(device=LAPTOP, registry=registry, gencache=gencache)
    server = GenerativeServer(store, registry=registry)
    cold = client.fetch_via_pair(connect_in_memory(client, server), page.path)
    warm = client.fetch_via_pair(connect_in_memory(client, server), page.path)
    stats = gencache.stats
    return [
        ReportRow(
            "Warm",
            "re-fetch generation (cold vs warm)",
            "n/a (no cache)",
            f"{cold.generation_time_s:.1f} s vs {warm.generation_time_s:.3f} s",
        ),
        ReportRow(
            "Warm",
            "cache hit rate on re-fetch",
            "n/a (no cache)",
            f"{stats.hit_rate:.0%} ({stats.hits}/{stats.requests})",
        ),
        ReportRow(
            "Warm",
            "simulated seconds saved",
            "n/a (no cache)",
            f"{stats.saved_sim_seconds:.1f} s",
        ),
    ]


def batching_rows() -> list[ReportRow]:
    """Micro-batched throughput rows (repro.batching).

    Like the Warm rows, a separate experiment appended after the paper's
    numbers: the same eight distinct prompts run solo and as one 8-way
    micro-batch through the batched kernels, using the calibrated
    amortisation curve. Calling the kernel directly (rather than timing
    the engine's wall-clock window) keeps the row deterministic. Cold
    rows above never go through the engine, so they are untouched.
    """
    from repro.batching import DEFAULT_ALPHA
    from repro.genai.image import batch_step_share, generate_image_batch

    prompts = [f"batched workload scene {i}" for i in range(8)]
    solo_s = sum(
        generate_image(SD3_MEDIUM, WORKSTATION, p, 512, 512, 15).sim_time_s for p in prompts
    )
    batched = generate_image_batch(
        SD3_MEDIUM, WORKSTATION, prompts, 512, 512, 15, alpha=DEFAULT_ALPHA
    )
    batched_s = sum(result.sim_time_s for result in batched)
    share = batch_step_share(len(prompts), DEFAULT_ALPHA)
    return [
        ReportRow(
            "Batched",
            "8 images, solo vs 8-way batch (wk)",
            "n/a (no batching)",
            f"{solo_s:.1f} s vs {batched_s:.1f} s",
        ),
        ReportRow(
            "Batched",
            "throughput (images / simulated s)",
            "n/a (no batching)",
            f"{8 / solo_s:.2f} vs {8 / batched_s:.2f} ({1 / share:.1f}x)",
        ),
    ]


def trace_crosscheck_rows() -> list[ReportRow]:
    """Cross-check Table-2-grade timings against a stitched distributed trace.

    Client and server run with *separate* tracers (simulated separate
    processes) linked only by the propagated ``traceparent`` header; a
    naive-client fetch forces server-side materialisation so the genai
    work lands on the server's side of the wire. The stitched trace must
    (a) form one tree rooted at ``client.fetch`` containing
    ``server.materialise``, and (b) carry per-span simulated seconds
    (``sim_s`` attributes) summing to the registry's
    ``genai_generation_seconds`` — i.e. no generation happened outside
    the trace.
    """
    page = build_news_article()
    registry = MetricsRegistry()
    client_tracer = Tracer(ids=IdSource(1))
    server_tracer = Tracer(ids=IdSource(2))
    store = SiteStore()
    store.add_page(PageResource(page.path, page.sww_html, page.traditional_html))
    server = GenerativeServer(store, registry=registry, tracer=server_tracer)
    client = GenerativeClient(
        device=LAPTOP, gen_ability=False, registry=registry, tracer=client_tracer
    )
    pair = connect_in_memory(client, server)
    client.fetch_via_pair(pair, page.path)

    stitched = stitch_spans([*client_tracer.roots(), *server_tracer.roots()])
    fetch_roots = [root for root in stitched if root.name == "client.fetch"]
    spans = [span for root in fetch_roots for _, span in root.walk()]
    one_trace = len(fetch_roots) == 1 and len({span.trace_id for span in spans}) == 1
    materialised = any(span.name == "server.materialise" for span in spans)
    span_sim_s = sum(span.attributes.get("sim_s", 0.0) for span in spans)
    registry_sim_s = registry.total("genai_generation_seconds")
    return [
        ReportRow(
            "Trace",
            "naive fetch stitches to one trace",
            "1 tree",
            f"{len(fetch_roots)} tree" + ("" if one_trace else " (id mismatch)"),
        ),
        ReportRow(
            "Trace",
            "server.materialise under client.fetch",
            "yes",
            "yes" if materialised else "no",
        ),
        ReportRow(
            "Trace",
            "stitched sim-time vs registry",
            "equal",
            f"{span_sim_s:.1f} s vs {registry_sim_s:.1f} s",
        ),
    ]


def format_report(rows: list[ReportRow]) -> str:
    header = ReportRow("exp", "metric", "paper", "measured").formatted()
    lines = [header, "-" * len(header)]
    lines.extend(row.formatted() for row in rows)
    return "\n".join(lines)
