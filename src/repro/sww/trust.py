"""Trust and verification of generated content (paper §7, Ethics & Trust).

    "The trustworthiness of generated data is another aspect that needs
    to be carefully studied. This is not only a problem of the generated
    content diverging semantically from the original, but also of
    verifying generated content on end-user devices."

The mechanism implemented here: the server attaches a signed
**provenance manifest** to each generated-content item — an HMAC over the
canonical metadata plus a *semantic anchor* (the prompt's embedding
quantised to a compact digest) and a minimum acceptable CLIP-sim. On the
client, after generation:

1. the manifest signature is checked (the prompt was not tampered with in
   transit or by a local adversary);
2. the generated pixels are scored against the anchored prompt; content
   that diverges below the manifest's floor is flagged and can be
   regenerated or refused.

Key distribution is out of scope (the paper defers to the trustworthy-AI
mechanisms it cites); :class:`TrustAuthority` stands in for whatever PKI
ships the per-site keys.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from dataclasses import dataclass

import numpy as np

from repro.genai.embeddings import image_embedding, text_embedding
from repro.metrics.clip import clip_score_from_cosine
from repro.sww.content import GeneratedContent

#: Default minimum CLIP-sim a generated image must reach vs its prompt.
#: Faithful SD3-class generations score 0.26-0.30 on the anchored check;
#: random content scores 0.09 +/- 0.033 — 0.19 sits ~3 sigma above it.
DEFAULT_MIN_CLIP = 0.19

#: Number of embedding dimensions kept in the compact semantic anchor.
#: 64 dims keeps the manifest ≈450 B while holding the random-content
#: false-accept probability (anchored cosine noise ≈ 1/8) well below the
#: verification floor.
ANCHOR_DIMS = 64


class TrustError(Exception):
    """A manifest failed verification."""


def semantic_anchor(prompt: str) -> list[float]:
    """A compact, quantised projection of the prompt embedding.

    Truncating to the first ANCHOR_DIMS dimensions and rounding keeps the
    manifest small while pinning the prompt's semantic direction well
    enough to detect wholesale substitution.
    """
    vector = text_embedding(prompt)[:ANCHOR_DIMS]
    return [round(float(v), 4) for v in vector]


@dataclass(frozen=True)
class ProvenanceManifest:
    """What the server signs for one generated-content item."""

    metadata_json: str
    anchor: list[float]
    min_clip: float
    signature: str

    def to_json(self) -> str:
        return json.dumps(
            {
                "metadata": self.metadata_json,
                "anchor": self.anchor,
                "min_clip": self.min_clip,
                "signature": self.signature,
            },
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, raw: str) -> "ProvenanceManifest":
        try:
            data = json.loads(raw)
            return cls(
                metadata_json=data["metadata"],
                anchor=list(data["anchor"]),
                min_clip=float(data["min_clip"]),
                signature=str(data["signature"]),
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise TrustError(f"malformed manifest: {exc}") from None


class TrustAuthority:
    """Holds the signing key; stands in for the site's PKI."""

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise ValueError("signing key must be at least 16 bytes")
        self._key = key

    def _digest(self, manifest_body: str) -> str:
        return hmac.new(self._key, manifest_body.encode("utf-8"), hashlib.sha256).hexdigest()

    def sign(self, item: GeneratedContent, min_clip: float = DEFAULT_MIN_CLIP) -> ProvenanceManifest:
        """Build and sign a manifest for one item (server side)."""
        metadata_json = item.metadata_json()
        anchor = semantic_anchor(item.prompt)
        body = json.dumps(
            {"metadata": metadata_json, "anchor": anchor, "min_clip": min_clip},
            separators=(",", ":"),
        )
        return ProvenanceManifest(
            metadata_json=metadata_json,
            anchor=anchor,
            min_clip=min_clip,
            signature=self._digest(body),
        )

    def check_signature(self, manifest: ProvenanceManifest) -> bool:
        body = json.dumps(
            {
                "metadata": manifest.metadata_json,
                "anchor": manifest.anchor,
                "min_clip": manifest.min_clip,
            },
            separators=(",", ":"),
        )
        return hmac.compare_digest(self._digest(body), manifest.signature)


@dataclass
class VerificationResult:
    """Outcome of client-side verification for one generated image."""

    signature_valid: bool
    anchor_consistent: bool
    clip_sim: float
    min_clip: float

    @property
    def semantically_faithful(self) -> bool:
        return self.clip_sim >= self.min_clip

    @property
    def trusted(self) -> bool:
        return self.signature_valid and self.anchor_consistent and self.semantically_faithful


class ContentVerifier:
    """Client-side verification of generated content against a manifest."""

    def __init__(self, authority: TrustAuthority) -> None:
        self.authority = authority

    def verify_image(
        self,
        manifest: ProvenanceManifest,
        item: GeneratedContent,
        pixels: np.ndarray,
    ) -> VerificationResult:
        """Run all three checks for one generated image."""
        signature_valid = self.authority.check_signature(manifest)
        # The manifest's metadata must be byte-identical to what the page
        # processor actually generated from.
        anchor_consistent = (
            manifest.metadata_json == item.metadata_json()
            and manifest.anchor == semantic_anchor(item.prompt)
        )
        # Score the pixels against the ANCHORED semantics, not the local
        # prompt text: a tampered local prompt cannot vouch for itself.
        anchored = np.zeros_like(text_embedding(item.prompt))
        anchored[: len(manifest.anchor)] = manifest.anchor
        produced = image_embedding(pixels)
        # Compare within the anchored subspace.
        sub_anchor = anchored[: len(manifest.anchor)]
        sub_image = produced[: len(manifest.anchor)]
        norm_a = np.linalg.norm(sub_anchor)
        norm_b = np.linalg.norm(sub_image)
        cosine = float(sub_anchor @ sub_image / (norm_a * norm_b)) if norm_a and norm_b else 0.0
        clip_sim = clip_score_from_cosine(cosine)
        return VerificationResult(
            signature_valid=signature_valid,
            anchor_consistent=anchor_consistent,
            clip_sim=clip_sim,
            min_clip=manifest.min_clip,
        )
