"""In-band admin plane: telemetry served over the project's own HTTP/2.

Rather than bolting a second HTTP/1 server onto the process, the
telemetry plane rides the protocol the repo already implements: requests
whose ``:authority`` is :data:`ADMIN_AUTHORITY` are routed by
:class:`~repro.sww.server.ServerSession` to the :class:`AdminPlane`
instead of the content store (PROTOCOL.md reserves the authority and the
``/debug/*`` path space). That keeps exactly one listening socket, one
negotiation path, and lets ``sww top`` / scrapers reuse the repo's
client stack — including flow control, which matters because profile and
time-series bodies routinely exceed a default stream window.

Routes:

* ``GET /metrics`` — OpenMetrics exposition of the live registry;
* ``GET /healthz`` — JSON liveness: event-loop stall state, in-flight
  streams, drain state, SLO burn verdicts;
* ``GET /debug/streams`` — per-connection scheduler state (writer
  queues, flow-control windows, stall counts);
* ``GET /debug/timeseries[?since=N]`` — the sampler ring as an
  ``sww-timeseries/1`` document (``since`` returns a delta);
* ``GET /debug/profile?seconds=N[&format=collapsed|chrome]`` — run the
  wall-clock profiler for N seconds and return the profile;
* ``GET /debug/events[?n=N][&format=jsonl|columnar]`` — the wide-event
  ring, newest N (default all) as JSONL or an ``sww-events/1`` columnar
  document;
* ``GET /incidents`` — flight-recorder bundle listing (one summary row
  per captured incident);
* ``GET /incidents/<id>`` — one full incident bundle.

Admin responses are accounted under ``obs_admin_requests_total``, *not*
``sww_requests_total``, so scraping never skews the serving metrics it
reports.
"""

from __future__ import annotations

import asyncio
import json
import logging
from urllib.parse import parse_qs, urlsplit

from repro.http2.connection import (
    DataReceived,
    H2Connection,
    ResponseReceived,
    Role,
    SettingsAcknowledged,
    StreamEnded,
    StreamReset,
)
from repro.http2.transport import AsyncH2Transport
from repro.obs import MetricsRegistry, to_openmetrics
from repro.obs.profiler import WallClockProfiler
from repro.obs.slo import SLOTracker
from repro.obs.timeseries import TimeSeriesSampler
from repro.sww.server import GenerativeServer, ServedResponse

logger = logging.getLogger("repro.sww.admin")

#: The reserved authority admin requests target (PROTOCOL.md §admin).
#: Never a real site host; content requests keep their own authority.
ADMIN_AUTHORITY = "sww-admin.internal"

#: Longest profile one request may run (seconds); keeps a typo'd query
#: from pinning an executor thread for minutes.
MAX_PROFILE_SECONDS = 30.0

#: /healthz reports "degraded" when the worst recent loop stall exceeds
#: this (the concurrent scheduler's acceptance bar).
STALL_DEGRADED_S = 0.05

_JSON = "application/json"
_OPENMETRICS = "application/openmetrics-text; version=1.0.0; charset=utf-8"
_TEXT = "text/plain; charset=utf-8"


class AdminPlane:
    """Routes reserved-authority requests to telemetry handlers."""

    def __init__(
        self,
        registry: MetricsRegistry,
        sampler: TimeSeriesSampler | None = None,
        slo: SLOTracker | None = None,
        authority: str = ADMIN_AUTHORITY,
        profiler_interval_s: float = 0.005,
        events=None,
        recorder=None,
    ) -> None:
        self.registry = registry
        self.sampler = sampler
        self.slo = slo
        #: Wide-event ring served at /debug/events (None → 503).
        self.events = events
        #: Flight recorder served at /incidents (None → 503).
        self.recorder = recorder
        self.authority = authority
        self.profiler_interval_s = profiler_interval_s
        self.server: GenerativeServer | None = None
        self._stop: asyncio.Event | None = None
        self._task: asyncio.Task | None = None
        if slo is not None and sampler is not None:
            slo.attach(sampler)

    def bind(self, server: GenerativeServer) -> "AdminPlane":
        """Attach to a server (it routes admin-authority requests here)."""
        self.server = server
        server.admin = self
        return self

    def matches(self, authority: bytes | str) -> bool:
        """True when a request's ``:authority`` targets the admin plane."""
        host = authority.decode("utf-8", "replace") if isinstance(authority, bytes) else authority
        return host.rsplit(":", 1)[0] == self.authority

    # ------------------------------------------------------------------ #
    # Background sampling
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Begin ticking the sampler on the running event loop (idempotent)."""
        if self.sampler is None or (self._task is not None and not self._task.done()):
            return
        self._stop = asyncio.Event()
        self._task = asyncio.create_task(self.sampler.run(self._stop))

    async def stop(self) -> None:
        if self._stop is not None:
            self._stop.set()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    # ------------------------------------------------------------------ #
    # Request handling
    # ------------------------------------------------------------------ #

    def respond(self, target: str) -> ServedResponse:
        """Produce the admin response for one request target.

        Blocking by design (``/debug/profile`` sleeps for its sampling
        window); the concurrent server runs this on an executor thread,
        same as content requests.
        """
        parts = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        route = parts.path
        try:
            if route == "/metrics":
                response = self._text_response(to_openmetrics(self.registry), _OPENMETRICS)
            elif route == "/healthz":
                response = self._json_response(self.healthz())
            elif route == "/debug/streams":
                response = self._json_response(self.streams_state())
            elif route == "/debug/timeseries":
                response = self._timeseries(query)
            elif route == "/debug/profile":
                response = self._profile(query)
            elif route == "/debug/events":
                response = self._events(query)
            elif route == "/incidents" or route.startswith("/incidents/"):
                response = self._incidents(route)
            else:
                body = b"unknown admin route"
                response = ServedResponse(
                    404, GenerativeServer._headers(_TEXT, len(body), status=404), body
                )
        except Exception:
            logger.exception("admin route %s failed", route)
            body = b"admin handler error"
            response = ServedResponse(
                500, GenerativeServer._headers(_TEXT, len(body), status=500), body
            )
        if self.registry.enabled:
            # Bundle ids would be unbounded label cardinality; collapse them.
            counted = "/incidents" if route.startswith("/incidents/") else route
            self.registry.counter(
                "obs_admin_requests_total",
                "Admin-plane requests served, by route",
                layer="obs",
                operation=counted,
            ).inc()
        return response

    def _timeseries(self, query: dict[str, str]) -> ServedResponse:
        if self.sampler is None:
            return self._json_response({"error": "no sampler configured"}, status=503)
        since: int | None = None
        if "since" in query:
            try:
                since = int(query["since"])
            except ValueError:
                return self._json_response({"error": "since must be an integer"}, status=400)
        return self._json_response(self.sampler.snapshot(since=since))

    def _events(self, query: dict[str, str]) -> ServedResponse:
        if self.events is None:
            return self._json_response({"error": "no event log configured"}, status=503)
        last: int | None = None
        if "n" in query:
            try:
                last = int(query["n"])
            except ValueError:
                return self._json_response({"error": "n must be an integer"}, status=400)
        fmt = query.get("format", "jsonl")
        if fmt == "jsonl":
            return self._text_response(self.events.to_jsonl(last=last), _TEXT)
        if fmt == "columnar":
            return self._json_response(self.events.to_columnar(last=last))
        return self._json_response({"error": "format must be jsonl or columnar"}, status=400)

    def _incidents(self, route: str) -> ServedResponse:
        if self.recorder is None:
            return self._json_response({"error": "no flight recorder configured"}, status=503)
        if route == "/incidents" or route == "/incidents/":
            return self._json_response(
                {"incidents": self.recorder.summaries(), "armed": sorted(self.recorder.armed())}
            )
        incident_id = route[len("/incidents/"):]
        bundle = self.recorder.get(incident_id)
        if bundle is None:
            return self._json_response({"error": f"no incident {incident_id!r}"}, status=404)
        return self._json_response(bundle)

    def _profile(self, query: dict[str, str]) -> ServedResponse:
        try:
            seconds = float(query.get("seconds", "1"))
        except ValueError:
            return self._json_response({"error": "seconds must be a number"}, status=400)
        seconds = min(max(0.0, seconds), MAX_PROFILE_SECONDS)
        fmt = query.get("format", "collapsed")
        if fmt not in ("collapsed", "chrome"):
            return self._json_response(
                {"error": "format must be collapsed or chrome"}, status=400
            )
        profiler = WallClockProfiler(
            interval_s=self.profiler_interval_s, registry=self.registry
        )
        profile = profiler.profile_for(seconds)
        if fmt == "chrome":
            return self._text_response(profile.to_chrome_trace(), _JSON)
        return self._text_response(profile.collapsed(), _TEXT)

    # ------------------------------------------------------------------ #
    # State assembly
    # ------------------------------------------------------------------ #

    def healthz(self) -> dict:
        """Liveness summary: loop stalls, in-flight work, drain, SLO burn."""
        sessions = list(self.server.sessions()) if self.server is not None else []
        max_stall = max((s.max_stall_s for s in sessions), default=0.0)
        worst_ever = self.registry.value(
            "sww_server_loop_stall_max_seconds", layer="sww", operation="loop"
        )
        inflight = sum(len(s._tasks) for s in sessions)
        draining = sum(1 for s in sessions if s._draining)
        slo_report = self.slo.report() if self.slo is not None else {}
        slo_healthy = self.slo.healthy if self.slo is not None else True
        degraded: list[str] = []
        if max_stall > STALL_DEGRADED_S:
            degraded.append(f"event-loop stall {max_stall * 1000:.0f}ms")
        if not slo_healthy:
            degraded.extend(
                f"slo {name} burning" for name, entry in slo_report.items()
                if not entry.get("healthy", True)
            )
        return {
            "status": "degraded" if degraded else "ok",
            "degraded": degraded,
            "connections": len(sessions),
            "inflight_streams": inflight,
            "draining_connections": draining,
            "loop_stall": {
                "recent_max_s": round(max_stall, 6),
                "worst_s": round(worst_ever, 6),
            },
            "sampler_tick": self.sampler.last_tick if self.sampler is not None else None,
            "slo": slo_report,
        }

    def streams_state(self) -> dict:
        """Live per-connection scheduler state for ``/debug/streams``."""
        sessions = list(self.server.sessions()) if self.server is not None else []
        return {
            "connections": [session.debug_state() for session in sessions],
        }

    # ------------------------------------------------------------------ #
    # Response plumbing
    # ------------------------------------------------------------------ #

    @staticmethod
    def _text_response(text: str, content_type: str, status: int = 200) -> ServedResponse:
        body = text.encode("utf-8")
        return ServedResponse(
            status, GenerativeServer._headers(content_type, len(body), status=status), body
        )

    @classmethod
    def _json_response(cls, document: dict, status: int = 200) -> ServedResponse:
        return cls._text_response(
            json.dumps(document, sort_keys=True, separators=(",", ":")), _JSON, status
        )


# ---------------------------------------------------------------------- #
# Client side: one-shot admin GET over the project's HTTP/2 stack
# ---------------------------------------------------------------------- #


async def admin_fetch(
    host: str, port: int, path: str, authority: str = ADMIN_AUTHORITY
) -> tuple[int, bytes]:
    """GET one admin route over TCP; returns ``(status, body)``.

    A deliberately thin client: no generation pipeline, no SWW headers —
    just the handshake, one stream, and connection-window replenishment
    (profile/timeseries bodies are bigger than the default 64 KiB
    window, so without top-ups the response would stall mid-body).
    """
    conn = H2Connection(Role.CLIENT, gen_ability=False)
    reader, writer = await asyncio.open_connection(host, port)
    transport = AsyncH2Transport(conn, reader, writer)
    conn.initiate_connection()
    await transport.flush()

    settings_acked = asyncio.Event()
    done = asyncio.Event()
    status = 0
    body = bytearray()
    stream_holder: dict[str, int] = {}

    async def handler(event) -> None:
        nonlocal status
        if isinstance(event, SettingsAcknowledged):
            settings_acked.set()
        elif isinstance(event, ResponseReceived) and event.stream_id == stream_holder.get("id"):
            status = int(dict(event.headers).get(b":status", b"0"))
        elif isinstance(event, DataReceived):
            if event.stream_id == stream_holder.get("id"):
                body.extend(event.data)
            if event.flow_controlled_length > 0:
                conn.increment_flow_control_window(event.flow_controlled_length)
        elif isinstance(event, (StreamEnded, StreamReset)):
            if event.stream_id == stream_holder.get("id"):
                done.set()

    run_task = asyncio.create_task(transport.run(handler))
    try:
        await settings_acked.wait()
        stream_id = conn.get_next_available_stream_id()
        stream_holder["id"] = stream_id
        conn.send_headers(
            stream_id,
            [
                (b":method", b"GET"),
                (b":path", path.encode("utf-8")),
                (b":scheme", b"https"),
                (b":authority", authority.encode("utf-8")),
                (b"user-agent", b"sww-admin-client/1.0"),
            ],
            end_stream=True,
        )
        await transport.flush()
        await done.wait()
    finally:
        await transport.close()
        run_task.cancel()
        try:
            await run_task
        except (asyncio.CancelledError, ConnectionError):
            pass
    return status, bytes(body)


async def admin_fetch_json(
    host: str, port: int, path: str, authority: str = ADMIN_AUTHORITY
) -> dict:
    """`admin_fetch` + JSON decode; raises on non-200."""
    status, body = await admin_fetch(host, port, path, authority)
    if status != 200:
        raise RuntimeError(f"admin GET {path} returned {status}")
    return json.loads(body.decode("utf-8"))
