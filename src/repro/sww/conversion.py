"""Webpage creation and conversion (paper §4.2).

    "A simple script that goes over a webpage can identify content, call
    a media converter to turn the object into a prompt, and replace the
    existing object with a generated content object."

Two pieces:

* :class:`PromptInverter` — the media converter. The paper's prototype
  used a GPT-4V-based image-to-text model producing prompts of 120-262
  characters; the simulator recovers a textual prompt from an image's
  descriptor with a tunable fidelity loss (prompt inversion is lossy —
  re-generated images preserve semantics, not pixels).
* :class:`PageConverter` — the page walker: finds ``<img>`` elements and
  tagged text blocks, consults the CMS tags (generatable vs unique,
  §4.2), swaps generatable content for generated-content divisions, and
  reports the size accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.rng import DeterministicRNG
from repro.genai.embeddings import tokenize_words
from repro.html.dom import Document
from repro.media.jpeg_model import jpeg_size
from repro.metrics.compression import SizeAccount
from repro.sww.cms import ContentManagementSystem, ContentTag
from repro.sww.content import GeneratedContent

#: Observed prompt lengths from the paper's GPT-4V conversion (§6.2).
MIN_PROMPT_CHARS = 120
MAX_PROMPT_CHARS = 262


@dataclass
class InvertedPrompt:
    """A prompt recovered from existing media."""

    prompt: str
    #: Fraction of the source's semantic content the prompt retains.
    fidelity: float


class PromptInverter:
    """Image/text → prompt conversion with fidelity loss.

    ``fidelity`` is the fraction of source descriptor words the recovered
    prompt keeps; the rest are replaced by plausible-but-generic wording
    (what a captioning model hallucinates). The A3 ablation sweeps this.
    """

    _GENERIC = (
        "detailed", "natural light", "high resolution", "wide angle",
        "soft focus", "outdoor scene", "rich color", "professional photo",
    )

    def __init__(self, fidelity: float = 0.85) -> None:
        if not 0.0 < fidelity <= 1.0:
            raise ValueError("fidelity must be in (0, 1]")
        self.fidelity = fidelity

    def invert_image(self, descriptor: str, seed: str = "") -> InvertedPrompt:
        """Recover a generation prompt from an image's description.

        ``descriptor`` stands in for the image's true semantic content
        (for stored corpus images we track it as alt-text, the same signal
        AlDahoul et al. use). The output is clamped to the 120-262
        character range the paper measured.
        """
        words = tokenize_words(descriptor)
        if not words:
            raise ValueError("cannot invert an image with no semantic descriptor")
        rng = DeterministicRNG("prompt-invert", descriptor, seed, self.fidelity)
        kept: list[str] = []
        for word in words:
            if rng.random() < self.fidelity:
                kept.append(word)
            elif rng.random() < 0.5:
                kept.append(rng.choice(self._GENERIC))
        if not kept:
            kept = [words[0]]
        prompt = "a photograph of " + " ".join(kept)
        while len(prompt) < MIN_PROMPT_CHARS:
            prompt += ", " + rng.choice(self._GENERIC)
        if len(prompt) > MAX_PROMPT_CHARS:
            prompt = prompt[:MAX_PROMPT_CHARS].rsplit(" ", 1)[0]
        return InvertedPrompt(prompt=prompt, fidelity=self.fidelity)

    def summarise_text(self, text: str, max_bullets: int = 5) -> str:
        """Turn a paragraph into bullet points (§2.1: "turned into bullet
        points that can be used in a prompt ... without loss of
        information")."""
        sentences = [s.strip() for s in text.replace("\n", " ").split(".") if s.strip()]
        if not sentences:
            raise ValueError("no sentences to summarise")
        bullets = []
        for sentence in sentences[:max_bullets]:
            content = [w for w in tokenize_words(sentence) if len(w) > 3][:6]
            if content:
                bullets.append("- " + " ".join(content))
        return "\n".join(bullets) if bullets else "- " + sentences[0][:60]


@dataclass
class ConversionReport:
    """Outcome of converting one page to SWW form."""

    converted_images: int = 0
    converted_texts: int = 0
    kept_unique: int = 0
    account: SizeAccount = field(default_factory=SizeAccount)


class PageConverter:
    """Walks a page and swaps generatable content for prompts (§4.2)."""

    def __init__(
        self,
        inverter: PromptInverter | None = None,
        cms: ContentManagementSystem | None = None,
        default_image_size: tuple[int, int] = (256, 256),
        text_words: int = 150,
        stock_library=None,
    ) -> None:
        self.inverter = inverter or PromptInverter()
        self.cms = cms or ContentManagementSystem()
        self.default_image_size = default_image_size
        self.text_words = text_words
        #: Optional §7 stock-prompt library: a matching catalog prompt is
        #: reused instead of running lossy inversion.
        self.stock_library = stock_library
        self.stock_reuses = 0

    def convert(self, document: Document, topic: str = "technology") -> ConversionReport:
        """Convert in place; returns the size accounting."""
        report = ConversionReport()
        self._convert_images(document, report)
        self._convert_texts(document, report, topic)
        return report

    def _convert_images(self, document: Document, report: ConversionReport) -> None:
        for img in document.find_by_tag("img"):
            source = img.get("src")
            tag = self.cms.tag_for(source)
            descriptor = img.get("alt") or img.get("data-description")
            if tag == ContentTag.UNIQUE or not descriptor:
                # §4.2: unique content (or content we cannot describe)
                # remains untouched.
                report.kept_unique += 1
                width = int(img.get("width") or self.default_image_size[0])
                height = int(img.get("height") or self.default_image_size[1])
                report.account.add_unique(jpeg_size(width, height))
                continue
            width = int(img.get("width") or self.default_image_size[0])
            height = int(img.get("height") or self.default_image_size[1])
            stock = self.stock_library.best_match(descriptor) if self.stock_library else None
            if stock is not None:
                prompt = stock.prompt
                self.stock_reuses += 1
            else:
                prompt = self.inverter.invert_image(descriptor, seed=source).prompt
            name = (source.rsplit("/", 1)[-1].rsplit(".", 1)[0] or "image")[:20]
            item = GeneratedContent.image(prompt, name=name, width=width, height=height)
            img.replace_with(item.to_element())
            original = jpeg_size(width, height)
            report.account.add_item(name, original, item.wire_size_bytes(), kind="media")
            report.converted_images += 1

    def _convert_texts(self, document: Document, report: ConversionReport, topic: str) -> None:
        for paragraph in document.find_by_tag("p"):
            if paragraph.get("data-sww") == "unique" or self.cms.tag_for(paragraph.id) == ContentTag.UNIQUE:
                text = paragraph.text_content()
                report.kept_unique += 1
                report.account.add_unique(len(text.encode("utf-8")))
                continue
            if paragraph.get("data-sww") != "generatable":
                continue  # untagged text is left alone by default
            text = paragraph.text_content()
            words = len(text.split())
            if words < 20:
                continue  # too short to be worth converting
            bullets = self.inverter.summarise_text(text)
            item = GeneratedContent.text(bullets, words=words, topic=topic)
            paragraph.replace_with(item.to_element())
            report.account.add_item(f"text-{report.converted_texts}", len(text.encode("utf-8")), item.wire_size_bytes(), kind="text")
            report.converted_texts += 1
