"""Content-management-system tagging (paper §4.2).

    "An easy way to identify content that can be generated is by adding a
    dedicated feature to content management systems (CMS) and webpage
    builders. The feature would tag every content item as generatable or
    unique. This one-bit flag will be associated with every linked file.
    Text blocks can be similarly tagged. Webpage templates can have
    different default values for conversion tags."

:class:`ContentManagementSystem` stores those one-bit flags keyed by
content identifier (file path, block id), with per-template defaults.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ContentTag(enum.Enum):
    """The one-bit conversion flag."""

    GENERATABLE = "generatable"
    UNIQUE = "unique"


@dataclass
class Template:
    """A page template with a default conversion tag (§4.2)."""

    name: str
    default_tag: ContentTag


#: Templates the paper's adoption story mentions: static/company/blog sites
#: move to SWW; news-like sites stay mostly unique.
STANDARD_TEMPLATES: dict[str, Template] = {
    "blog": Template("blog", ContentTag.GENERATABLE),
    "company": Template("company", ContentTag.GENERATABLE),
    "gallery": Template("gallery", ContentTag.GENERATABLE),
    "news": Template("news", ContentTag.UNIQUE),
}


@dataclass
class ContentManagementSystem:
    """Per-item conversion tags with template defaults."""

    template: Template | None = None
    _tags: dict[str, ContentTag] = field(default_factory=dict)

    def tag(self, identifier: str, tag: ContentTag) -> None:
        """Set the one-bit flag for a content item."""
        if not identifier:
            raise ValueError("content identifier cannot be empty")
        self._tags[identifier] = tag

    def tag_many(self, identifiers: list[str], tag: ContentTag) -> None:
        for identifier in identifiers:
            self.tag(identifier, tag)

    def tag_for(self, identifier: str) -> ContentTag:
        """The effective tag: explicit flag, else template default, else
        GENERATABLE (the optimistic default for already-generic content)."""
        explicit = self._tags.get(identifier)
        if explicit is not None:
            return explicit
        if self.template is not None:
            return self.template.default_tag
        return ContentTag.GENERATABLE

    def generatable_fraction(self) -> float:
        """Fraction of explicitly tagged items marked generatable."""
        if not self._tags:
            return 1.0 if self.tag_for("") == ContentTag.GENERATABLE else 0.0
        generatable = sum(1 for t in self._tags.values() if t == ContentTag.GENERATABLE)
        return generatable / len(self._tags)

    @classmethod
    def for_template(cls, template_name: str) -> "ContentManagementSystem":
        try:
            template = STANDARD_TEMPLATES[template_name]
        except KeyError:
            raise KeyError(
                f"unknown template {template_name!r}; available: {sorted(STANDARD_TEMPLATES)}"
            ) from None
        return cls(template=template)
