"""The ``generated-content`` class (paper §4.1).

    "we add in our prototype a class called generated content which has
    two fields: content-type and metadata. Content-type identifies the
    type of generated content, currently supporting either 'img' or
    'txt'. Metadata is a json dictionary used to store metadata needed to
    generate the content. Examples of metadata fields include the prompt
    or width and height for images."

On the wire this is an HTML division::

    <div class="generated-content" content-type="img"
         metadata='{"prompt": "a cartoon goldfish", "name": "goldfish",
                    "width": 256, "height": 256}'></div>

which the client's page processor replaces with ``<img src="...">`` after
generation (Fig. 1), or with the expanded paragraph for ``txt`` content.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

from repro.html.dom import Element

CSS_CLASS = "generated-content"

#: Metadata attribute names.
ATTR_CONTENT_TYPE = "content-type"
ATTR_METADATA = "metadata"


class ContentType(enum.Enum):
    """The prototype's two generated content types."""

    IMAGE = "img"
    TEXT = "txt"


class ContentError(ValueError):
    """Raised for malformed generated-content markup or metadata."""


@dataclass
class GeneratedContent:
    """A parsed generated-content item.

    ``metadata`` keys for images: ``prompt`` (required), ``name``,
    ``width``, ``height``, optional ``model``, ``steps``, ``seed``.
    For text: ``prompt`` (the bullet points, required), ``words`` (target
    length), optional ``model``, ``topic``.
    """

    content_type: ContentType
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if "prompt" not in self.metadata or not str(self.metadata["prompt"]).strip():
            raise ContentError("generated content requires a non-empty 'prompt'")
        if self.content_type == ContentType.IMAGE:
            for key in ("width", "height"):
                value = self.metadata.get(key)
                if value is not None and (not isinstance(value, int) or value <= 0):
                    raise ContentError(f"image {key} must be a positive integer, got {value!r}")
            scale = self.metadata.get("scale")
            if scale is not None and (not isinstance(scale, int) or not 2 <= scale <= 4):
                raise ContentError(f"upscale factor must be an integer in [2, 4], got {scale!r}")
            if ("upscale_src" in self.metadata) != (scale is not None):
                raise ContentError("upscale items need both 'upscale_src' and 'scale'")
        elif self.content_type == ContentType.TEXT:
            words = self.metadata.get("words")
            if words is not None and (not isinstance(words, int) or words <= 0):
                raise ContentError(f"text word target must be a positive integer, got {words!r}")

    # ---------------------------------------------------------------- #
    # Convenience accessors
    # ---------------------------------------------------------------- #

    @property
    def prompt(self) -> str:
        return str(self.metadata["prompt"])

    @property
    def name(self) -> str:
        return str(self.metadata.get("name", "generated"))

    @property
    def width(self) -> int:
        return int(self.metadata.get("width", 256))

    @property
    def height(self) -> int:
        return int(self.metadata.get("height", 256))

    @property
    def words(self) -> int:
        return int(self.metadata.get("words", 150))

    @property
    def model(self) -> str | None:
        value = self.metadata.get("model")
        return str(value) if value is not None else None

    @property
    def topic(self) -> str:
        return str(self.metadata.get("topic", "technology"))

    # ---------------------------------------------------------------- #
    # Wire form
    # ---------------------------------------------------------------- #

    def metadata_json(self) -> str:
        """Compact JSON for the metadata attribute."""
        return json.dumps(self.metadata, separators=(",", ":"), sort_keys=True)

    def wire_size_bytes(self) -> int:
        """Bytes this item contributes to the page (the compressed side)."""
        return len(self.metadata_json().encode("utf-8"))

    def to_element(self) -> Element:
        """Build the HTML division carrying this item."""
        return Element(
            "div",
            {
                "class": CSS_CLASS,
                ATTR_CONTENT_TYPE: self.content_type.value,
                ATTR_METADATA: self.metadata_json(),
            },
        )

    @classmethod
    def from_element(cls, element: Element) -> "GeneratedContent":
        """Parse a generated-content division."""
        if not element.has_class(CSS_CLASS):
            raise ContentError(f"element lacks the {CSS_CLASS!r} class")
        raw_type = element.get(ATTR_CONTENT_TYPE)
        try:
            content_type = ContentType(raw_type)
        except ValueError:
            raise ContentError(f"unsupported content-type {raw_type!r}") from None
        raw_metadata = element.get(ATTR_METADATA)
        if not raw_metadata:
            raise ContentError("missing metadata attribute")
        try:
            metadata = json.loads(raw_metadata)
        except json.JSONDecodeError as exc:
            raise ContentError(f"metadata is not valid JSON: {exc}") from None
        if not isinstance(metadata, dict):
            raise ContentError("metadata must be a JSON object")
        return cls(content_type=content_type, metadata=metadata)

    @classmethod
    def image(
        cls,
        prompt: str,
        name: str = "generated",
        width: int = 256,
        height: int = 256,
        model: str | None = None,
        steps: int | None = None,
    ) -> "GeneratedContent":
        """Construct an image item."""
        metadata: dict = {"prompt": prompt, "name": name, "width": width, "height": height}
        if model:
            metadata["model"] = model
        if steps:
            metadata["steps"] = steps
        return cls(ContentType.IMAGE, metadata)

    @property
    def upscale_src(self) -> str | None:
        """Path of the stored small image for §2.2 upscale items."""
        value = self.metadata.get("upscale_src")
        return str(value) if value is not None else None

    @property
    def scale(self) -> int:
        return int(self.metadata.get("scale", 1))

    @classmethod
    def upscaled_image(
        cls,
        descriptor: str,
        src: str,
        scale: int,
        name: str = "upscaled",
    ) -> "GeneratedContent":
        """Construct a §2.2 upscale item.

        The server stores only the small original at ``src``; the client
        fetches it and upscales by ``scale`` locally. ``descriptor``
        doubles as the prompt field (alt text / verification anchor).
        """
        return cls(
            ContentType.IMAGE,
            {"prompt": descriptor, "name": name, "upscale_src": src, "scale": scale},
        )

    @classmethod
    def text(
        cls,
        prompt: str,
        words: int = 150,
        topic: str = "technology",
        model: str | None = None,
    ) -> "GeneratedContent":
        """Construct a text item (prompt holds the bullet points)."""
        metadata: dict = {"prompt": prompt, "words": words, "topic": topic}
        if model:
            metadata["model"] = model
        return cls(ContentType.TEXT, metadata)
