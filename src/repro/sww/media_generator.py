"""The media generator (paper §4.1).

    "The media generator has two roles: parsing the passed metadata and
    invoking content generation using the parsed information. The media
    generator has two generation subroutines, one to generate text and
    the other to generate images."

It receives :class:`~repro.sww.content.GeneratedContent` items from the
HTML parser alongside a preloaded generation pipeline, dispatches to the
image or text subroutine, and returns the produced artifact with its
simulated cost. Text models are reached through the Ollama-shaped API
(mirroring the prototype's ``requests``-based access), images through the
pipeline's diffusion entry point (the Diffusers stand-in).

With a :class:`~repro.gencache.GenerationCache` attached, results are
memoised under content-addressed keys: a hit returns the identical bytes
at lookup cost instead of step cost, and the avoided time/energy accrues
to the cache's "saved" counters (never to the cold numbers — see
docs/PERFORMANCE.md for the warm-vs-cold reporting rules). Accounting is
lock-guarded so the single-flight scheduler may call ``generate`` from
several workers at once.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace

from repro.devices.profiles import DeviceProfile
from repro.gencache import GenerationCache, GenerationKey, key_for_item
from repro.genai.ollama_api import OllamaClient, OllamaEndpoint
from repro.genai.pipeline import GenerationPipeline
from repro.genai.registry import get_image_model, get_text_model
from repro.obs.events import add_current, annotate_current
from repro.sww.content import ContentType, GeneratedContent


@dataclass
class GenerationOutput:
    """One generated artifact plus its simulated cost."""

    item: GeneratedContent
    #: PNG bytes for images; UTF-8 text bytes for text.
    payload: bytes
    #: For text items, the expanded string; empty for images.
    text: str
    sim_time_s: float
    energy_wh: float
    #: Suggested asset path for images (what the rewritten div points at).
    asset_path: str = ""
    #: True when the payload came out of the generation cache.
    cache_hit: bool = False
    #: True when this output rode another item's in-flight generation.
    coalesced: bool = False


class MediaGenerator:
    """Dispatches generated-content items to the generation subroutines."""

    def __init__(
        self,
        pipeline: GenerationPipeline,
        ollama: OllamaClient | None = None,
        cache: GenerationCache | None = None,
        engine=None,
    ) -> None:
        self.pipeline = pipeline
        #: Optional :class:`~repro.batching.BatchingEngine`: image items
        #: are admitted to its micro-batching window instead of running
        #: the solo pipeline, amortising step cost across concurrent
        #: requests. Bytes are identical either way; text and §2.2
        #: upscale items always take their dedicated paths (text rides
        #: the Ollama API, upscale inputs are not batchable by key).
        self.engine = engine
        # The prototype talks to Ollama over its local API; default to an
        # endpoint running on the same simulated device as the pipeline,
        # reporting into the pipeline's observability sinks.
        self.ollama = ollama or OllamaClient(
            OllamaEndpoint(pipeline.device, registry=pipeline.registry, tracer=pipeline.tracer)
        )
        #: Optional content-addressed memoisation of generation results.
        self.cache = cache
        self.generated_count = 0
        self.cache_hit_count = 0
        self.total_time_s = 0.0
        self.total_energy_wh = 0.0
        #: Fetched small originals for §2.2 upscale items (path → PNG
        #: bytes); the client provides these before page processing.
        self.asset_sources: dict[str, bytes] = {}
        self._lock = threading.Lock()
        # The Ollama endpoint reports energy via a last-call attribute, so
        # the text round-trip and its energy read must not interleave.
        self._text_lock = threading.Lock()

    def provide_assets(self, assets: dict[str, bytes]) -> None:
        """Register fetched bytes that upscale items may reference."""
        self.asset_sources.update(assets)

    @property
    def device(self) -> DeviceProfile:
        return self.pipeline.device

    def content_key(self, item: GeneratedContent) -> GenerationKey | None:
        """The item's content-addressed identity (None for upscale items,
        whose inputs are not metadata-addressable)."""
        return key_for_item(
            item, self.pipeline.image_model.name, self.pipeline.text_model.name
        )

    def cache_key(self, item: GeneratedContent) -> GenerationKey | None:
        """Like :meth:`content_key`, but None when no cache is attached."""
        if self.cache is None:
            return None
        return self.content_key(item)

    def generate(self, item: GeneratedContent) -> GenerationOutput:
        """Parse the item's metadata and invoke the right subroutine.

        Consults the generation cache first when one is attached: a hit
        returns the memoised bytes at lookup cost and skips the
        subroutine entirely.
        """
        key = self.cache_key(item)
        if key is not None:
            hit = self._from_cache(key, item)
            if hit is not None:
                return hit
        if item.content_type == ContentType.IMAGE:
            output = self._generate_image(item)
        else:
            output = self._generate_text(item)
        if key is not None:
            self.cache.insert(
                key,
                payload=output.payload,
                text=output.text,
                sim_time_s=output.sim_time_s,
                energy_wh=output.energy_wh,
            )
        self._account(output)
        return output

    def _from_cache(self, key: GenerationKey, item: GeneratedContent) -> GenerationOutput | None:
        """Try the content-addressed store; returns a hit output or None."""
        tracer = self.pipeline.tracer
        with tracer.span("gencache.get", key=key.digest) as span:
            record = self.cache.lookup(key)
            span.annotate(outcome="hit" if record is not None else "miss")
        if record is None:
            annotate_current(gencache_outcome="miss")
            return None
        annotate_current(gencache_outcome="hit")
        add_current(gencache_hits=1)
        output = GenerationOutput(
            item=item,
            payload=record.payload,
            text=record.text,
            sim_time_s=self.cache.hit_time_s,
            energy_wh=0.0,
            asset_path=self._asset_path(item),
            cache_hit=True,
        )
        self._account(output, hit=True)
        return output

    def adopt_coalesced(self, item: GeneratedContent, leader: GenerationOutput) -> GenerationOutput:
        """Rebind a leader's in-flight result to a coalesced duplicate.

        The duplicate pays lookup cost, not step cost; the avoided cost is
        booked against the cache's coalesced counters when a cache is
        attached (single-flight works with or without one).
        """
        hit_time = self.cache.hit_time_s if self.cache is not None else 0.0
        if self.cache is not None:
            self.cache.record_coalesced(leader.sim_time_s, leader.energy_wh)
        annotate_current(gencache_outcome="coalesced")
        add_current(gencache_coalesced=1)
        output = replace(
            leader,
            item=item,
            sim_time_s=hit_time,
            energy_wh=0.0,
            asset_path=self._asset_path(item),
            cache_hit=True,
            coalesced=True,
        )
        self._account(output, hit=True)
        return output

    def _account(self, output: GenerationOutput, hit: bool = False) -> None:
        with self._lock:
            self.generated_count += 1
            if hit:
                self.cache_hit_count += 1
            self.total_time_s += output.sim_time_s
            self.total_energy_wh += output.energy_wh

    @staticmethod
    def _asset_path(item: GeneratedContent) -> str:
        return f"/generated/{item.name}.png" if item.content_type == ContentType.IMAGE else ""

    def _generate_image(self, item: GeneratedContent) -> GenerationOutput:
        if item.upscale_src is not None:
            return self._upscale_image(item)
        model = get_image_model(item.model) if item.model else self.pipeline.image_model
        annotate_current(
            model=model.name,
            steps=item.metadata.get("steps") or model.default_steps,
        )
        if self.engine is not None:
            # Micro-batched path: admit to the engine's window and wait.
            # The pipeline still accounts the invocation (preload/reload
            # semantics are a device property, not a batching one).
            self.pipeline._maybe_reload()
            self.pipeline.invocations += 1
            future = self.engine.submit_image(
                model,
                item.prompt,
                item.width,
                item.height,
                item.metadata.get("steps"),
                item.metadata.get("seed"),
                key=self.content_key(item),
            )
            result = future.result()
            # The engine stamped the batch this generation rode onto the
            # future before resolving it; surface it on the request event.
            batch_id = getattr(future, "batch_id", None)
            if batch_id is not None:
                annotate_current(
                    batch_id=batch_id,
                    batch_size=getattr(future, "batch_size", 1),
                )
        elif model is not self.pipeline.image_model:
            # Honour a per-item model override by generating directly; the
            # pipeline still provides device context and load accounting.
            from repro.genai.image import generate_image

            self.pipeline._maybe_reload()
            self.pipeline.invocations += 1
            result = generate_image(
                model,
                self.device,
                item.prompt,
                item.width,
                item.height,
                item.metadata.get("steps"),
                item.metadata.get("seed"),
                registry=self.pipeline.registry,
                tracer=self.pipeline.tracer,
            )
        else:
            result = self.pipeline.generate_image(
                item.prompt,
                item.width,
                item.height,
                item.metadata.get("steps"),
                item.metadata.get("seed"),
            )
        png = result.png_bytes()
        return GenerationOutput(
            item=item,
            payload=png,
            text="",
            sim_time_s=result.sim_time_s,
            energy_wh=result.energy_wh,
            asset_path=self._asset_path(item),
        )

    def _upscale_image(self, item: GeneratedContent) -> GenerationOutput:
        """§2.2 upscale path: small stored original → large local image."""
        from repro.genai.upscale import ONE_STEP_SR, upscale_image
        from repro.media.png import decode_png, encode_png

        source = self.asset_sources.get(item.upscale_src)
        if source is None:
            raise KeyError(
                f"upscale item {item.name!r} references unfetched asset {item.upscale_src!r}"
            )
        pixels = decode_png(source)
        result = upscale_image(ONE_STEP_SR, self.device, pixels, item.scale)
        return GenerationOutput(
            item=item,
            payload=encode_png(result.pixels),
            text="",
            sim_time_s=result.sim_time_s,
            energy_wh=result.energy_wh,
            asset_path=self._asset_path(item),
        )

    def _generate_text(self, item: GeneratedContent) -> GenerationOutput:
        model_name = item.model or self.pipeline.text_model.name
        get_text_model(model_name)  # validate before the API round-trip
        annotate_current(model=model_name)
        prompt = f"{item.prompt}\nExpand the points above into {item.words} words."
        with self._text_lock:
            response = self.ollama.post_generate(
                model=model_name,
                prompt=prompt,
                options={"topic": item.topic},
            )
            text = response["response"]
            seconds = response["total_duration"] / 1e9
            energy = self.ollama.endpoint.last_energy_wh
        return GenerationOutput(
            item=item,
            payload=text.encode("utf-8"),
            text=text,
            sim_time_s=seconds,
            energy_wh=energy,
        )
