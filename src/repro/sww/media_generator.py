"""The media generator (paper §4.1).

    "The media generator has two roles: parsing the passed metadata and
    invoking content generation using the parsed information. The media
    generator has two generation subroutines, one to generate text and
    the other to generate images."

It receives :class:`~repro.sww.content.GeneratedContent` items from the
HTML parser alongside a preloaded generation pipeline, dispatches to the
image or text subroutine, and returns the produced artifact with its
simulated cost. Text models are reached through the Ollama-shaped API
(mirroring the prototype's ``requests``-based access), images through the
pipeline's diffusion entry point (the Diffusers stand-in).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.profiles import DeviceProfile
from repro.genai.ollama_api import OllamaClient, OllamaEndpoint
from repro.genai.pipeline import GenerationPipeline
from repro.genai.registry import get_image_model, get_text_model
from repro.sww.content import ContentType, GeneratedContent


@dataclass
class GenerationOutput:
    """One generated artifact plus its simulated cost."""

    item: GeneratedContent
    #: PNG bytes for images; UTF-8 text bytes for text.
    payload: bytes
    #: For text items, the expanded string; empty for images.
    text: str
    sim_time_s: float
    energy_wh: float
    #: Suggested asset path for images (what the rewritten div points at).
    asset_path: str = ""


class MediaGenerator:
    """Dispatches generated-content items to the generation subroutines."""

    def __init__(self, pipeline: GenerationPipeline, ollama: OllamaClient | None = None) -> None:
        self.pipeline = pipeline
        # The prototype talks to Ollama over its local API; default to an
        # endpoint running on the same simulated device as the pipeline,
        # reporting into the pipeline's observability sinks.
        self.ollama = ollama or OllamaClient(
            OllamaEndpoint(pipeline.device, registry=pipeline.registry, tracer=pipeline.tracer)
        )
        self.generated_count = 0
        self.total_time_s = 0.0
        self.total_energy_wh = 0.0
        #: Fetched small originals for §2.2 upscale items (path → PNG
        #: bytes); the client provides these before page processing.
        self.asset_sources: dict[str, bytes] = {}

    def provide_assets(self, assets: dict[str, bytes]) -> None:
        """Register fetched bytes that upscale items may reference."""
        self.asset_sources.update(assets)

    @property
    def device(self) -> DeviceProfile:
        return self.pipeline.device

    def generate(self, item: GeneratedContent) -> GenerationOutput:
        """Parse the item's metadata and invoke the right subroutine."""
        if item.content_type == ContentType.IMAGE:
            output = self._generate_image(item)
        else:
            output = self._generate_text(item)
        self.generated_count += 1
        self.total_time_s += output.sim_time_s
        self.total_energy_wh += output.energy_wh
        return output

    def _generate_image(self, item: GeneratedContent) -> GenerationOutput:
        if item.upscale_src is not None:
            return self._upscale_image(item)
        model = get_image_model(item.model) if item.model else self.pipeline.image_model
        if model is not self.pipeline.image_model:
            # Honour a per-item model override by generating directly; the
            # pipeline still provides device context and load accounting.
            from repro.genai.image import generate_image

            self.pipeline._maybe_reload()
            self.pipeline.invocations += 1
            result = generate_image(
                model,
                self.device,
                item.prompt,
                item.width,
                item.height,
                item.metadata.get("steps"),
                item.metadata.get("seed"),
                registry=self.pipeline.registry,
                tracer=self.pipeline.tracer,
            )
        else:
            result = self.pipeline.generate_image(
                item.prompt,
                item.width,
                item.height,
                item.metadata.get("steps"),
                item.metadata.get("seed"),
            )
        png = result.png_bytes()
        return GenerationOutput(
            item=item,
            payload=png,
            text="",
            sim_time_s=result.sim_time_s,
            energy_wh=result.energy_wh,
            asset_path=f"/generated/{item.name}.png",
        )

    def _upscale_image(self, item: GeneratedContent) -> GenerationOutput:
        """§2.2 upscale path: small stored original → large local image."""
        from repro.genai.upscale import ONE_STEP_SR, upscale_image
        from repro.media.png import decode_png, encode_png

        source = self.asset_sources.get(item.upscale_src)
        if source is None:
            raise KeyError(
                f"upscale item {item.name!r} references unfetched asset {item.upscale_src!r}"
            )
        pixels = decode_png(source)
        result = upscale_image(ONE_STEP_SR, self.device, pixels, item.scale)
        return GenerationOutput(
            item=item,
            payload=encode_png(result.pixels),
            text="",
            sim_time_s=result.sim_time_s,
            energy_wh=result.energy_wh,
            asset_path=f"/generated/{item.name}.png",
        )

    def _generate_text(self, item: GeneratedContent) -> GenerationOutput:
        model_name = item.model or self.pipeline.text_model.name
        get_text_model(model_name)  # validate before the API round-trip
        prompt = f"{item.prompt}\nExpand the points above into {item.words} words."
        response = self.ollama.post_generate(
            model=model_name,
            prompt=prompt,
            options={"topic": item.topic},
        )
        text = response["response"]
        seconds = response["total_duration"] / 1e9
        energy = self.ollama.endpoint.last_energy_wh
        return GenerationOutput(
            item=item,
            payload=text.encode("utf-8"),
            text=text,
            sim_time_s=seconds,
            energy_wh=energy,
        )
