"""Page-aware RFC 9218 priority assignment (the perceived-speed policy).

The paper's win is measured at the user's eyeball: what matters is when
the first above-the-fold div renders, not when the last below-the-fold
byte lands (PixLift frames page speed the same way). This module is the
policy layer that turns page structure into wire priorities:

* the **HTML page** itself is urgency 1, non-incremental — nothing
  renders until it parses, so it should pre-empt every asset and arrive
  contiguously;
* **above-the-fold** content divs (the first :data:`FOLD_ITEM_COUNT`
  generated items in document order — a proxy for layout position in a
  top-to-bottom page) are urgency 1, non-incremental;
* **below-the-fold** items are urgency 5, incremental — they may trickle
  in interleaved without delaying anything the user can see;
* **agent/metadata fetches** ("Towards an Agent-First Web"'s second
  client class: tiny structured responses consumed by software, not
  rendered) are urgency 0, non-incremental — they should never queue
  behind media.

The mapping feeds :meth:`GenerativeClient.request_headers` (the
``priority`` header) and the server's scheduler via
:class:`repro.http2.writer.ConnectionWriter`.
"""

from __future__ import annotations

from repro.html.dom import Document
from repro.http2.priority import Priority
from repro.sww.content import CSS_CLASS, ContentError, GeneratedContent

#: Generated items visible without scrolling, in document order. Our
#: synthetic pages lay content strictly top-to-bottom, so ordinal
#: position stands in for layout geometry.
FOLD_ITEM_COUNT = 3

#: The page document: blocks all rendering, wanted contiguous.
PAGE = Priority(urgency=1, incremental=False)
#: Above-the-fold media: paints the first screenful.
ABOVE_FOLD = Priority(urgency=1, incremental=False)
#: Below-the-fold media: progressive, interleavable.
BELOW_FOLD = Priority(urgency=5, incremental=True)
#: Agent/metadata fetches: tiny, machine-consumed, never queue.
AGENT = Priority(urgency=0, incremental=False)


def classify_document(document: Document) -> dict[str, Priority]:
    """Map each generated item's asset path to its fold priority.

    Items are taken in document order; the first :data:`FOLD_ITEM_COUNT`
    are above the fold. Both the ``/generated/<name>.png`` asset path and
    any ``upscale_src`` original get the item's priority (fetching the
    small original *is* fetching the item, wire-wise).
    """
    priorities: dict[str, Priority] = {}
    position = 0
    for element in document.find_by_class(CSS_CLASS):
        try:
            item = GeneratedContent.from_element(element)
        except ContentError:
            continue
        priority = ABOVE_FOLD if position < FOLD_ITEM_COUNT else BELOW_FOLD
        priorities[f"/generated/{item.name}.png"] = priority
        if item.upscale_src is not None:
            priorities[item.upscale_src] = priority
        position += 1
    return priorities


def priority_for_path(
    path: str,
    fold_map: dict[str, Priority] | None = None,
    agent: bool = False,
) -> Priority:
    """The priority a fetch of ``path`` should signal.

    ``fold_map`` (from :func:`classify_document`) wins for known assets;
    unknown asset-like paths are treated as below-the-fold media, and
    everything else as a page document.
    """
    if agent:
        return AGENT
    if fold_map and path in fold_map:
        return fold_map[path]
    if _looks_like_asset(path):
        return BELOW_FOLD
    return PAGE


def _looks_like_asset(path: str) -> bool:
    tail = path.rsplit("?", 1)[0]
    return tail.endswith((".png", ".jpg", ".jpeg", ".gif", ".webp", ".css", ".js"))
