"""The HTML-parser side of content generation (paper §4.1, Fig. 1).

    "The HTML Parser extracts the metadata and passes the information to
    a media generator object, alongside a preloaded image generation
    pipeline, in order to generate the actual content. Once content is
    generated, the divisions in the HTML are replaced with accurate paths
    to images, or the actual body of text for text expansion tasks."

:class:`PageProcessor` walks a parsed document, feeds every
``generated-content`` division to the media generator, and rewrites the
tree: image divs become ``<img src="/generated/<name>.png">``, text divs
become paragraph text. Generated image bytes are collected in an asset map
(path → PNG bytes), standing in for the prototype writing files to disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.html.dom import Document, Element, Text
from repro.sww.content import CSS_CLASS, ContentError, ContentType, GeneratedContent
from repro.sww.media_generator import GenerationOutput, MediaGenerator


@dataclass
class ProcessReport:
    """What a page-processing pass did, with simulated costs."""

    generated_images: int = 0
    generated_texts: int = 0
    skipped_malformed: int = 0
    sim_time_s: float = 0.0
    energy_wh: float = 0.0
    #: path → PNG bytes for every generated image.
    assets: dict[str, bytes] = field(default_factory=dict)
    outputs: list[GenerationOutput] = field(default_factory=list)
    #: Items answered from the generation cache (lookup cost, not steps).
    cache_hits: int = 0
    #: Items that rode another item's in-flight generation (single-flight).
    coalesced: int = 0

    @property
    def generated_total(self) -> int:
        return self.generated_images + self.generated_texts


class PageProcessor:
    """Rewrites generated-content divisions into concrete content."""

    def __init__(self, generator: MediaGenerator, strict: bool = False, scheduler=None) -> None:
        self.generator = generator
        #: In strict mode malformed divisions raise; otherwise they are
        #: left in place untouched (a browser would render them empty).
        self.strict = strict
        #: Optional :class:`~repro.gencache.SingleFlightScheduler`: items
        #: generate concurrently on its worker pool, duplicate keys ride
        #: one in-flight generation. Without it, items run sequentially
        #: (the paper's prototype behaviour) — unless the generator has a
        #: batching engine attached, in which case sequential submission
        #: would starve the engine's admission window, so a scheduler
        #: sized to the window is created automatically.
        if scheduler is None and getattr(generator, "engine", None) is not None:
            from repro.gencache.scheduler import SingleFlightScheduler

            scheduler = SingleFlightScheduler(
                max(2, generator.engine.max_batch),
                registry=generator.engine.registry,
            )
        self.scheduler = scheduler

    def find_items(self, document: Document) -> list[tuple[Element, GeneratedContent]]:
        """Locate and parse every well-formed generated-content division."""
        found: list[tuple[Element, GeneratedContent]] = []
        for element in document.find_by_class(CSS_CLASS):
            try:
                found.append((element, GeneratedContent.from_element(element)))
            except ContentError:
                if self.strict:
                    raise
        return found

    def process(self, document: Document) -> ProcessReport:
        """Generate all content in the document and rewrite it in place."""
        report = ProcessReport()
        malformed = len(document.find_by_class(CSS_CLASS))
        items = self.find_items(document)
        report.skipped_malformed = malformed - len(items)
        for (element, item), output in zip(items, self._generate_all(items)):
            report.outputs.append(output)
            report.sim_time_s += output.sim_time_s
            report.energy_wh += output.energy_wh
            if output.cache_hit:
                report.cache_hits += 1
            if output.coalesced:
                report.coalesced += 1
            if item.content_type == ContentType.IMAGE:
                self._rewrite_image(element, item, output)
                report.assets[output.asset_path] = output.payload
                report.generated_images += 1
            else:
                self._rewrite_text(element, output)
                report.generated_texts += 1
        return report

    def _generate_all(self, items: list[tuple[Element, GeneratedContent]]) -> list[GenerationOutput]:
        """Generate every item, sequentially or via the scheduler."""
        if self.scheduler is None:
            return [self.generator.generate(item) for _element, item in items]

        def thunk(item: GeneratedContent):
            return lambda: self.generator.generate(item)

        tasks = [(self.generator.content_key(item), thunk(item)) for _element, item in items]
        scheduled = self.scheduler.run(tasks)
        outputs: list[GenerationOutput] = []
        for (_element, item), result in zip(items, scheduled):
            if result.coalesced:
                outputs.append(self.generator.adopt_coalesced(item, result.value))
            else:
                outputs.append(result.value)
        return outputs

    @staticmethod
    def _rewrite_image(element: Element, item: GeneratedContent, output: GenerationOutput) -> None:
        img = Element(
            "img",
            {
                "src": output.asset_path,
                "alt": item.prompt,
                "width": str(item.width),
                "height": str(item.height),
            },
        )
        element.replace_with(img)

    @staticmethod
    def _rewrite_text(element: Element, output: GenerationOutput) -> None:
        paragraph = Element("p")
        paragraph.append(Text(output.text))
        element.replace_with(paragraph)
